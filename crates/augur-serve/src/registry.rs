//! The model registry: named, versioned models compiled once and shared
//! across every service worker.
//!
//! Registration runs the shape-generic compiler phases (parse,
//! typecheck, Density IL, schedule, Low-- lowering) exactly once per
//! `(source, schedule, opt-flags)` spec; every request against the
//! registered model then goes through [`RegisteredModel::plan`], which
//! lands in that model's shared plan cache — so N workers serving the
//! same data shape specialize once and share the compiled tapes
//! (`misses == 1` no matter how many race).
//!
//! Re-registering a name appends a new **version** rather than
//! replacing the old one: requests pin a version explicitly or follow
//! the latest, and in-flight requests against an older version keep
//! their artifact alive (it is reference-counted, never torn down
//! under a running chain).

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use augur::{ExecBackend, HostValue, Model, Plan, PlanCacheStats};
use augur_blk::OptFlags;

/// Everything a model registration needs: the surface source, an
/// optional user MCMC schedule (`None` = the compiler's heuristic), and
/// the Blk-IL optimization flags every plan of this model uses.
#[derive(Debug, Clone, Default)]
pub struct ModelSpec {
    /// The model in the surface language, e.g. `"(N) => { ... }"`.
    pub source: String,
    /// User schedule in the paper's notation (`"ESlice mu (*) Gibbs z"`),
    /// or `None` for the heuristic one.
    pub schedule: Option<String>,
    /// Optimization flags; they participate in every plan-cache key
    /// derived from this registration.
    pub opt_flags: OptFlags,
    /// Execution backend for requests against this model that bring no
    /// config of their own (`None` = the service default). `Native`
    /// shares the compiled artifact across all workers through the plan
    /// cache and falls back to the tape when no C toolchain exists.
    pub backend: Option<ExecBackend>,
}

impl ModelSpec {
    /// A spec with the heuristic schedule and default flags.
    pub fn new(source: impl Into<String>) -> ModelSpec {
        ModelSpec { source: source.into(), ..ModelSpec::default() }
    }

    /// Sets the user schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: impl Into<String>) -> ModelSpec {
        self.schedule = Some(schedule.into());
        self
    }

    /// Sets the execution backend for requests without a config.
    #[must_use]
    pub fn backend(mut self, backend: ExecBackend) -> ModelSpec {
        self.backend = Some(backend);
        self
    }
}

/// One compiled registration: a name, a version, and the shape-generic
/// artifact whose plan cache all requests against it share.
#[derive(Debug)]
pub struct RegisteredModel {
    name: String,
    version: u32,
    spec: ModelSpec,
    model: Model,
}

impl RegisteredModel {
    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registration version (1-based; registering a name again
    /// appends version `latest + 1`).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The spec this version was registered with.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The compiled shape-generic model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Specializes this model to concrete data under the registration's
    /// opt flags, reusing the shared plan cache when the shape has been
    /// planned before (by any worker).
    ///
    /// # Errors
    ///
    /// Returns binding/allocation failures as [`augur::Error`].
    pub fn plan(
        &self,
        args: Vec<HostValue>,
        data: Vec<(&str, HostValue)>,
    ) -> Result<Plan, augur::Error> {
        Ok(self.model.plan_opt(args, data, self.spec.opt_flags.clone())?)
    }

    /// This version's plan-cache counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.model.cache_stats()
    }

    /// Why this model is demoted Native→Tape by its circuit breaker,
    /// or `None` while the breaker is closed.
    pub fn native_demotion(&self) -> Option<String> {
        self.model.compiled().native_breaker().open_reason()
    }
}

/// Per-model cache counters, as reported by
/// [`ModelRegistry::cache_stats`] and the service metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCacheStats {
    /// The registered name.
    pub name: String,
    /// The registration version the counters belong to.
    pub version: u32,
    /// The version's plan-cache counters.
    pub stats: PlanCacheStats,
    /// The native circuit breaker's open reason, when this model has
    /// been demoted Native→Tape (`None` = breaker closed).
    pub demoted: Option<String>,
}

/// Named, versioned models behind a read-mostly lock: registration is
/// rare, resolution is every request.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Vec<Arc<RegisteredModel>>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Compiles `spec` and registers it under `name`, returning the new
    /// version number (1 for a fresh name, `latest + 1` otherwise).
    /// Compilation happens outside the registry lock, so a slow build
    /// never blocks request resolution.
    ///
    /// # Errors
    ///
    /// Returns frontend/schedule failures as [`augur::Error`]; a failed
    /// registration leaves the registry unchanged.
    pub fn register(&self, name: &str, spec: ModelSpec) -> Result<u32, augur::Error> {
        let model = match &spec.schedule {
            Some(s) => Model::with_schedule(&spec.source, s)?,
            None => Model::compile(&spec.source)?,
        };
        let mut models = self.models.write().unwrap_or_else(|e| e.into_inner());
        let versions = models.entry(name.to_owned()).or_default();
        let version = versions.len() as u32 + 1;
        versions.push(Arc::new(RegisteredModel {
            name: name.to_owned(),
            version,
            spec,
            model,
        }));
        Ok(version)
    }

    /// Resolves a name to a registration: `version: None` follows the
    /// latest, `Some(v)` pins one.
    pub fn resolve(&self, name: &str, version: Option<u32>) -> Option<Arc<RegisteredModel>> {
        let models = self.models.read().unwrap_or_else(|e| e.into_inner());
        let versions = models.get(name)?;
        match version {
            None => versions.last().cloned(),
            Some(v) => versions.get(v.checked_sub(1)? as usize).cloned(),
        }
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let models = self.models.read().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = models.keys().cloned().collect();
        names.sort();
        names
    }

    /// Plan-cache counters of every registered version, sorted by name
    /// then version.
    pub fn cache_stats(&self) -> Vec<ModelCacheStats> {
        let models = self.models.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<ModelCacheStats> = models
            .values()
            .flatten()
            .map(|m| ModelCacheStats {
                name: m.name.clone(),
                version: m.version,
                stats: m.cache_stats(),
                demoted: m.native_demotion(),
            })
            .collect();
        out.sort_by(|a, b| (&a.name, a.version).cmp(&(&b.name, b.version)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BETA_BERN: &str = "(N) => {
        param p ~ Beta(1.0, 1.0) ;
        data y[n] ~ Bernoulli(p) for n <- 0 until N ;
    }";

    #[test]
    fn register_resolve_and_version() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.register("bb", ModelSpec::new(BETA_BERN)).unwrap(), 1);
        assert_eq!(
            reg.register("bb", ModelSpec::new(BETA_BERN).schedule("MH p")).unwrap(),
            2
        );
        assert_eq!(reg.resolve("bb", None).unwrap().version(), 2);
        assert_eq!(reg.resolve("bb", Some(1)).unwrap().version(), 1);
        assert!(reg.resolve("bb", Some(3)).is_none());
        assert!(reg.resolve("bb", Some(0)).is_none());
        assert!(reg.resolve("nope", None).is_none());
        assert_eq!(reg.names(), vec!["bb".to_owned()]);
    }

    #[test]
    fn bad_source_is_rejected_and_leaves_registry_unchanged() {
        let reg = ModelRegistry::new();
        let err = reg.register("bad", ModelSpec::new("not a model")).unwrap_err();
        assert_eq!(err.kind(), augur::ErrorKind::Compile);
        assert!(reg.names().is_empty());
    }

    #[test]
    fn versions_have_independent_plan_caches() {
        let reg = ModelRegistry::new();
        reg.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
        reg.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
        let v1 = reg.resolve("bb", Some(1)).unwrap();
        v1.plan(vec![HostValue::Int(2)], vec![("y", HostValue::VecF(vec![1.0, 0.0]))])
            .unwrap();
        let stats = reg.cache_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].stats.misses, 1);
        assert_eq!(stats[1].stats.misses, 0);
    }
}
