//! The service's telemetry wiring: the registry-backed instruments the
//! request path records into, and the streaming convergence tracker
//! behind the per-(model, param) `augur_ess` / `augur_split_rhat`
//! gauges.
//!
//! The counters here *are* the service's metrics — `MetricsSnapshot`
//! is derived from them, not the other way around — so a `/metrics`
//! scrape, the snapshot API, and the v4 trace-event counts all
//! reconcile by construction (asserted in `tests/chaos.rs`).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use augur::diag::OnlineParamDiag;
use augur_obs::{Counter, Gauge, GaugeMode, Histogram, MetricsRegistry};

/// One streaming convergence estimate, as exported on the `augur_ess`
/// and `augur_split_rhat` gauges and surfaced through
/// [`MetricsSnapshot::convergence`](crate::MetricsSnapshot::convergence).
#[derive(Debug, Clone)]
pub struct ConvergenceStat {
    /// Registered model name.
    pub model: String,
    /// Recorded parameter name.
    pub param: String,
    /// ESS summed across chains, minimized over the parameter's
    /// components (the conservative aggregate: a vector parameter is
    /// only as converged as its worst component).
    pub ess: f64,
    /// Split-R̂ maximized over the parameter's components; NaN while
    /// any chain still has fewer than 4 draws.
    pub split_rhat: f64,
}

/// Per-parameter online estimators for the latest sample request
/// against one model (latest request wins; concurrent requests for the
/// same model simply keep the newest).
struct ModelConvergence {
    request: u64,
    chains: usize,
    /// Parameter name → one estimator per flattened component.
    params: BTreeMap<String, Vec<OnlineParamDiag>>,
}

/// Every instrument the service records into, plus the registry they
/// live in (which the HTTP exporter renders).
pub(crate) struct Telemetry {
    pub obs: Arc<MetricsRegistry>,
    pub submitted: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub migrations: Arc<Counter>,
    pub shed: Arc<Counter>,
    pub timeouts: Arc<Counter>,
    pub retries: Arc<Counter>,
    pub respawns: Arc<Counter>,
    pub demotions: Arc<Counter>,
    /// Windowed high-water gauge: each scrape takes (and resets) the
    /// highest single-shard depth seen since the previous scrape. The
    /// since-start variant stays on `MetricsSnapshot`.
    pub queue_high_water: Arc<Gauge>,
    pub inflight_chains: Arc<Gauge>,
    pub latency: Arc<Histogram>,
    conv: Mutex<BTreeMap<String, ModelConvergence>>,
}

impl Telemetry {
    pub(crate) fn new() -> Telemetry {
        let obs = Arc::new(MetricsRegistry::new());
        let counter = |name: &str, help: &str| obs.counter(name, help, &[]);
        Telemetry {
            submitted: counter(
                "augur_requests_submitted_total",
                "Requests accepted by submit (includes shed requests).",
            ),
            completed: counter(
                "augur_requests_completed_total",
                "Requests answered successfully.",
            ),
            failed: counter(
                "augur_requests_failed_total",
                "Requests answered with an error (sheds not included).",
            ),
            migrations: counter(
                "augur_migrations_total",
                "Worker-to-worker chain migrations performed.",
            ),
            shed: counter(
                "augur_requests_shed_total",
                "Requests shed at admission (every shard queue at its bound).",
            ),
            timeouts: counter(
                "augur_request_timeouts_total",
                "Requests failed with a deadline timeout (subset of failed).",
            ),
            retries: counter(
                "augur_retries_total",
                "Transient-failure task requeues performed.",
            ),
            respawns: counter(
                "augur_respawns_total",
                "Shard workers respawned after a panic escaped execution.",
            ),
            demotions: counter(
                "augur_demotions_total",
                "Models demoted Native->Tape by their circuit breaker.",
            ),
            queue_high_water: obs.gauge(
                "augur_queue_high_water",
                "Highest single-shard queue depth since the last scrape (reset on collect).",
                &[],
                GaugeMode::ResetOnCollect,
            ),
            inflight_chains: obs.gauge(
                "augur_inflight_chains",
                "Sample-request chains currently in flight.",
                &[],
                GaugeMode::Standard,
            ),
            latency: obs.histogram(
                "augur_request_latency_seconds",
                "Request latency, submit to response.",
                &[],
                Histogram::latency_bounds(),
            ),
            conv: Mutex::new(BTreeMap::new()),
            obs,
        }
    }

    /// Starts convergence tracking for a freshly planned sample
    /// request (latest request per model wins).
    pub(crate) fn begin_sample(&self, model: &str, request: u64, chains: usize) {
        if chains == 0 {
            return;
        }
        let mut conv = self.conv.lock().unwrap_or_else(|e| e.into_inner());
        conv.insert(
            model.to_owned(),
            ModelConvergence { request, chains, params: BTreeMap::new() },
        );
    }

    /// Folds one chain slice's fresh draws into the model's estimators
    /// and republishes the model's `augur_ess` / `augur_split_rhat`
    /// gauges — the "updated at slice boundaries" contract.
    pub(crate) fn record_slice(
        &self,
        model: &str,
        request: u64,
        chain: usize,
        sweeps: &[HashMap<String, Vec<f64>>],
    ) {
        if sweeps.is_empty() {
            return;
        }
        let mut conv = self.conv.lock().unwrap_or_else(|e| e.into_inner());
        let Some(mc) = conv.get_mut(model) else { return };
        if mc.request != request {
            return;
        }
        let chains = mc.chains;
        for sweep in sweeps {
            for (param, values) in sweep {
                let diags = mc
                    .params
                    .entry(param.clone())
                    .or_insert_with(|| vec![OnlineParamDiag::new(chains); values.len()]);
                for (component, &v) in values.iter().enumerate() {
                    if let Some(d) = diags.get_mut(component) {
                        d.push(chain, v);
                    }
                }
            }
        }
        for (param, diags) in &mc.params {
            let (ess, rhat) = aggregate(diags);
            self.obs
                .gauge(
                    "augur_ess",
                    "Streaming ESS (summed across chains, min over components) \
                     of the latest sample request.",
                    &[("model", model), ("param", param)],
                    GaugeMode::Standard,
                )
                .set(ess);
            if !rhat.is_nan() {
                self.obs
                    .gauge(
                        "augur_split_rhat",
                        "Streaming split-Rhat (max over components) of the \
                         latest sample request.",
                        &[("model", model), ("param", param)],
                        GaugeMode::Standard,
                    )
                    .set(rhat);
            }
        }
    }

    /// The current streaming estimates, sorted by (model, param).
    pub(crate) fn convergence(&self) -> Vec<ConvergenceStat> {
        let conv = self.conv.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (model, mc) in conv.iter() {
            for (param, diags) in &mc.params {
                let (ess, split_rhat) = aggregate(diags);
                out.push(ConvergenceStat {
                    model: model.clone(),
                    param: param.clone(),
                    ess,
                    split_rhat,
                });
            }
        }
        out
    }
}

/// Collapses a parameter's per-component estimators to the exported
/// pair: min ESS, max split-R̂ (NaN until computable — fewer than 4
/// draws in some chain, or no components).
fn aggregate(diags: &[OnlineParamDiag]) -> (f64, f64) {
    let mut ess = f64::INFINITY;
    let mut rhat = f64::NAN;
    for d in diags {
        ess = ess.min(d.ess_sum());
        if let Ok(r) = d.split_rhat() {
            rhat = if rhat.is_nan() { r } else { rhat.max(r) };
        }
    }
    if ess.is_infinite() {
        ess = f64::NAN;
    }
    (ess, rhat)
}
