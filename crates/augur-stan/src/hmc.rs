//! HMC/NUTS driver with dual-averaging step-size adaptation — the
//! inference engine of the Stan baseline. Every gradient re-records the
//! tape, which is the instrumentation overhead the paper contrasts with
//! AugurV2's generated gradient code.

use augur_dist::Prng;

use crate::models::StanModel;
use crate::tape::{Tape, V};

/// Sampling options.
#[derive(Debug, Clone)]
pub struct SampleOpts {
    /// Warmup (adaptation) iterations, discarded.
    pub warmup: usize,
    /// Retained samples.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Initial step size (adapted during warmup).
    pub step_size: f64,
    /// Leapfrog steps (ignored when `nuts` is set).
    pub leapfrog: usize,
    /// Use the No-U-Turn sampler.
    pub nuts: bool,
    /// Dual-averaging target acceptance.
    pub target_accept: f64,
}

impl Default for SampleOpts {
    fn default() -> Self {
        SampleOpts {
            warmup: 100,
            samples: 100,
            seed: 1,
            step_size: 0.1,
            leapfrog: 16,
            nuts: false,
            target_accept: 0.8,
        }
    }
}

/// Sampler output.
#[derive(Debug, Clone)]
pub struct SampleOutput {
    /// One unconstrained draw per retained sample.
    pub draws: Vec<Vec<f64>>,
    /// Mean acceptance probability over retained samples.
    pub accept_rate: f64,
    /// The adapted step size.
    pub adapted_step: f64,
    /// Gradient evaluations performed (tape recordings).
    pub grad_evals: u64,
}

struct Evaluator<'m> {
    model: &'m dyn StanModel,
    grad_evals: u64,
}

impl Evaluator<'_> {
    fn lp(&mut self, q: &[f64]) -> f64 {
        let mut tape = Tape::new();
        let vs: Vec<V> = q.iter().map(|&v| tape.leaf(v)).collect();
        let lp = self.model.log_prob(&mut tape, &vs);
        tape.val(lp)
    }

    fn lp_grad(&mut self, q: &[f64]) -> (f64, Vec<f64>) {
        self.grad_evals += 1;
        let mut tape = Tape::new();
        let vs: Vec<V> = q.iter().map(|&v| tape.leaf(v)).collect();
        let lp = self.model.log_prob(&mut tape, &vs);
        (tape.val(lp), tape.grad(lp, &vs))
    }
}

/// Draws posterior samples with HMC (or NUTS) after a dual-averaging
/// warmup, mirroring Stan's defaults in miniature.
pub fn sample(model: &dyn StanModel, opts: SampleOpts) -> SampleOutput {
    let mut rng = Prng::seed_from_u64(opts.seed);
    let mut ev = Evaluator { model, grad_evals: 0 };
    let mut q = model.init();
    let dim = q.len();

    // dual averaging state (Hoffman & Gelman 2014, §3.2)
    let mut eps = opts.step_size;
    let mu = (10.0 * eps).ln();
    let mut h_bar = 0.0;
    let mut log_eps_bar = eps.ln();
    let (gamma, t0, kappa) = (0.05, 10.0, 0.75);

    let mut draws = Vec::with_capacity(opts.samples);
    let mut accept_acc = 0.0;

    for iter in 0..(opts.warmup + opts.samples) {
        let adapting = iter < opts.warmup;
        let alpha = if opts.nuts {
            nuts_iter(&mut ev, &mut rng, &mut q, eps, 8)
        } else {
            hmc_iter(&mut ev, &mut rng, &mut q, eps, opts.leapfrog, dim)
        };
        if adapting {
            let m = (iter + 1) as f64;
            h_bar = (1.0 - 1.0 / (m + t0)) * h_bar
                + (opts.target_accept - alpha) / (m + t0);
            let log_eps = mu - m.sqrt() / gamma * h_bar;
            let w = m.powf(-kappa);
            log_eps_bar = w * log_eps + (1.0 - w) * log_eps_bar;
            eps = log_eps.exp();
        } else {
            eps = log_eps_bar.exp();
            accept_acc += alpha;
            draws.push(q.clone());
        }
    }
    SampleOutput {
        draws,
        accept_rate: accept_acc / opts.samples.max(1) as f64,
        adapted_step: log_eps_bar.exp(),
        grad_evals: ev.grad_evals,
    }
}

/// One HMC iteration; returns the acceptance probability.
fn hmc_iter(
    ev: &mut Evaluator,
    rng: &mut Prng,
    q: &mut Vec<f64>,
    eps: f64,
    leapfrog: usize,
    dim: usize,
) -> f64 {
    let p0: Vec<f64> = (0..dim).map(|_| rng.std_normal()).collect();
    let (lp0, mut g) = ev.lp_grad(q);
    let h0 = lp0 - 0.5 * p0.iter().map(|x| x * x).sum::<f64>();
    let mut qn = q.clone();
    let mut p = p0;
    let mut lp = lp0;
    for _ in 0..leapfrog {
        for (pi, gi) in p.iter_mut().zip(&g) {
            *pi += 0.5 * eps * gi;
        }
        for (qi, pi) in qn.iter_mut().zip(&p) {
            *qi += eps * pi;
        }
        let (lp1, g1) = ev.lp_grad(&qn);
        lp = lp1;
        g = g1;
        for (pi, gi) in p.iter_mut().zip(&g) {
            *pi += 0.5 * eps * gi;
        }
        if !lp.is_finite() {
            break;
        }
    }
    let h1 = if lp.is_finite() {
        lp - 0.5 * p.iter().map(|x| x * x).sum::<f64>()
    } else {
        f64::NEG_INFINITY
    };
    let alpha = (h1 - h0).exp().min(1.0);
    if rng.uniform() < alpha {
        *q = qn;
    }
    if alpha.is_nan() {
        0.0
    } else {
        alpha
    }
}

/// One (simplified) NUTS iteration; returns a pseudo acceptance statistic
/// for dual averaging.
fn nuts_iter(
    ev: &mut Evaluator,
    rng: &mut Prng,
    q: &mut Vec<f64>,
    eps: f64,
    max_depth: usize,
) -> f64 {
    let dim = q.len();
    let p0: Vec<f64> = (0..dim).map(|_| rng.std_normal()).collect();
    let lp0 = ev.lp(q);
    let h0 = lp0 - 0.5 * p0.iter().map(|x| x * x).sum::<f64>();
    let log_u = h0 + rng.uniform().max(1e-300).ln();

    let mut q_minus = q.clone();
    let mut p_minus = p0.clone();
    let mut q_plus = q.clone();
    let mut p_plus = p0;
    let mut n: f64 = 1.0;
    let mut alpha_acc = 0.0;
    let mut alpha_n = 0.0;

    for depth in 0..max_depth {
        let dir: f64 = if rng.uniform() < 0.5 { -1.0 } else { 1.0 };
        // take 2^depth leapfrog steps in the chosen direction
        let (mut qc, mut pc) = if dir < 0.0 {
            (q_minus.clone(), p_minus.clone())
        } else {
            (q_plus.clone(), p_plus.clone())
        };
        let steps = 1usize << depth;
        let mut n_new: f64 = 0.0;
        let mut ok = true;
        for _ in 0..steps {
            let (_, g) = ev.lp_grad(&qc);
            for (pi, gi) in pc.iter_mut().zip(&g) {
                *pi += 0.5 * dir * eps * gi;
            }
            for (qi, pi) in qc.iter_mut().zip(&pc) {
                *qi += dir * eps * pi;
            }
            let (lp, g1) = ev.lp_grad(&qc);
            for (pi, gi) in pc.iter_mut().zip(&g1) {
                *pi += 0.5 * dir * eps * gi;
            }
            let h = if lp.is_finite() {
                lp - 0.5 * pc.iter().map(|x| x * x).sum::<f64>()
            } else {
                f64::NEG_INFINITY
            };
            alpha_acc += (h - h0).exp().min(1.0);
            alpha_n += 1.0;
            if log_u <= h {
                n_new += 1.0;
                if rng.uniform() < 1.0 / n_new.max(1.0) {
                    *q = qc.clone();
                }
            }
            if log_u > h + 1000.0 {
                ok = false;
                break;
            }
        }
        if dir < 0.0 {
            q_minus = qc;
            p_minus = pc;
        } else {
            q_plus = qc;
            p_plus = pc;
        }
        n += n_new;
        let _ = n;
        // u-turn check
        let mut dm = 0.0;
        let mut dp = 0.0;
        for i in 0..dim {
            let dq = q_plus[i] - q_minus[i];
            dm += dq * p_minus[i];
            dp += dq * p_plus[i];
        }
        if !ok || dm < 0.0 || dp < 0.0 {
            break;
        }
    }
    if alpha_n > 0.0 {
        alpha_acc / alpha_n
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::NormalMean;
    use augur_math::vecops::{mean, variance};

    #[test]
    fn hmc_recovers_conjugate_posterior() {
        let data = vec![1.2, 0.8, 1.0, 1.4, 0.6];
        let sum: f64 = data.iter().sum();
        let (post_mu, post_var) =
            augur_dist::conjugacy::normal_normal_mean(0.0, 4.0, 1.0, sum, 5.0);
        let model = NormalMean { prior_var: 4.0, like_var: 1.0, data };
        let out = sample(
            &model,
            SampleOpts { warmup: 300, samples: 4000, seed: 5, ..Default::default() },
        );
        let xs: Vec<f64> = out.draws.iter().map(|d| d[0]).collect();
        assert!((mean(&xs) - post_mu).abs() < 0.05, "mean {}", mean(&xs));
        assert!((variance(&xs) - post_var).abs() < 0.06, "var {}", variance(&xs));
        assert!(out.accept_rate > 0.6);
    }

    #[test]
    fn nuts_recovers_conjugate_posterior() {
        let data = vec![1.2, 0.8, 1.0, 1.4, 0.6];
        let sum: f64 = data.iter().sum();
        let (post_mu, _) =
            augur_dist::conjugacy::normal_normal_mean(0.0, 4.0, 1.0, sum, 5.0);
        let model = NormalMean { prior_var: 4.0, like_var: 1.0, data };
        let out = sample(
            &model,
            SampleOpts { warmup: 300, samples: 4000, seed: 6, nuts: true, ..Default::default() },
        );
        let xs: Vec<f64> = out.draws.iter().map(|d| d[0]).collect();
        assert!((mean(&xs) - post_mu).abs() < 0.08, "mean {}", mean(&xs));
    }

    #[test]
    fn dual_averaging_moves_step_size() {
        let model = NormalMean { prior_var: 1.0, like_var: 1.0, data: vec![0.0; 20] };
        let out = sample(
            &model,
            SampleOpts { warmup: 200, samples: 100, seed: 7, step_size: 1.5, ..Default::default() },
        );
        assert!(out.adapted_step > 0.0 && out.adapted_step.is_finite());
        assert!(out.grad_evals > 0);
    }
}
