//! A Stan-like baseline: instrumentation-based reverse-mode AD plus
//! HMC/NUTS over a hand-written log-density.
//!
//! The paper contrasts AugurV2 with Stan on three axes this crate
//! reproduces architecturally:
//!
//! * **AD by instrumentation** — the log-density is executed with
//!   overloaded operations that record a [`Tape`]; a reverse sweep yields
//!   the gradient. (AugurV2 instead generates gradient *source*, Fig. 8.)
//! * **no discrete parameters** — mixture models must be written with the
//!   discrete variables marginalized out by hand ([`MarginalGmm`]), which
//!   "increases the complexity of computing gradients" (§7.2).
//! * **gradient-based inference only** — HMC and NUTS with dual-averaging
//!   step-size adaptation ([`sample`]).
//!
//! # Example
//!
//! ```
//! use augur_stan::{sample, NormalMean, SampleOpts};
//!
//! // posterior of a Normal mean under a Normal prior
//! let model = NormalMean { prior_var: 4.0, like_var: 1.0, data: vec![1.0, 0.8, 1.2] };
//! let out = sample(&model, SampleOpts { warmup: 200, samples: 500, seed: 3, ..Default::default() });
//! assert_eq!(out.draws.len(), 500);
//! ```

#![deny(missing_docs)]

mod hmc;
mod models;
mod tape;

pub use hmc::{sample, SampleOpts, SampleOutput};
pub use models::{HlrModel, MarginalGmm, NormalMean, StanModel};
pub use tape::{Tape, V};
