//! Hand-written Stan-style models: the user supplies `log_prob` over an
//! unconstrained parameter vector, with discrete variables marginalized
//! out by hand — exactly what the paper notes Stan requires ("the user
//! must write the model to marginalize out all discrete variables",
//! §7.2).

use crate::tape::{Tape, V};

/// A model in Stan form: a differentiable log-density over an
/// unconstrained parameter vector.
pub trait StanModel {
    /// Dimension of the unconstrained parameter vector.
    fn dim(&self) -> usize;
    /// Records the log-density of `q` on the tape (including any
    /// change-of-variables Jacobians).
    fn log_prob(&self, tape: &mut Tape, q: &[V]) -> V;
    /// A reasonable initialization point.
    fn init(&self) -> Vec<f64> {
        vec![0.0; self.dim()]
    }
}

/// Conjugate Normal-mean test model: `m ~ N(0, prior_var)`,
/// `y_n ~ N(m, like_var)`.
#[derive(Debug, Clone)]
pub struct NormalMean {
    /// Prior variance of the mean.
    pub prior_var: f64,
    /// Known likelihood variance.
    pub like_var: f64,
    /// Observations.
    pub data: Vec<f64>,
}

impl StanModel for NormalMean {
    fn dim(&self) -> usize {
        1
    }

    fn log_prob(&self, tape: &mut Tape, q: &[V]) -> V {
        let m = q[0];
        let zero = tape.leaf(0.0);
        let mut lp = tape.normal_lpdf(m, zero, self.prior_var);
        for &y in &self.data {
            let yv = tape.leaf(y);
            let term = tape.normal_lpdf(yv, m, self.like_var);
            lp = tape.add(lp, term);
        }
        lp
    }
}

/// Hierarchical logistic regression (the paper's HLR):
///
/// ```text
/// σ² ~ Exponential(λ);  b ~ N(0, σ²);  θ_j ~ N(0, σ²)
/// y_n ~ Bernoulli(sigmoid(x_n · θ + b))
/// ```
///
/// Unconstrained parameterization: `q = [log σ², b, θ_1..θ_D]` with the
/// log-Jacobian of the positive transform included.
#[derive(Debug, Clone)]
pub struct HlrModel {
    /// Covariate rows.
    pub x: Vec<Vec<f64>>,
    /// Binary responses.
    pub y: Vec<u8>,
    /// Prior rate of the variance.
    pub lambda: f64,
}

impl StanModel for HlrModel {
    fn dim(&self) -> usize {
        2 + self.x.first().map_or(0, Vec::len)
    }

    fn log_prob(&self, tape: &mut Tape, q: &[V]) -> V {
        let log_s2 = q[0];
        let b = q[1];
        let theta = &q[2..];
        let s2 = tape.exp(log_s2);
        // prior on σ² with Jacobian d σ²/d log σ² = σ²
        let mut lp = tape.exponential_lpdf(s2, self.lambda);
        lp = tape.add(lp, log_s2);
        // priors on b and θ
        let zero = tape.leaf(0.0);
        let pb = tape.normal_lpdf_v(b, zero, s2);
        lp = tape.add(lp, pb);
        for &t in theta {
            let pt = tape.normal_lpdf_v(t, zero, s2);
            lp = tape.add(lp, pt);
        }
        // likelihood
        for (row, &y) in self.x.iter().zip(&self.y) {
            let dot = tape.dot_const(theta, row);
            let eta = tape.add(dot, b);
            let term = tape.bernoulli_logit_lpmf(y, eta);
            lp = tape.add(lp, term);
        }
        lp
    }

    fn init(&self) -> Vec<f64> {
        let mut q = vec![0.0; self.dim()];
        q[0] = 0.0; // σ² = 1
        q
    }
}

/// A Gaussian mixture with the assignments marginalized out by hand —
/// the form Stan forces on the Fig. 10 HGMM comparison:
///
/// ```text
/// p(y | π, μ) = Π_n Σ_k π_k N(y_n | μ_k, Σ)
/// ```
///
/// Unconstrained parameterization: `q = [π logits (K), μ (K·D)]`; the
/// component covariance is held at the supplied spherical value (this
/// reproduction's documented simplification of the full HGMM — the
/// comparison's subject is the marginalized-mixture gradient cost).
#[derive(Debug, Clone)]
pub struct MarginalGmm {
    /// Observations (N × D).
    pub data: Vec<Vec<f64>>,
    /// Number of components.
    pub k: usize,
    /// Prior variance of each mean coordinate.
    pub prior_var: f64,
    /// Known spherical likelihood variance.
    pub like_var: f64,
    /// Dirichlet concentration of the weights (symmetric).
    pub alpha: f64,
}

impl MarginalGmm {
    /// Data dimensionality.
    pub fn d(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// Splits a draw back into (weights, means).
    pub fn unpack(&self, q: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
        let logits = &q[..self.k];
        let m = augur_math::special::log_sum_exp(logits);
        let pis: Vec<f64> = logits.iter().map(|l| (l - m).exp()).collect();
        let d = self.d();
        let mus = (0..self.k)
            .map(|c| q[self.k + c * d..self.k + (c + 1) * d].to_vec())
            .collect();
        (pis, mus)
    }
}

impl StanModel for MarginalGmm {
    fn dim(&self) -> usize {
        self.k + self.k * self.d()
    }

    fn log_prob(&self, tape: &mut Tape, q: &[V]) -> V {
        let k = self.k;
        let d = self.d();
        let logits = &q[..k];
        let mus = &q[k..];

        // log softmax weights: logπ_c = logit_c − lse(logits); softmax
        // Jacobian handled implicitly by the overparameterized logits with
        // a normal anchor on the logits (a standard Stan trick).
        let lse = tape.log_sum_exp(logits);
        let zero = tape.leaf(0.0);
        let mut lp = tape.leaf(0.0);
        // weak anchor N(0,1) on logits keeps the overparameterization proper
        for &l in logits {
            let a = tape.normal_lpdf(l, zero, 1.0);
            lp = tape.add(lp, a);
        }
        // Dirichlet(α) prior on the weights: Σ (α−1)·logπ_c
        for &l in logits {
            let logpi = tape.sub(l, lse);
            let term = tape.mul_c(logpi, self.alpha - 1.0);
            lp = tape.add(lp, term);
        }
        // priors on the means
        for &m in mus {
            let pm = tape.normal_lpdf(m, zero, self.prior_var);
            lp = tape.add(lp, pm);
        }
        // marginalized likelihood
        for row in &self.data {
            let mut comps = Vec::with_capacity(k);
            for c in 0..k {
                let logpi = tape.sub(logits[c], lse);
                let mut comp = logpi;
                for (j, &yj) in row.iter().enumerate() {
                    let yv = tape.leaf(yj);
                    let term = tape.normal_lpdf(yv, mus[c * d + j], self.like_var);
                    comp = tape.add(comp, term);
                }
                comps.push(comp);
            }
            let mix = tape.log_sum_exp(&comps);
            lp = tape.add(lp, mix);
        }
        lp
    }

    fn init(&self) -> Vec<f64> {
        // spread initial means over the data range
        let d = self.d();
        let mut q = vec![0.0; self.dim()];
        for c in 0..self.k {
            if let Some(row) = self.data.get(c * self.data.len() / self.k.max(1)) {
                for j in 0..d {
                    q[self.k + c * d + j] = row[j];
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(model: &dyn StanModel, q: &[f64]) -> Vec<f64> {
        let f = |qq: &[f64]| {
            let mut tape = Tape::new();
            let vs: Vec<V> = qq.iter().map(|&v| tape.leaf(v)).collect();
            let lp = model.log_prob(&mut tape, &vs);
            tape.val(lp)
        };
        let h = 1e-6;
        (0..q.len())
            .map(|i| {
                let mut qp = q.to_vec();
                qp[i] += h;
                let mut qm = q.to_vec();
                qm[i] -= h;
                (f(&qp) - f(&qm)) / (2.0 * h)
            })
            .collect()
    }

    fn tape_grad(model: &dyn StanModel, q: &[f64]) -> Vec<f64> {
        let mut tape = Tape::new();
        let vs: Vec<V> = q.iter().map(|&v| tape.leaf(v)).collect();
        let lp = model.log_prob(&mut tape, &vs);
        tape.grad(lp, &vs)
    }

    #[test]
    fn normal_mean_gradients_match_numeric() {
        let m = NormalMean { prior_var: 4.0, like_var: 1.0, data: vec![1.0, 0.5, 1.5] };
        let q = [0.3];
        let (g, n) = (tape_grad(&m, &q), numeric_grad(&m, &q));
        assert!((g[0] - n[0]).abs() < 1e-5);
    }

    #[test]
    fn hlr_gradients_match_numeric() {
        let m = HlrModel {
            x: vec![vec![1.0, -0.5], vec![0.3, 0.8], vec![-1.0, 0.2]],
            y: vec![1, 0, 1],
            lambda: 1.0,
        };
        let q = [0.2, -0.1, 0.4, -0.3];
        let (g, n) = (tape_grad(&m, &q), numeric_grad(&m, &q));
        for i in 0..q.len() {
            assert!((g[i] - n[i]).abs() < 1e-5, "dim {i}: {} vs {}", g[i], n[i]);
        }
    }

    #[test]
    fn marginal_gmm_gradients_match_numeric() {
        let m = MarginalGmm {
            data: vec![vec![-2.0, -2.1], vec![2.0, 2.1], vec![-1.9, -2.0]],
            k: 2,
            prior_var: 10.0,
            like_var: 1.0,
            alpha: 1.0,
        };
        let q = [0.1, -0.2, -1.0, -1.0, 1.0, 1.0];
        let (g, n) = (tape_grad(&m, &q), numeric_grad(&m, &q));
        for i in 0..q.len() {
            assert!((g[i] - n[i]).abs() < 1e-4, "dim {i}: {} vs {}", g[i], n[i]);
        }
    }

    #[test]
    fn unpack_produces_simplex() {
        let m = MarginalGmm {
            data: vec![vec![0.0]],
            k: 3,
            prior_var: 1.0,
            like_var: 1.0,
            alpha: 1.0,
        };
        let (pis, mus) = m.unpack(&[0.5, -0.5, 0.0, 1.0, 2.0, 3.0]);
        assert!((pis.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(mus.len(), 3);
        assert_eq!(mus[2], vec![3.0]);
    }
}
