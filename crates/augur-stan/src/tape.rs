//! An operator-overloading reverse-mode AD tape.
//!
//! Each arithmetic operation on tape values appends a node recording its
//! parents and local partials; [`Tape::grad`] runs the reverse sweep. A
//! fresh tape is recorded for *every* density evaluation — exactly the
//! run-time instrumentation cost that AugurV2's source-to-source AD
//! avoids (paper §4.4).

/// A value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V(u32);

#[derive(Debug, Clone, Copy)]
struct Node {
    parents: [(u32, f64); 2],
    n_parents: u8,
}

/// The recording tape.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    values: Vec<f64>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: f64, parents: [(u32, f64); 2], n_parents: u8) -> V {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { parents, n_parents });
        self.values.push(value);
        V(id)
    }

    /// A leaf (input or constant).
    pub fn leaf(&mut self, value: f64) -> V {
        self.push(value, [(0, 0.0); 2], 0)
    }

    /// The current value of a tape variable.
    pub fn val(&self, v: V) -> f64 {
        self.values[v.0 as usize]
    }

    /// `a + b`.
    pub fn add(&mut self, a: V, b: V) -> V {
        let value = self.val(a) + self.val(b);
        self.push(value, [(a.0, 1.0), (b.0, 1.0)], 2)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: V, b: V) -> V {
        let value = self.val(a) - self.val(b);
        self.push(value, [(a.0, 1.0), (b.0, -1.0)], 2)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: V, b: V) -> V {
        let (va, vb) = (self.val(a), self.val(b));
        self.push(va * vb, [(a.0, vb), (b.0, va)], 2)
    }

    /// `a / b`.
    pub fn div(&mut self, a: V, b: V) -> V {
        let (va, vb) = (self.val(a), self.val(b));
        self.push(va / vb, [(a.0, 1.0 / vb), (b.0, -va / (vb * vb))], 2)
    }

    /// `-a`.
    pub fn neg(&mut self, a: V) -> V {
        let value = -self.val(a);
        self.push(value, [(a.0, -1.0), (0, 0.0)], 1)
    }

    /// `a + c` with a constant.
    pub fn add_c(&mut self, a: V, c: f64) -> V {
        let value = self.val(a) + c;
        self.push(value, [(a.0, 1.0), (0, 0.0)], 1)
    }

    /// `a * c` with a constant.
    pub fn mul_c(&mut self, a: V, c: f64) -> V {
        let value = self.val(a) * c;
        self.push(value, [(a.0, c), (0, 0.0)], 1)
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: V) -> V {
        let value = self.val(a).exp();
        self.push(value, [(a.0, value), (0, 0.0)], 1)
    }

    /// `ln(a)`.
    pub fn ln(&mut self, a: V) -> V {
        let va = self.val(a);
        self.push(va.ln(), [(a.0, 1.0 / va), (0, 0.0)], 1)
    }

    /// `a²`.
    pub fn square(&mut self, a: V) -> V {
        let va = self.val(a);
        self.push(va * va, [(a.0, 2.0 * va), (0, 0.0)], 1)
    }

    /// `ln(1 + e^a)` (softplus), the Bernoulli-logit normalizer, recorded
    /// stably.
    pub fn log1p_exp(&mut self, a: V) -> V {
        let va = self.val(a);
        let value = augur_math::special::log1p_exp(va);
        let sig = augur_math::special::sigmoid(va);
        self.push(value, [(a.0, sig), (0, 0.0)], 1)
    }

    /// `ln Σ exp(xs)` recorded stably, with softmax partials.
    pub fn log_sum_exp(&mut self, xs: &[V]) -> V {
        let m = xs.iter().map(|&x| self.val(x)).fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = xs.iter().map(|&x| (self.val(x) - m).exp()).sum();
        let value = m + sum.ln();
        // ∂lse/∂xᵢ = softmaxᵢ. The tape is 2-ary, so thread the partials
        // through a chain of identity-carrying nodes.
        let mut acc: Option<V> = None;
        for &x in xs {
            let w = (self.val(x) - value).exp(); // softmax weight
            acc = Some(match acc {
                None => self.push(value, [(x.0, w), (0, 0.0)], 1),
                Some(prev) => self.push(value, [(prev.0, 1.0), (x.0, w)], 2),
            });
        }
        acc.expect("log_sum_exp of an empty slice")
    }

    /// Dot product of tape values with a constant vector.
    pub fn dot_const(&mut self, xs: &[V], cs: &[f64]) -> V {
        assert_eq!(xs.len(), cs.len(), "dot_const length mismatch");
        let mut acc = self.leaf(0.0);
        for (&x, &c) in xs.iter().zip(cs) {
            let term = self.mul_c(x, c);
            acc = self.add(acc, term);
        }
        acc
    }

    /// Reverse sweep: `∂ output / ∂ each leaf in wrt`.
    pub fn grad(&self, output: V, wrt: &[V]) -> Vec<f64> {
        let mut adj = vec![0.0; self.nodes.len()];
        adj[output.0 as usize] = 1.0;
        for i in (0..=output.0 as usize).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let node = &self.nodes[i];
            for p in 0..node.n_parents as usize {
                let (pi, partial) = node.parents[p];
                adj[pi as usize] += a * partial;
            }
        }
        wrt.iter().map(|v| adj[v.0 as usize]).collect()
    }
}

/// Tape helpers for common log-densities.
impl Tape {
    /// `ln N(x | mu, var)` with tape-valued `x`, `mu` and constant `var`.
    pub fn normal_lpdf(&mut self, x: V, mu: V, var: f64) -> V {
        const LN_2PI: f64 = 1.837_877_066_409_345_6;
        let d = self.sub(x, mu);
        let d2 = self.square(d);
        let quad = self.mul_c(d2, -0.5 / var);
        self.add_c(quad, -0.5 * (LN_2PI + var.ln()))
    }

    /// `ln N(x | mu, var)` with tape-valued variance.
    pub fn normal_lpdf_v(&mut self, x: V, mu: V, var: V) -> V {
        const LN_2PI: f64 = 1.837_877_066_409_345_6;
        let d = self.sub(x, mu);
        let d2 = self.square(d);
        let ratio = self.div(d2, var);
        let quad = self.mul_c(ratio, -0.5);
        let lv = self.ln(var);
        let half_lv = self.mul_c(lv, -0.5);
        let s = self.add(quad, half_lv);
        self.add_c(s, -0.5 * LN_2PI)
    }

    /// `ln Bernoulli(y | sigmoid(eta))` in the stable logit form.
    pub fn bernoulli_logit_lpmf(&mut self, y: u8, eta: V) -> V {
        match y {
            1 => {
                let n = self.neg(eta);
                let sp = self.log1p_exp(n);
                self.neg(sp)
            }
            _ => {
                let sp = self.log1p_exp(eta);
                self.neg(sp)
            }
        }
    }

    /// `ln Exponential(x | rate)` with tape-valued `x`.
    pub fn exponential_lpdf(&mut self, x: V, rate: f64) -> V {
        let t = self.mul_c(x, -rate);
        self.add_c(t, rate.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6 * (1.0 + x.abs());
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn product_rule() {
        let mut t = Tape::new();
        let x = t.leaf(3.0);
        let y = t.leaf(4.0);
        let p = t.mul(x, y);
        let g = t.grad(p, &[x, y]);
        assert_eq!(g, vec![4.0, 3.0]);
    }

    #[test]
    fn chain_rule_through_exp_ln() {
        // f(x) = ln(exp(x) + x²)
        let eval = |x0: f64| {
            let mut t = Tape::new();
            let x = t.leaf(x0);
            let e = t.exp(x);
            let s = t.square(x);
            let sum = t.add(e, s);
            let f = t.ln(sum);
            let g = t.grad(f, &[x]);
            (t.val(f), g[0])
        };
        for &x0 in &[0.5, 1.5, 2.0] {
            let (_, g) = eval(x0);
            let fd = finite_diff(|x| (x.exp() + x * x).ln(), x0);
            assert!((g - fd).abs() < 1e-6, "x={x0}: {g} vs {fd}");
        }
    }

    #[test]
    fn normal_lpdf_grads_match_closed_form() {
        let mut t = Tape::new();
        let x = t.leaf(0.7);
        let mu = t.leaf(-0.3);
        let ll = t.normal_lpdf(x, mu, 2.5);
        assert!((t.val(ll) - augur_dist::scalar::normal_log_pdf(0.7, -0.3, 2.5)).abs() < 1e-14);
        let g = t.grad(ll, &[x, mu]);
        assert!((g[0] - augur_dist::scalar::normal_grad_x(0.7, -0.3, 2.5)).abs() < 1e-12);
        assert!((g[1] - augur_dist::scalar::normal_grad_mu(0.7, -0.3, 2.5)).abs() < 1e-12);
    }

    #[test]
    fn normal_lpdf_v_variance_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(0.7);
        let mu = t.leaf(0.0);
        let var = t.leaf(1.8);
        let ll = t.normal_lpdf_v(x, mu, var);
        let g = t.grad(ll, &[var]);
        assert!((g[0] - augur_dist::scalar::normal_grad_var(0.7, 0.0, 1.8)).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_logit_gradient() {
        for y in [0u8, 1] {
            let mut t = Tape::new();
            let eta = t.leaf(0.8);
            let ll = t.bernoulli_logit_lpmf(y, eta);
            let g = t.grad(ll, &[eta]);
            let expect = augur_dist::scalar::bernoulli_logit_grad_eta(y, 0.8);
            assert!((g[0] - expect).abs() < 1e-12, "y={y}");
        }
    }

    #[test]
    fn log_sum_exp_softmax_gradient() {
        let mut t = Tape::new();
        let xs: Vec<V> = [1.0, 2.0, 3.0].iter().map(|&v| t.leaf(v)).collect();
        let lse = t.log_sum_exp(&xs);
        let expect = augur_math::special::log_sum_exp(&[1.0, 2.0, 3.0]);
        assert!((t.val(lse) - expect).abs() < 1e-12);
        let g = t.grad(lse, &xs);
        let total: f64 = g.iter().sum();
        assert!((total - 1.0).abs() < 1e-10, "softmax sums to one, got {total}");
        assert!(g[2] > g[1] && g[1] > g[0]);
    }

    #[test]
    fn dot_const_gradient_is_the_vector() {
        let mut t = Tape::new();
        let xs: Vec<V> = [0.5, -0.2].iter().map(|&v| t.leaf(v)).collect();
        let d = t.dot_const(&xs, &[3.0, 7.0]);
        let g = t.grad(d, &xs);
        assert_eq!(g, vec![3.0, 7.0]);
    }
}
