//! Conjugacy *detection* by structural pattern matching on conditionals
//! (paper §4.4, "the AugurV2 compiler supports conjugacy relations via
//! table lookup").
//!
//! The compiler may fail to detect a relation when the conditional
//! approximation was imprecise or when detecting it would need algebraic
//! rearrangement beyond structural matching — both failure modes are
//! faithful to the paper (which suggests a CAS as future work). Detection
//! failure is not an error: the schedule heuristic falls back to
//! finite-sum Gibbs for discrete variables and gradient-based updates for
//! continuous ones.

use augur_dist::conjugacy::Relation;
use augur_dist::DistKind;

use crate::cond::Conditional;
use crate::expr::DExpr;
use crate::il::{root_var, DensityModel};

/// A successful conjugacy match for a conditional.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjugacyMatch {
    /// The relation from the well-known table.
    pub relation: Relation,
    /// The prior's parameter expressions (free of the target).
    pub prior_args: Vec<DExpr>,
    /// One entry per likelihood factor of the conditional.
    pub likelihoods: Vec<LikTerm>,
}

/// How one likelihood factor participates in a conjugacy relation.
#[derive(Debug, Clone, PartialEq)]
pub struct LikTerm {
    /// Index into `Conditional::factors`.
    pub cond_factor_index: usize,
    /// The distribution-argument position occupied by the target.
    pub target_pos: usize,
    /// The likelihood distribution.
    pub dist: DistKind,
}

/// The support size of a discrete variable, for finite-sum Gibbs
/// (paper §4.4: "directly sums over the support of the discrete variable").
#[derive(Debug, Clone, PartialEq)]
pub enum SupportSize {
    /// The length of a probability-vector expression, resolved at runtime.
    VecLen(DExpr),
    /// A fixed size (Bernoulli ⇒ 2).
    Fixed(i64),
}

/// Attempts to match the conditional against the conjugacy table.
///
/// Returns `None` when no relation applies — the caller falls back to a
/// non-conjugate update.
pub fn detect(_model: &DensityModel, cond: &Conditional) -> Option<ConjugacyMatch> {
    if cond.targets.len() != 1 || !cond.fully_aligned() {
        return None;
    }
    let target = &cond.targets[0];
    let prior = cond.prior()?;
    if prior.factor.args.iter().any(|a| a.mentions(target)) {
        return None;
    }

    let mut relation: Option<Relation> = None;
    let mut likelihoods = Vec::new();
    for (i, cf) in cond.factors.iter().enumerate() {
        if cf.is_prior {
            continue;
        }
        let f = &cf.factor;
        // The target must not be the factor's point (each variable has one
        // declaration) and must occupy exactly one argument, wholly.
        if f.point.mentions(target) {
            return None;
        }
        let mut target_pos = None;
        for (pos, arg) in f.args.iter().enumerate() {
            if !arg.mentions(target) {
                continue;
            }
            // The whole argument must be an index chain rooted at the
            // target (`mu[z[n]]`, `theta[d]`, `pi`); anything else (e.g.
            // `sigmoid(dot(x, theta))`) defeats structural matching.
            if root_var(arg) != Some(target.as_str()) || target_pos.is_some() {
                return None;
            }
            target_pos = Some(pos);
        }
        let pos = target_pos?;
        let rel = table(prior.factor.dist, f.dist, pos)?;
        match relation {
            None => relation = Some(rel),
            Some(r) if r == rel => {}
            Some(_) => return None, // mixed relations: bail out
        }
        likelihoods.push(LikTerm { cond_factor_index: i, target_pos: pos, dist: f.dist });
    }

    Some(ConjugacyMatch {
        relation: relation?,
        prior_args: prior.factor.args.clone(),
        likelihoods,
    })
}

/// The well-known table: `(prior, likelihood, target position) → relation`.
fn table(prior: DistKind, lik: DistKind, pos: usize) -> Option<Relation> {
    Some(match (prior, lik, pos) {
        (DistKind::Dirichlet, DistKind::Categorical, 0) => Relation::DirichletCategorical,
        (DistKind::Beta, DistKind::Bernoulli, 0) => Relation::BetaBernoulli,
        (DistKind::Normal, DistKind::Normal, 0) => Relation::NormalNormalMean,
        (DistKind::MvNormal, DistKind::MvNormal, 0) => Relation::MvNormalMvNormalMean,
        (DistKind::InvGamma, DistKind::Normal, 1) => Relation::InvGammaNormalVar,
        (DistKind::InvWishart, DistKind::MvNormal, 1) => Relation::InvWishartMvNormalCov,
        (DistKind::Gamma, DistKind::Poisson, 0) => Relation::GammaPoisson,
        (DistKind::Gamma, DistKind::Exponential, 0) => Relation::GammaExponential,
        _ => return None,
    })
}

/// Determines the support size of a discrete target for finite-sum Gibbs.
///
/// Returns `None` when the target is not discrete-finite.
pub fn discrete_support(model: &DensityModel, target: &str) -> Option<SupportSize> {
    let (_, prior) = model.prior_factor(target)?;
    match prior.dist {
        DistKind::Categorical => Some(SupportSize::VecLen(prior.args[0].clone())),
        DistKind::Bernoulli | DistKind::BernoulliLogit => Some(SupportSize::Fixed(2)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conditional, DensityModel};
    use augur_lang::{parse, typecheck};

    fn build(src: &str) -> DensityModel {
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    const HGMM: &str = r#"(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
        param pi ~ Dirichlet(alpha) ;
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param Sigma[k] ~ InvWishart(nu, Psi) for k <- 0 until K ;
        param z[n] ~ Categorical(pi) for n <- 0 until N ;
        data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]]) for n <- 0 until N ;
    }"#;

    #[test]
    fn hgmm_is_fully_conjugate() {
        let dm = build(HGMM);
        let cases = [
            ("pi", Relation::DirichletCategorical),
            ("mu", Relation::MvNormalMvNormalMean),
            ("Sigma", Relation::InvWishartMvNormalCov),
        ];
        for (var, expect) in cases {
            let cond = conditional(&dm, &[var]);
            let m = detect(&dm, &cond)
                .unwrap_or_else(|| panic!("{var} should be conjugate"));
            assert_eq!(m.relation, expect, "{var}");
            assert_eq!(m.likelihoods.len(), 1);
        }
    }

    #[test]
    fn hgmm_sigma_target_position_is_one() {
        let dm = build(HGMM);
        let cond = conditional(&dm, &["Sigma"]);
        let m = detect(&dm, &cond).unwrap();
        assert_eq!(m.likelihoods[0].target_pos, 1);
    }

    #[test]
    fn z_is_not_conjugate_but_has_finite_support() {
        let dm = build(HGMM);
        let cond = conditional(&dm, &["z"]);
        // z appears *inside* index expressions (mu[z[n]]), not as a whole
        // argument, so no conjugacy relation matches …
        assert!(detect(&dm, &cond).is_none());
        // … but its support is the length of pi.
        match discrete_support(&dm, "z") {
            Some(SupportSize::VecLen(e)) => assert_eq!(format!("{e}"), "pi"),
            other => panic!("unexpected support {other:?}"),
        }
    }

    #[test]
    fn lda_theta_and_phi_are_dirichlet_categorical() {
        let dm = build(
            r#"(K, D, alpha, beta, len) => {
            param theta[d] ~ Dirichlet(alpha) for d <- 0 until D ;
            param phi[k] ~ Dirichlet(beta) for k <- 0 until K ;
            param z[d][j] ~ Categorical(theta[d]) for d <- 0 until D, j <- 0 until len[d] ;
            data w[d][j] ~ Categorical(phi[z[d][j]]) for d <- 0 until D, j <- 0 until len[d] ;
        }"#,
        );
        for var in ["theta", "phi"] {
            let cond = conditional(&dm, &[var]);
            let m = detect(&dm, &cond).unwrap_or_else(|| panic!("{var}"));
            assert_eq!(m.relation, Relation::DirichletCategorical);
        }
    }

    #[test]
    fn hlr_theta_is_not_conjugate() {
        let dm = build(
            r#"(lambda, N, D, x) => {
            param sigma2 ~ Exponential(lambda) ;
            param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta))) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["theta"]);
        assert!(detect(&dm, &cond).is_none());
        // Exponential prior on a Normal variance is not in the table either.
        let cond2 = conditional(&dm, &["sigma2"]);
        assert!(detect(&dm, &cond2).is_none());
    }

    #[test]
    fn normal_normal_chain_detects_mean_relation() {
        let dm = build(
            r#"(N, tau2, s2) => {
            param m ~ Normal(0.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["m"]);
        let mt = detect(&dm, &cond).unwrap();
        assert_eq!(mt.relation, Relation::NormalNormalMean);
        assert_eq!(format!("{}", mt.prior_args[1]), "tau2");
    }

    #[test]
    fn invgamma_variance_relation() {
        let dm = build(
            r#"(N, a, b, m) => {
            param v ~ InvGamma(a, b) ;
            data y[n] ~ Normal(m, v) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["v"]);
        assert_eq!(detect(&dm, &cond).unwrap().relation, Relation::InvGammaNormalVar);
    }

    #[test]
    fn gamma_poisson_and_exponential_relations() {
        let dm = build(
            r#"(N, a, b) => {
            param r ~ Gamma(a, b) ;
            data c[n] ~ Poisson(r) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["r"]);
        assert_eq!(detect(&dm, &cond).unwrap().relation, Relation::GammaPoisson);

        let dm2 = build(
            r#"(N, a, b) => {
            param r ~ Gamma(a, b) ;
            data t[n] ~ Exponential(r) for n <- 0 until N ;
        }"#,
        );
        let cond2 = conditional(&dm2, &["r"]);
        assert_eq!(detect(&dm2, &cond2).unwrap().relation, Relation::GammaExponential);
    }

    #[test]
    fn beta_bernoulli_relation() {
        let dm = build(
            r#"(N) => {
            param p ~ Beta(1.0, 1.0) ;
            data y[n] ~ Bernoulli(p) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["p"]);
        assert_eq!(detect(&dm, &cond).unwrap().relation, Relation::BetaBernoulli);
    }

    #[test]
    fn mean_used_through_arithmetic_defeats_matching() {
        // p(m | y) IS conjugate mathematically (2m is linear), but the
        // structural matcher — like the paper's — does not rearrange.
        let dm = build(
            r#"(N, s2) => {
            param m ~ Normal(0.0, 1.0) ;
            data y[n] ~ Normal(2.0 * m, s2) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["m"]);
        assert!(detect(&dm, &cond).is_none());
    }

    #[test]
    fn bernoulli_support_is_two() {
        let dm = build(
            r#"(N) => {
            param s ~ Bernoulli(0.3) ;
            data y[n] ~ Normal(s, 1.0) for n <- 0 until N ;
        }"#,
        );
        assert_eq!(discrete_support(&dm, "s"), Some(SupportSize::Fixed(2)));
        assert_eq!(discrete_support(&dm, "y"), None);
    }

    #[test]
    fn two_likelihoods_same_relation_accumulate() {
        let dm = build(
            r#"(N, M, tau2, s2) => {
            param m ~ Normal(0.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
            data w[j] ~ Normal(m, s2) for j <- 0 until M ;
        }"#,
        );
        let cond = conditional(&dm, &["m"]);
        let mt = detect(&dm, &cond).unwrap();
        assert_eq!(mt.likelihoods.len(), 2);
    }
}
