//! The **Density IL** (paper §3, Fig. 4) and the symbolic computation of
//! model conditionals (§3.3).
//!
//! The frontend translates a type-checked surface model into its *density
//! factorization*: a product of comprehension-wrapped primitive density
//! atoms. For the Fig. 1 GMM the factorization is
//!
//! ```text
//! λ(K, N, mu_0, Sigma_0, pis, Sigma, mu, z, x).
//!     Π_{k←0 until K} p_MvNormal(mu_0, Sigma_0)(mu[k])
//!     Π_{n←0 until N} p_Categorical(pis)(z[n])
//!     Π_{n←0 until N} p_MvNormal(mu[z[n]], Sigma)(x[n])
//! ```
//!
//! From the factorization the compiler *symbolically* computes each
//! parameter's conditional up to a normalizing constant, keeping factors
//! with a functional dependence on the target and applying two rewrite
//! rules (in this order, as the paper prescribes):
//!
//! 1. **categorical indexing**: `Π_{n} fn → Π_{k} Π_{n} [fn]_{k = z[n]}`
//!    when `fn` mentions the target indexed through a categorical variable
//!    `z` — the mixture-model pattern;
//! 2. **factoring**: `Π_{i←g} fn₁ · Π_{j←g} fn₂ → Π_{i←g} fn₁ fn₂` when the
//!    comprehension bounds are syntactically equal constants.
//!
//! The result feeds the Kernel IL (`augur-kernel`): Gibbs updates come from
//! [`conjugacy::detect`] matches, discrete enumeration from
//! [`conjugacy::discrete_support`], and gradient/slice updates evaluate the
//! conditional directly.
//!
//! # Example
//!
//! ```
//! use augur_density::{DensityModel, conditional};
//!
//! let src = "(K, N, mu0, s0, pis, s) => {
//!   param mu[k] ~ Normal(mu0, s0) for k <- 0 until K ;
//!   param z[n] ~ Categorical(pis) for n <- 0 until N ;
//!   data x[n] ~ Normal(mu[z[n]], s) for n <- 0 until N ;
//! }";
//! let typed = augur_lang::typecheck(&augur_lang::parse(src)?)?;
//! let dm = DensityModel::from_typed(&typed)?;
//! let cond = conditional(&dm, &["mu"]);
//! // prior factor + rewritten likelihood factor
//! assert_eq!(cond.factors.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod cond;
pub mod conjugacy;
mod expr;
mod il;
mod pretty;

pub use cond::{conditional, CondFactor, Conditional, Rewrite};
pub use expr::DExpr;
pub use il::{Comp, DensityError, DensityModel, Factor, VarInfo, VarRole};
pub use pretty::{pretty_density, pretty_factor};
