//! The Density IL proper: models as lists of comprehension-wrapped factors.
//!
//! The paper's grammar (Fig. 4) builds densities from products, structured
//! products, lets, and indicators. Products are associative and the
//! compiler constantly re-associates them during rewriting, so the IL here
//! normalizes a density to a **flat list of factors**, each factor carrying
//! its own chain of comprehensions and indicator conditions. This is the
//! same normal form the conditional analysis of §3.3 works over.

use std::collections::HashMap;
use std::fmt;

use augur_dist::DistKind;
use augur_lang::ast::{DeclRhs, DeclRole};
use augur_lang::ty::Ty;
use augur_lang::typeck::TypedModel;

use crate::expr::DExpr;

/// A comprehension `var ← lo until hi` (parallel semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Comp {
    /// The bound index variable.
    pub var: String,
    /// Inclusive lower bound.
    pub lo: DExpr,
    /// Exclusive upper bound.
    pub hi: DExpr,
}

impl Comp {
    /// Creates a comprehension over `0 until hi` with the given variable.
    pub fn upto(var: impl Into<String>, hi: DExpr) -> Comp {
        Comp { var: var.into(), lo: DExpr::Int(0), hi }
    }

    /// Structural bound equality — the side condition of the factoring
    /// rule. Bounds are constant expressions (fixed-structure restriction),
    /// so syntactic equality is the paper's test.
    pub fn same_bounds(&self, other: &Comp) -> bool {
        self.lo == other.lo && self.hi == other.hi
    }
}

/// One factor of a density factorization:
/// `Π_{comps} [ p_dist(args)(point) ]_{inds}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Comprehension chain, outermost first.
    pub comps: Vec<Comp>,
    /// Indicator conditions `lhs = rhs` wrapped around the atom; the factor
    /// contributes only where all hold (`[fn]_{x=e}` in Fig. 4).
    pub inds: Vec<(DExpr, DExpr)>,
    /// The primitive distribution of the atom.
    pub dist: DistKind,
    /// Distribution parameters.
    pub args: Vec<DExpr>,
    /// The point the density is evaluated at (e.g. `mu[k]`, `x[n]`).
    pub point: DExpr,
}

impl Factor {
    /// True when any expression of the factor (point, args, indicator
    /// sides) mentions `name`. Comprehension bounds are excluded: they are
    /// constants by the fixed-structure restriction, so they never carry a
    /// functional dependence on a parameter.
    pub fn mentions(&self, name: &str) -> bool {
        self.point.mentions(name)
            || self.args.iter().any(|a| a.mentions(name))
            || self.inds.iter().any(|(l, r)| l.mentions(name) || r.mentions(name))
    }

    /// Substitutes a variable throughout the factor's expressions
    /// (not the comprehension variables).
    pub fn subst(&self, name: &str, replacement: &DExpr) -> Factor {
        Factor {
            comps: self.comps.clone(),
            inds: self
                .inds
                .iter()
                .map(|(l, r)| (l.subst(name, replacement), r.subst(name, replacement)))
                .collect(),
            dist: self.dist,
            args: self.args.iter().map(|a| a.subst(name, replacement)).collect(),
            point: self.point.subst(name, replacement),
        }
    }
}

/// The role a name plays in a density model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRole {
    /// A closed-over model argument (hyper-/meta-parameter or covariate).
    Arg,
    /// A latent variable (sampled by inference).
    Param,
    /// An observed variable (bound to user data).
    Data,
}

/// Name, role and type of a model variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// The variable name.
    pub name: String,
    /// Its role.
    pub role: VarRole,
    /// Its resolved surface type.
    pub ty: Ty,
}

/// Errors produced while building a density model.
#[derive(Debug, Clone, PartialEq)]
pub enum DensityError {
    /// A comprehension-shaped `let` was referenced whole rather than
    /// pointwise — inlining needs an index per comprehension level.
    DetWholeUse(String),
    /// A `let` was indexed with fewer indices than its comprehension has
    /// levels.
    DetArity {
        /// The `let` name.
        name: String,
        /// Comprehension levels of the definition.
        expected: usize,
        /// Indices at the use site.
        actual: usize,
    },
}

impl fmt::Display for DensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DensityError::DetWholeUse(name) => write!(
                f,
                "deterministic array `{name}` used whole; reference it pointwise (`{name}[i]`)"
            ),
            DensityError::DetArity { name, expected, actual } => write!(
                f,
                "deterministic array `{name}` has {expected} comprehension level(s) but was \
                 indexed with {actual}"
            ),
        }
    }
}

impl std::error::Error for DensityError {}

/// A model in the Density IL: `λ(args, params, data). Π factors`.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityModel {
    /// Closed-over arguments, in order.
    pub args: Vec<VarInfo>,
    /// Random variables (params then data), in declaration order.
    pub vars: Vec<VarInfo>,
    /// The factors of the density, in declaration order. Factor `i`
    /// corresponds to random-variable declaration `i`.
    pub factors: Vec<Factor>,
}

impl DensityModel {
    /// Translates a type-checked surface model into its density
    /// factorization.
    ///
    /// Deterministic (`let`) declarations are *inlined* into every factor
    /// that references them — the Density IL keeps `let` in its grammar,
    /// but inlining keeps the conditional analysis purely structural.
    /// Comprehension-shaped `let`s (`let m[n] = … for n <- …`) inline
    /// pointwise: a use `m[e]` becomes the body with the comprehension
    /// variable substituted by `e`.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::DetWholeUse`] / [`DensityError::DetArity`]
    /// when a deterministic array is referenced whole or under-indexed.
    pub fn from_typed(typed: &TypedModel) -> Result<Self, DensityError> {
        let model = &typed.model;
        let args: Vec<VarInfo> = model
            .args
            .iter()
            .map(|a| VarInfo {
                name: a.name.clone(),
                role: VarRole::Arg,
                ty: typed.ty(&a.name).clone(),
            })
            .collect();

        let mut vars = Vec::new();
        let mut factors = Vec::new();
        let mut lets: HashMap<String, LetDef> = HashMap::new();

        for decl in &model.decls {
            match (&decl.role, &decl.rhs) {
                (DeclRole::Det, DeclRhs::Det(e)) => {
                    // Close the body over earlier lets at definition time.
                    let body = inline(&DExpr::from_surface(e), &lets)?;
                    let params: Vec<String> =
                        decl.gens.iter().map(|g| g.var.name.clone()).collect();
                    lets.insert(decl.lhs.name.clone(), LetDef { params, body });
                }
                (role, DeclRhs::Dist(call)) => {
                    let var_role = match role {
                        DeclRole::Param => VarRole::Param,
                        DeclRole::Data => VarRole::Data,
                        DeclRole::Det => unreachable!("det decl with dist rhs"),
                    };
                    vars.push(VarInfo {
                        name: decl.lhs.name.clone(),
                        role: var_role,
                        ty: typed.ty(&decl.lhs.name).clone(),
                    });
                    let mut comps = Vec::with_capacity(decl.gens.len());
                    for g in &decl.gens {
                        comps.push(Comp {
                            var: g.var.name.clone(),
                            lo: inline(&DExpr::from_surface(&g.lo), &lets)?,
                            hi: inline(&DExpr::from_surface(&g.hi), &lets)?,
                        });
                    }
                    // point = lhs[sub1][sub2]...
                    let mut point = DExpr::var(&decl.lhs.name);
                    for sub in &decl.subscripts {
                        point = DExpr::index(point, DExpr::var(&sub.name));
                    }
                    let mut fargs = Vec::with_capacity(call.args.len());
                    for a in &call.args {
                        fargs.push(inline(&DExpr::from_surface(a), &lets)?);
                    }
                    factors.push(Factor {
                        comps,
                        inds: Vec::new(),
                        dist: call.dist,
                        args: fargs,
                        point,
                    });
                }
                (DeclRole::Param | DeclRole::Data, DeclRhs::Det(_)) => {
                    unreachable!("parser produces Det rhs only for let")
                }
            }
        }
        Ok(DensityModel { args, vars, factors })
    }

    /// Looks up a random variable by name.
    pub fn var(&self, name: &str) -> Option<&VarInfo> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Looks up an argument by name.
    pub fn arg(&self, name: &str) -> Option<&VarInfo> {
        self.args.iter().find(|a| a.name == name)
    }

    /// The factor whose point is the declaration of `name` (its prior
    /// factor), together with its index.
    pub fn prior_factor(&self, name: &str) -> Option<(usize, &Factor)> {
        self.factors.iter().enumerate().find(|(_, f)| match root_var(&f.point) {
            Some(root) => root == name,
            None => false,
        })
    }

    /// Latent variables, in declaration order.
    pub fn params(&self) -> impl Iterator<Item = &VarInfo> {
        self.vars.iter().filter(|v| v.role == VarRole::Param)
    }

    /// Observed variables, in declaration order.
    pub fn data(&self) -> impl Iterator<Item = &VarInfo> {
        self.vars.iter().filter(|v| v.role == VarRole::Data)
    }
}

/// A deterministic definition: comprehension variables plus a body closed
/// over earlier lets.
#[derive(Debug, Clone)]
struct LetDef {
    params: Vec<String>,
    body: DExpr,
}

/// Inlines deterministic definitions into an expression, pointwise for
/// comprehension-shaped lets.
fn inline(e: &DExpr, lets: &HashMap<String, LetDef>) -> Result<DExpr, DensityError> {
    match e {
        DExpr::Var(n) => match lets.get(n) {
            Some(def) if def.params.is_empty() => Ok(def.body.clone()),
            Some(_) => Err(DensityError::DetWholeUse(n.clone())),
            None => Ok(e.clone()),
        },
        DExpr::Int(_) | DExpr::Real(_) => Ok(e.clone()),
        DExpr::Index(..) => {
            // Peel the index chain and check whether the root is a let.
            let mut indices = Vec::new();
            let mut root = e;
            while let DExpr::Index(base, idx) = root {
                indices.push(idx.as_ref());
                root = base;
            }
            indices.reverse();
            if let DExpr::Var(name) = root {
                if let Some(def) = lets.get(name) {
                    if indices.len() < def.params.len() {
                        return Err(DensityError::DetArity {
                            name: name.clone(),
                            expected: def.params.len(),
                            actual: indices.len(),
                        });
                    }
                    // substitute the leading indices for the comprehension
                    // variables, then apply any remaining indices
                    let mut out = def.body.clone();
                    for (pvar, ie) in def.params.iter().zip(&indices) {
                        let inlined_idx = inline(ie, lets)?;
                        out = out.subst(pvar, &inlined_idx);
                    }
                    for ie in &indices[def.params.len()..] {
                        out = DExpr::index(out, inline(ie, lets)?);
                    }
                    return Ok(out);
                }
            }
            // ordinary chain: inline recursively
            let DExpr::Index(base, idx) = e else { unreachable!() };
            Ok(DExpr::index(inline(base, lets)?, inline(idx, lets)?))
        }
        DExpr::Call(f, args) => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(inline(a, lets)?);
            }
            Ok(DExpr::Call(*f, out))
        }
        DExpr::Binop(op, a, b) => Ok(DExpr::Binop(
            *op,
            Box::new(inline(a, lets)?),
            Box::new(inline(b, lets)?),
        )),
        DExpr::Neg(a) => Ok(DExpr::Neg(Box::new(inline(a, lets)?))),
    }
}

/// The root variable of an lvalue-shaped expression (`mu[k][j] → mu`).
pub(crate) fn root_var(e: &DExpr) -> Option<&str> {
    match e {
        DExpr::Var(n) => Some(n),
        DExpr::Index(base, _) => root_var(base),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_lang::{parse, typecheck};

    fn build(src: &str) -> DensityModel {
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    const GMM: &str = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param z[n] ~ Categorical(pis) for n <- 0 until N ;
        data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
    }"#;

    #[test]
    fn gmm_has_three_factors() {
        let dm = build(GMM);
        assert_eq!(dm.factors.len(), 3);
        assert_eq!(dm.vars.len(), 3);
        assert_eq!(format!("{}", dm.factors[0].point), "mu[k]");
        assert_eq!(format!("{}", dm.factors[2].args[0]), "mu[z[n]]");
        assert_eq!(dm.factors[0].comps.len(), 1);
        assert_eq!(dm.factors[0].comps[0].var, "k");
    }

    #[test]
    fn roles_and_lookup() {
        let dm = build(GMM);
        assert_eq!(dm.var("mu").unwrap().role, VarRole::Param);
        assert_eq!(dm.var("x").unwrap().role, VarRole::Data);
        assert!(dm.var("nope").is_none());
        assert_eq!(dm.arg("K").unwrap().role, VarRole::Arg);
        assert_eq!(dm.params().count(), 2);
        assert_eq!(dm.data().count(), 1);
    }

    #[test]
    fn prior_factor_finds_declaration() {
        let dm = build(GMM);
        let (i, f) = dm.prior_factor("z").unwrap();
        assert_eq!(i, 1);
        assert_eq!(f.dist, DistKind::Categorical);
    }

    #[test]
    fn factor_mentions_excludes_bounds() {
        let dm = build(GMM);
        // The mu prior factor's bound is K but no expression mentions K.
        assert!(!dm.factors[0].mentions("K"));
        assert!(dm.factors[2].mentions("mu"));
        assert!(dm.factors[2].mentions("z"));
    }

    #[test]
    fn let_declarations_are_inlined() {
        let dm = build(
            "(a, b) => { let c = a * b ; param x ~ Normal(c, 1.0) ; data y ~ Normal(x, c) ; }",
        );
        assert_eq!(dm.factors.len(), 2);
        assert_eq!(format!("{}", dm.factors[0].args[0]), "(a * b)");
        assert_eq!(format!("{}", dm.factors[1].args[1]), "(a * b)");
    }

    #[test]
    fn nested_lets_inline_transitively() {
        let dm = build("(a) => { let b = a + 1.0 ; let c = b * 2.0 ; param x ~ Normal(c, 1.0) ; }");
        assert_eq!(format!("{}", dm.factors[0].args[0]), "((a + 1.0) * 2.0)");
    }

    #[test]
    fn comprehension_let_inlines_pointwise() {
        let dm = build(
            "(N, v, s2) => {
                let m[n] = v[n] * 2.0 for n <- 0 until N ;
                data y[n] ~ Normal(m[n], s2) for n <- 0 until N ;
            }",
        );
        assert_eq!(dm.factors.len(), 1);
        assert_eq!(format!("{}", dm.factors[0].args[0]), "(v[n] * 2.0)");
    }

    #[test]
    fn comprehension_let_whole_use_is_rejected() {
        let typed = typecheck(
            &parse(
                "(N, v) => {
                    let m[n] = v[n] for n <- 0 until N ;
                    param t ~ Categorical(m) ;
                }",
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            DensityModel::from_typed(&typed),
            Err(DensityError::DetWholeUse(_))
        ));
    }

    #[test]
    fn nested_comprehension_let_substitutes_indices() {
        // the index expression at the use site replaces the comprehension
        // variable — including through another variable's index
        let dm = build(
            "(K, N, base, pis, s2) => {
                let center[k] = base[k] + 1.0 for k <- 0 until K ;
                param z[n] ~ Categorical(pis) for n <- 0 until N ;
                data y[n] ~ Normal(center[z[n]], s2) for n <- 0 until N ;
            }",
        );
        assert_eq!(format!("{}", dm.factors[1].args[0]), "(base[z[n]] + 1.0)");
    }

    #[test]
    fn lda_double_comprehension_point() {
        let dm = build(
            r#"(K, D, alpha, beta, len) => {
            param theta[d] ~ Dirichlet(alpha) for d <- 0 until D ;
            param phi[k] ~ Dirichlet(beta) for k <- 0 until K ;
            param z[d][j] ~ Categorical(theta[d]) for d <- 0 until D, j <- 0 until len[d] ;
            data w[d][j] ~ Categorical(phi[z[d][j]]) for d <- 0 until D, j <- 0 until len[d] ;
        }"#,
        );
        assert_eq!(format!("{}", dm.factors[2].point), "z[d][j]");
        assert_eq!(dm.factors[3].comps.len(), 2);
        assert_eq!(format!("{}", dm.factors[3].comps[1].hi), "len[d]");
    }

    #[test]
    fn same_bounds_is_syntactic() {
        let a = Comp::upto("i", DExpr::var("N"));
        let b = Comp::upto("j", DExpr::var("N"));
        let c = Comp::upto("j", DExpr::var("M"));
        assert!(a.same_bounds(&b));
        assert!(!a.same_bounds(&c));
    }
}
