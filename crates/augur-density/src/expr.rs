//! Span-free expressions for the Density IL and everything downstream.

pub use augur_lang::ast::{BinOp, Builtin};

/// An expression in the Density IL (and, unchanged, in the lower ILs).
///
/// Compared to the surface AST this is span-free and uses plain string
/// names; the compiler pipeline resolves names to storage slots only at the
/// very end (`augur-backend`), because the rewrite rules are *syntactic*
/// and easier to state over names.
#[derive(Debug, Clone, PartialEq)]
pub enum DExpr {
    /// A variable reference.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A real literal.
    Real(f64),
    /// Indexing `e[e]`.
    Index(Box<DExpr>, Box<DExpr>),
    /// A builtin call.
    Call(Builtin, Vec<DExpr>),
    /// A binary operation.
    Binop(BinOp, Box<DExpr>, Box<DExpr>),
    /// Unary negation.
    Neg(Box<DExpr>),
}

impl DExpr {
    /// Shorthand for a variable.
    pub fn var(name: impl Into<String>) -> DExpr {
        DExpr::Var(name.into())
    }

    /// Shorthand for `base[idx]`.
    pub fn index(base: DExpr, idx: DExpr) -> DExpr {
        DExpr::Index(Box::new(base), Box::new(idx))
    }

    /// Visits every variable name in the expression.
    pub fn visit_vars<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            DExpr::Var(n) => f(n),
            DExpr::Int(_) | DExpr::Real(_) => {}
            DExpr::Index(a, b) | DExpr::Binop(_, a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
            DExpr::Call(_, args) => {
                for a in args {
                    a.visit_vars(f);
                }
            }
            DExpr::Neg(a) => a.visit_vars(f),
        }
    }

    /// True when the expression mentions the variable.
    pub fn mentions(&self, name: &str) -> bool {
        let mut found = false;
        self.visit_vars(&mut |n| found |= n == name);
        found
    }

    /// Substitutes `replacement` for every occurrence of the variable
    /// `name`, returning the new expression.
    pub fn subst(&self, name: &str, replacement: &DExpr) -> DExpr {
        match self {
            DExpr::Var(n) if n == name => replacement.clone(),
            DExpr::Var(_) | DExpr::Int(_) | DExpr::Real(_) => self.clone(),
            DExpr::Index(a, b) => {
                DExpr::Index(Box::new(a.subst(name, replacement)), Box::new(b.subst(name, replacement)))
            }
            DExpr::Call(f, args) => {
                DExpr::Call(*f, args.iter().map(|a| a.subst(name, replacement)).collect())
            }
            DExpr::Binop(op, a, b) => DExpr::Binop(
                *op,
                Box::new(a.subst(name, replacement)),
                Box::new(b.subst(name, replacement)),
            ),
            DExpr::Neg(a) => DExpr::Neg(Box::new(a.subst(name, replacement))),
        }
    }

    /// Substitutes a whole *expression* occurrence: every subexpression
    /// structurally equal to `from` becomes `to`. Used by the categorical
    /// indexing rule (`mu[z[n]] ↦ mu[k]` inside the indicator slice).
    pub fn subst_expr(&self, from: &DExpr, to: &DExpr) -> DExpr {
        if self == from {
            return to.clone();
        }
        match self {
            DExpr::Var(_) | DExpr::Int(_) | DExpr::Real(_) => self.clone(),
            DExpr::Index(a, b) => DExpr::Index(
                Box::new(a.subst_expr(from, to)),
                Box::new(b.subst_expr(from, to)),
            ),
            DExpr::Call(f, args) => {
                DExpr::Call(*f, args.iter().map(|a| a.subst_expr(from, to)).collect())
            }
            DExpr::Binop(op, a, b) => DExpr::Binop(
                *op,
                Box::new(a.subst_expr(from, to)),
                Box::new(b.subst_expr(from, to)),
            ),
            DExpr::Neg(a) => DExpr::Neg(Box::new(a.subst_expr(from, to))),
        }
    }

    /// Converts a surface AST expression (types already checked) into a
    /// density-IL expression.
    pub fn from_surface(e: &augur_lang::ast::Expr) -> DExpr {
        use augur_lang::ast::Expr as S;
        match e {
            S::Var(id) => DExpr::Var(id.name.clone()),
            S::Int(v, _) => DExpr::Int(*v),
            S::Real(v, _) => DExpr::Real(*v),
            S::Index(a, b, _) => {
                DExpr::Index(Box::new(DExpr::from_surface(a)), Box::new(DExpr::from_surface(b)))
            }
            S::Call(f, args, _) => DExpr::Call(*f, args.iter().map(DExpr::from_surface).collect()),
            S::Binop(op, a, b, _) => DExpr::Binop(
                *op,
                Box::new(DExpr::from_surface(a)),
                Box::new(DExpr::from_surface(b)),
            ),
            S::Neg(a, _) => DExpr::Neg(Box::new(DExpr::from_surface(a))),
        }
    }
}

impl std::fmt::Display for DExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DExpr::Var(n) => f.write_str(n),
            DExpr::Int(v) => write!(f, "{v}"),
            DExpr::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            DExpr::Index(a, b) => write!(f, "{a}[{b}]"),
            DExpr::Call(b, args) => {
                write!(f, "{}(", b.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            DExpr::Binop(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            DExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mu_z_n() -> DExpr {
        // mu[z[n]]
        DExpr::index(DExpr::var("mu"), DExpr::index(DExpr::var("z"), DExpr::var("n")))
    }

    #[test]
    fn subst_var() {
        let e = mu_z_n();
        let s = e.subst("n", &DExpr::Int(3));
        assert_eq!(format!("{s}"), "mu[z[3]]");
        assert!(!s.mentions("n"));
    }

    #[test]
    fn subst_expr_replaces_structural_match() {
        let e = mu_z_n();
        let from = DExpr::index(DExpr::var("z"), DExpr::var("n"));
        let to = DExpr::var("k");
        assert_eq!(format!("{}", e.subst_expr(&from, &to)), "mu[k]");
    }

    #[test]
    fn mentions_and_visit() {
        let e = mu_z_n();
        assert!(e.mentions("z") && e.mentions("mu") && !e.mentions("x"));
        let mut names = Vec::new();
        e.visit_vars(&mut |n| names.push(n.to_owned()));
        assert_eq!(names, ["mu", "z", "n"]);
    }

    #[test]
    fn display_binop_parenthesizes() {
        let e = DExpr::Binop(
            BinOp::Add,
            Box::new(DExpr::var("a")),
            Box::new(DExpr::Neg(Box::new(DExpr::var("b")))),
        );
        assert_eq!(format!("{e}"), "(a + (-b))");
    }
}
