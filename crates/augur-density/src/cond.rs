//! Symbolic computation of model conditionals (paper §3.2–3.3).
//!
//! Given the density factorization and a target parameter `v`, the
//! conditional `p(v | rest)` up to a normalizing constant is the product of
//! the factors with a *functional dependence* on `v` — the others cancel.
//! The subtlety is structured products: the compiler cannot unfold them
//! (sizes are large and regularity would be lost), so it reasons
//! symbolically, applying the **categorical indexing** rule first and then
//! the **factoring** rule, exactly as §3.3 prescribes.
//!
//! The output [`Conditional`] is a list of factors *aligned* to the
//! target's own comprehension structure wherever the rules apply: an
//! aligned factor's leading comprehensions are the target's, so a Gibbs
//! update can sample every `v[k]` slice independently (and in parallel).
//! Factors the rules cannot align are kept unaligned — a loss of precision
//! the paper accepts — and still participate in whole-variable updates
//! (HMC, slice, MH).

use crate::expr::DExpr;
use crate::il::{root_var, Comp, DensityModel, Factor};

/// A conditional `p(targets | rest) ∝ Π factors`, in Density IL form.
#[derive(Debug, Clone, PartialEq)]
pub struct Conditional {
    /// The target variable(s) — one for `Single(x)` kernel units, several
    /// for `Block(xs)`.
    pub targets: Vec<String>,
    /// The comprehension structure of the (single) target's declaration;
    /// empty for scalar targets and for blocks.
    pub target_comps: Vec<Comp>,
    /// The factors of the conditional.
    pub factors: Vec<CondFactor>,
}

/// One factor of a conditional, with alignment metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CondFactor {
    /// The (possibly rewritten) factor.
    pub factor: Factor,
    /// True when `factor.comps` begins with the target's comprehensions,
    /// so the factor decomposes pointwise over target slices.
    pub aligned: bool,
    /// True when this is the target's own prior factor.
    pub is_prior: bool,
    /// Index of the originating factor in the model.
    pub source: usize,
    /// Which §3.3 rewrite aligned this factor — or why none did.
    pub rewrite: Rewrite,
}

/// The §3.3 rewrite that aligned a conditional factor to its target's
/// comprehension structure, or the reason alignment was abandoned. Recorded
/// on every [`CondFactor`] so explain plans can report exactly which rule
/// fired (and why fallbacks happened) without re-deriving the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// The target's own prior factor; aligned by construction.
    Prior,
    /// Scalar target (no comprehensions): every factor contributes whole.
    TrivialScalar,
    /// Factoring rule: every occurrence is `target[c1]..[cm]` over the
    /// factor's leading comprehensions with the target's bounds.
    DirectAlignment,
    /// Categorical indexing rule (mixture pattern): all occurrences are
    /// `target[e]` for one shared `e` rooted in a Categorical parameter.
    CategoricalIndexing,
    /// No rule applied; the factor stays unaligned. Carries the most
    /// specific diagnosable reason (a stable, human-readable string).
    Fallback(String),
    /// Block (multi-target) conditional: alignment is never attempted.
    BlockJoint,
}

impl Rewrite {
    /// Stable short name of the rewrite, as printed in explain plans.
    pub fn describe(&self) -> String {
        match self {
            Rewrite::Prior => "prior".to_owned(),
            Rewrite::TrivialScalar => "trivial-scalar".to_owned(),
            Rewrite::DirectAlignment => "direct-alignment (factoring rule)".to_owned(),
            Rewrite::CategoricalIndexing => {
                "categorical-indexing (mixture rule)".to_owned()
            }
            Rewrite::Fallback(reason) => format!("fallback: {reason}"),
            Rewrite::BlockJoint => "block-joint (no alignment attempted)".to_owned(),
        }
    }
}

impl Conditional {
    /// True when every factor is aligned to the target comprehensions —
    /// the precondition for slice-parallel Gibbs updates.
    pub fn fully_aligned(&self) -> bool {
        self.factors.iter().all(|f| f.aligned)
    }

    /// The prior factor of the (single) target, if present and aligned.
    pub fn prior(&self) -> Option<&CondFactor> {
        self.factors.iter().find(|f| f.is_prior)
    }

    /// The non-prior (likelihood) factors.
    pub fn likelihoods(&self) -> impl Iterator<Item = &CondFactor> {
        self.factors.iter().filter(|f| !f.is_prior)
    }
}

/// Computes the conditional of `targets` given everything else, up to a
/// normalizing constant.
///
/// For a single target the factors are aligned to the target's
/// comprehension structure using the §3.3 rewrite rules. For a block of
/// targets no alignment is attempted (block updates always evaluate the
/// joint conditional whole).
///
/// # Panics
///
/// Panics if any target is not a `param` of the model.
pub fn conditional(model: &DensityModel, targets: &[&str]) -> Conditional {
    for t in targets {
        assert!(
            model.var(t).is_some(),
            "conditional target `{t}` is not a random variable of the model"
        );
    }
    let single = if targets.len() == 1 { Some(targets[0]) } else { None };

    let target_comps: Vec<Comp> = match single {
        Some(t) => model
            .prior_factor(t)
            .map(|(_, f)| f.comps.clone())
            .unwrap_or_default(),
        None => Vec::new(),
    };

    let mut factors = Vec::new();
    for (i, f) in model.factors.iter().enumerate() {
        let mentions_any = targets.iter().any(|t| f.mentions(t));
        if !mentions_any {
            continue; // cancels in the ratio — no functional dependence
        }
        let is_prior = single.is_some_and(|t| root_var(&f.point) == Some(t));
        if let Some(t) = single {
            if is_prior {
                factors.push(CondFactor {
                    factor: f.clone(),
                    aligned: true,
                    is_prior,
                    source: i,
                    rewrite: Rewrite::Prior,
                });
                continue;
            }
            match align_factor(model, t, &target_comps, f) {
                Ok((aligned_factor, rewrite)) => factors.push(CondFactor {
                    factor: aligned_factor,
                    aligned: true,
                    is_prior: false,
                    source: i,
                    rewrite,
                }),
                Err(reason) => factors.push(CondFactor {
                    factor: f.clone(),
                    aligned: false,
                    is_prior: false,
                    source: i,
                    rewrite: Rewrite::Fallback(reason),
                }),
            }
        } else {
            factors.push(CondFactor {
                factor: f.clone(),
                aligned: false,
                is_prior: false,
                source: i,
                rewrite: Rewrite::BlockJoint,
            });
        }
    }

    Conditional { targets: targets.iter().map(|s| (*s).to_owned()).collect(), target_comps, factors }
}

/// Attempts to align a likelihood factor to the target's comprehensions,
/// returning the rewritten factor and the rule that fired on success, or
/// the most specific diagnosable fallback reason on failure.
fn align_factor(
    model: &DensityModel,
    target: &str,
    target_comps: &[Comp],
    f: &Factor,
) -> Result<(Factor, Rewrite), String> {
    // A scalar target (no comprehensions) is trivially aligned: every
    // factor mentioning it contributes whole.
    if target_comps.is_empty() {
        return Ok((f.clone(), Rewrite::TrivialScalar));
    }
    let occs = occurrences(f, target);
    if occs.is_empty() {
        return Err(format!(
            "`{target}` has no indexable occurrence in the factor"
        ));
    }

    // Case 1 — direct alignment (factoring rule): every occurrence is
    // `target[c1]..[cm]` where `ci` are the factor's leading comprehension
    // variables with the same bounds as the target's.
    if let Some(aligned) = try_direct_alignment(target, target_comps, f, &occs) {
        return Ok((aligned, Rewrite::DirectAlignment));
    }

    // Case 2 — categorical indexing rule (mixture pattern): all
    // occurrences are `target[e]` for one common index expression `e`
    // whose root is a Categorical-distributed parameter. Rewrite
    //   Π_{comps} fn  →  Π_{k} Π_{comps} [fn]_{k = e}
    if target_comps.len() == 1 {
        if let Some(aligned) = try_categorical_indexing(model, target_comps, f, &occs) {
            return Ok((aligned, Rewrite::CategoricalIndexing));
        }
    }
    Err(fallback_reason(model, target, target_comps, &occs))
}

/// Diagnoses why neither §3.3 rule applied, in decreasing specificity.
fn fallback_reason(
    model: &DensityModel,
    target: &str,
    target_comps: &[Comp],
    occs: &[DExpr],
) -> String {
    // Whole-value use (e.g. `dot(x[n], theta)`) defeats both rules.
    if occs.iter().any(|o| matches!(o, DExpr::Var(_))) {
        return format!("whole-value use of `{target}` cannot be sliced");
    }
    // All occurrences `target[e]` with one shared `e`: the categorical
    // indexing rule was shape-applicable, so the root test must have
    // failed (or the target is multi-dimensional).
    if let DExpr::Index(_, idx0) = &occs[0] {
        let shared = occs
            .iter()
            .all(|o| matches!(o, DExpr::Index(_, i) if *i == *idx0));
        if shared {
            if target_comps.len() > 1 {
                return format!(
                    "indexed occurrence of {}-dimensional `{target}` fits no rule",
                    target_comps.len()
                );
            }
            return match root_var(idx0) {
                Some(root) => match model.prior_factor(root) {
                    Some((_, prior))
                        if prior.dist != augur_dist::DistKind::Categorical =>
                    {
                        format!(
                            "index root `{root}` is {:?}-distributed, not Categorical",
                            prior.dist
                        )
                    }
                    Some(_) => format!(
                        "occurrences `{target}[{idx0}]` match no alignment rule"
                    ),
                    None => format!(
                        "index root `{root}` is not a parameter of the model"
                    ),
                },
                None => "index expression has no root variable".to_owned(),
            };
        }
    }
    format!("occurrences of `{target}` do not share the factor's leading comprehensions")
}

fn try_direct_alignment(
    target: &str,
    target_comps: &[Comp],
    f: &Factor,
    occs: &[DExpr],
) -> Option<Factor> {
    let m = target_comps.len();
    if f.comps.len() < m {
        return None;
    }
    // Build the expected occurrence `target[c1]..[cm]` and the renaming
    // ci ↦ ki (the target's comprehension variables).
    let mut expected = DExpr::var(target);
    for comp in f.comps.iter().take(m) {
        expected = DExpr::index(expected, DExpr::var(&comp.var));
    }
    if !occs.iter().all(|o| *o == expected) {
        return None;
    }
    // Check bounds match pairwise, renaming as we go (handles ragged
    // bounds like `len[d]` that mention earlier comprehension variables).
    let mut renames: Vec<(String, String)> = Vec::new();
    for (fc, tc) in f.comps.iter().take(m).zip(target_comps) {
        let mut lo = fc.lo.clone();
        let mut hi = fc.hi.clone();
        for (from, to) in &renames {
            lo = lo.subst(from, &DExpr::var(to));
            hi = hi.subst(from, &DExpr::var(to));
        }
        if lo != tc.lo || hi != tc.hi {
            return None;
        }
        renames.push((fc.var.clone(), tc.var.clone()));
    }
    // Apply the renaming to the whole factor and install the target comps.
    let mut out = f.clone();
    for (from, to) in &renames {
        out = out.subst(from, &DExpr::var(to));
        for comp in &mut out.comps {
            comp.lo = comp.lo.subst(from, &DExpr::var(to));
            comp.hi = comp.hi.subst(from, &DExpr::var(to));
        }
    }
    let inner = out.comps.split_off(m);
    let mut comps = target_comps.to_vec();
    comps.extend(inner);
    out.comps = comps;
    Some(out)
}

fn try_categorical_indexing(
    model: &DensityModel,
    target_comps: &[Comp],
    f: &Factor,
    occs: &[DExpr],
) -> Option<Factor> {
    // All occurrences must be `target[e]` with one shared `e`.
    let index_expr = match &occs[0] {
        DExpr::Index(_, idx) => (**idx).clone(),
        _ => return None,
    };
    for occ in occs {
        match occ {
            DExpr::Index(_, idx) if **idx == index_expr => {}
            _ => return None,
        }
    }
    // `e`'s root must be a Categorical-distributed parameter of the model.
    let root = root_var(&index_expr)?;
    let (_, prior) = model.prior_factor(root)?;
    if prior.dist != augur_dist::DistKind::Categorical {
        return None;
    }
    // Π_{comps} fn → Π_{k} Π_{comps} [fn]_{k = e}
    let k = &target_comps[0];
    let mut out = f.clone();
    let mut comps = vec![k.clone()];
    comps.extend(out.comps);
    out.comps = comps;
    out.inds.push((DExpr::var(&k.var), index_expr));
    Some(out)
}

/// Collects the maximal index-chain occurrences of `target` in a factor's
/// expressions (`mu[z[n]]` yields `mu[z[n]]` for target `mu` and `z[n]`
/// for target `z`).
pub(crate) fn occurrences(f: &Factor, target: &str) -> Vec<DExpr> {
    let mut out = Vec::new();
    for a in &f.args {
        collect_occurrences(a, target, &mut out);
    }
    collect_occurrences(&f.point, target, &mut out);
    for (l, r) in &f.inds {
        collect_occurrences(l, target, &mut out);
        collect_occurrences(r, target, &mut out);
    }
    out
}

fn collect_occurrences(e: &DExpr, target: &str, out: &mut Vec<DExpr>) {
    match e {
        DExpr::Var(n) => {
            if n == target {
                out.push(e.clone());
            }
        }
        DExpr::Int(_) | DExpr::Real(_) => {}
        DExpr::Index(base, idx) => {
            if root_var(e) == Some(target) {
                out.push(e.clone());
                // Do not recurse into the base (it is part of this chain),
                // but the index may itself mention the target.
                collect_occurrences(idx, target, out);
            } else {
                collect_occurrences(base, target, out);
                collect_occurrences(idx, target, out);
            }
        }
        DExpr::Call(_, args) => {
            for a in args {
                collect_occurrences(a, target, out);
            }
        }
        DExpr::Binop(_, a, b) => {
            collect_occurrences(a, target, out);
            collect_occurrences(b, target, out);
        }
        DExpr::Neg(a) => collect_occurrences(a, target, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_lang::{parse, typecheck};

    fn build(src: &str) -> DensityModel {
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    const GMM: &str = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param z[n] ~ Categorical(pis) for n <- 0 until N ;
        data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
    }"#;

    #[test]
    fn gmm_mu_conditional_applies_categorical_indexing() {
        let dm = build(GMM);
        let cond = conditional(&dm, &["mu"]);
        assert_eq!(cond.factors.len(), 2, "z prior must cancel");
        assert!(cond.fully_aligned());
        let lik = cond.likelihoods().next().unwrap();
        // Π_k Π_n [p_MvNormal(mu[z[n]], Sigma)(x[n])]_{k = z[n]}
        assert_eq!(lik.factor.comps.len(), 2);
        assert_eq!(lik.factor.comps[0].var, "k");
        assert_eq!(lik.factor.comps[1].var, "n");
        assert_eq!(lik.factor.inds.len(), 1);
        assert_eq!(format!("{}", lik.factor.inds[0].0), "k");
        assert_eq!(format!("{}", lik.factor.inds[0].1), "z[n]");
    }

    #[test]
    fn gmm_z_conditional_aligns_directly() {
        let dm = build(GMM);
        let cond = conditional(&dm, &["z"]);
        assert_eq!(cond.factors.len(), 2);
        assert!(cond.fully_aligned());
        let lik = cond.likelihoods().next().unwrap();
        // the x factor aligns over n with no extra inner comps
        assert_eq!(lik.factor.comps.len(), 1);
        assert_eq!(lik.factor.comps[0].var, "n");
        assert!(lik.factor.inds.is_empty());
    }

    #[test]
    fn gmm_mu_conditional_drops_independent_factors() {
        let dm = build(GMM);
        let cond = conditional(&dm, &["mu"]);
        assert!(cond.factors.iter().all(|f| f.factor.mentions("mu")));
    }

    #[test]
    fn lda_theta_conditional_uses_factoring_rule() {
        let dm = build(
            r#"(K, D, alpha, beta, len) => {
            param theta[d] ~ Dirichlet(alpha) for d <- 0 until D ;
            param phi[k] ~ Dirichlet(beta) for k <- 0 until K ;
            param z[d][j] ~ Categorical(theta[d]) for d <- 0 until D, j <- 0 until len[d] ;
            data w[d][j] ~ Categorical(phi[z[d][j]]) for d <- 0 until D, j <- 0 until len[d] ;
        }"#,
        );
        let cond = conditional(&dm, &["theta"]);
        assert_eq!(cond.factors.len(), 2);
        assert!(cond.fully_aligned());
        let lik = cond.likelihoods().next().unwrap();
        assert_eq!(lik.factor.comps[0].var, "d");
        assert_eq!(lik.factor.comps[1].var, "j");
        assert!(lik.factor.inds.is_empty(), "factoring rule needs no indicator");
    }

    #[test]
    fn lda_phi_conditional_uses_categorical_indexing() {
        let dm = build(
            r#"(K, D, alpha, beta, len) => {
            param theta[d] ~ Dirichlet(alpha) for d <- 0 until D ;
            param phi[k] ~ Dirichlet(beta) for k <- 0 until K ;
            param z[d][j] ~ Categorical(theta[d]) for d <- 0 until D, j <- 0 until len[d] ;
            data w[d][j] ~ Categorical(phi[z[d][j]]) for d <- 0 until D, j <- 0 until len[d] ;
        }"#,
        );
        let cond = conditional(&dm, &["phi"]);
        assert!(cond.fully_aligned());
        let lik = cond.likelihoods().next().unwrap();
        assert_eq!(lik.factor.comps.len(), 3); // k, d, j
        assert_eq!(lik.factor.comps[0].var, "k");
        assert_eq!(format!("{}", lik.factor.inds[0].1), "z[d][j]");
    }

    #[test]
    fn scalar_target_is_trivially_aligned() {
        let dm = build(
            r#"(N, a) => {
            param lambda ~ Gamma(a, a) ;
            data c[n] ~ Poisson(lambda) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["lambda"]);
        assert!(cond.fully_aligned());
        assert!(cond.target_comps.is_empty());
        assert_eq!(cond.factors.len(), 2);
    }

    #[test]
    fn block_conditional_keeps_factors_unaligned() {
        let dm = build(
            r#"(lambda, N, D, x) => {
            param sigma2 ~ Exponential(lambda) ;
            param b ~ Normal(0.0, sigma2) ;
            param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta) + b)) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["b", "theta"]);
        // b prior, theta prior, y likelihood — sigma2 prior cancels.
        assert_eq!(cond.factors.len(), 3);
        assert!(!cond.fully_aligned());
    }

    #[test]
    fn hlr_theta_whole_vector_use_is_not_aligned() {
        let dm = build(
            r#"(lambda, N, D, x) => {
            param sigma2 ~ Exponential(lambda) ;
            param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta))) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["theta"]);
        let lik = cond.likelihoods().next().unwrap();
        assert!(!lik.aligned, "whole-vector use cannot be sliced");
    }

    #[test]
    fn sigma2_conditional_includes_all_dependents() {
        let dm = build(
            r#"(lambda, N, D, x) => {
            param sigma2 ~ Exponential(lambda) ;
            param b ~ Normal(0.0, sigma2) ;
            param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta) + b)) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["sigma2"]);
        // prior + b prior + theta prior; y does not mention sigma2.
        assert_eq!(cond.factors.len(), 3);
        assert!(cond.fully_aligned());
    }

    #[test]
    fn rewrites_are_recorded_per_factor() {
        let dm = build(GMM);
        let mu = conditional(&dm, &["mu"]);
        assert_eq!(mu.prior().unwrap().rewrite, Rewrite::Prior);
        assert_eq!(
            mu.likelihoods().next().unwrap().rewrite,
            Rewrite::CategoricalIndexing
        );
        let z = conditional(&dm, &["z"]);
        assert_eq!(z.likelihoods().next().unwrap().rewrite, Rewrite::DirectAlignment);
    }

    #[test]
    fn whole_vector_fallback_reason_is_diagnosed() {
        let dm = build(
            r#"(lambda, N, D, x) => {
            param sigma2 ~ Exponential(lambda) ;
            param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta))) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["theta"]);
        let lik = cond.likelihoods().next().unwrap();
        match &lik.rewrite {
            Rewrite::Fallback(reason) => {
                assert!(reason.contains("whole-value"), "got reason: {reason}")
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        // Scalar targets and block conditionals carry their own markers.
        let scalar = conditional(&dm, &["sigma2"]);
        assert!(scalar
            .likelihoods()
            .all(|f| f.rewrite == Rewrite::TrivialScalar));
        let block = conditional(&dm, &["sigma2", "theta"]);
        assert!(block.factors.iter().all(|f| f.rewrite == Rewrite::BlockJoint));
    }

    #[test]
    fn occurrences_finds_maximal_chains() {
        let dm = build(GMM);
        let f = &dm.factors[2]; // MvNormal(mu[z[n]], Sigma)(x[n])
        let mu_occ = occurrences(f, "mu");
        assert_eq!(mu_occ.len(), 1);
        assert_eq!(format!("{}", mu_occ[0]), "mu[z[n]]");
        let z_occ = occurrences(f, "z");
        assert_eq!(z_occ.len(), 1);
        assert_eq!(format!("{}", z_occ[0]), "z[n]");
    }

    #[test]
    #[should_panic(expected = "not a random variable")]
    fn unknown_target_panics() {
        let dm = build(GMM);
        conditional(&dm, &["ghost"]);
    }

    #[test]
    fn hgmm_sigma_conditional_categorical_indexing_on_arg1() {
        let dm = build(
            r#"(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
            param pi ~ Dirichlet(alpha) ;
            param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
            param Sigma[k] ~ InvWishart(nu, Psi) for k <- 0 until K ;
            param z[n] ~ Categorical(pi) for n <- 0 until N ;
            data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]]) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["Sigma"]);
        assert!(cond.fully_aligned());
        let lik = cond.likelihoods().next().unwrap();
        assert_eq!(format!("{}", lik.factor.inds[0].1), "z[n]");
        // pi conditional: scalar simplex target, direct
        let pi_cond = conditional(&dm, &["pi"]);
        assert_eq!(pi_cond.factors.len(), 2);
        assert!(pi_cond.fully_aligned());
    }
}
