//! Pretty-printing of the Density IL in the paper's notation.

use std::fmt::Write;

use crate::il::{DensityModel, Factor};

/// Renders one factor as `Π_{i←lo until hi} [ p_Dist(args)(point) ]_{x=e}`.
pub fn pretty_factor(f: &Factor) -> String {
    let mut s = String::new();
    for c in &f.comps {
        let _ = write!(s, "Π_{{{}←{} until {}}} ", c.var, c.lo, c.hi);
    }
    let needs_brackets = !f.inds.is_empty();
    if needs_brackets {
        s.push('[');
    }
    let args: Vec<String> = f.args.iter().map(|a| format!("{a}")).collect();
    let _ = write!(s, "p_{}({})({})", f.dist, args.join(", "), f.point);
    if needs_brackets {
        s.push(']');
        let conds: Vec<String> = f.inds.iter().map(|(l, r)| format!("{l}={r}")).collect();
        let _ = write!(s, "_{{{}}}", conds.join(", "));
    }
    s
}

/// Renders a whole density model as `λ(args, vars). Π factors`.
pub fn pretty_density(m: &DensityModel) -> String {
    let mut s = String::new();
    let names: Vec<&str> = m
        .args
        .iter()
        .map(|a| a.name.as_str())
        .chain(m.vars.iter().map(|v| v.name.as_str()))
        .collect();
    let _ = writeln!(s, "λ({}).", names.join(", "));
    for f in &m.factors {
        let _ = writeln!(s, "  {}", pretty_factor(f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DensityModel;
    use augur_lang::{parse, typecheck};

    #[test]
    fn gmm_density_renders_like_paper() {
        let src = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
            param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
            param z[n] ~ Categorical(pis) for n <- 0 until N ;
            data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
        }"#;
        let dm =
            DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap();
        let p = pretty_density(&dm);
        assert!(p.contains("Π_{k←0 until K} p_MvNormal(mu_0, Sigma_0)(mu[k])"), "{p}");
        assert!(p.contains("Π_{n←0 until N} p_MvNormal(mu[z[n]], Sigma)(x[n])"), "{p}");
        assert!(p.starts_with("λ(K, N, mu_0, Sigma_0, pis, Sigma, mu, z, x)."), "{p}");
    }

    #[test]
    fn indicator_brackets_render() {
        let src = r#"(K, N, mu_0, s0, pis, s) => {
            param mu[k] ~ Normal(mu_0, s0) for k <- 0 until K ;
            param z[n] ~ Categorical(pis) for n <- 0 until N ;
            data x[n] ~ Normal(mu[z[n]], s) for n <- 0 until N ;
        }"#;
        let dm =
            DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap();
        let cond = crate::conditional(&dm, &["mu"]);
        let lik = cond.likelihoods().next().unwrap();
        let p = pretty_factor(&lik.factor);
        assert!(
            p.contains("[p_Normal(mu[z[n]], s)(x[n])]_{k=z[n]}"),
            "rendered: {p}"
        );
    }
}
