//! Numerical substrate for the AugurV2 reproduction.
//!
//! This crate supplies the dense linear algebra, special functions, the
//! flattened ragged-array representation, and the pseudo-random number
//! source that the AugurV2 runtime library (paper §6.2) is built on.
//! Everything is implemented from scratch with zero external
//! dependencies, so the whole workspace builds hermetically offline.
//!
//! # Overview
//!
//! * [`Matrix`] — a dense, row-major matrix with the usual operations.
//! * [`Cholesky`] — Cholesky factorization used for multivariate-normal
//!   densities, sampling, and log-determinants.
//! * [`Prng`] — the splitmix64-based generator every sampler draws from.
//! * [`ragged`] — the paper's "vector of vectors" runtime representation:
//!   a pointer-directed index paired with one flat contiguous buffer.
//! * [`special`] — `lgamma`, `digamma`, `log_sum_exp`, `sigmoid`, …
//!
//! # Example
//!
//! ```
//! use augur_math::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), augur_math::MathError> {
//! let s = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let chol = Cholesky::new(&s)?;
//! let x = chol.solve(&[1.0, 2.0]);
//! let y = s.matvec(&x);
//! assert!((y[0] - 1.0).abs() < 1e-12 && (y[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
// Index-based loops are the clearest idiom for the triangular-solve and
// factorization kernels in this crate.
#![allow(clippy::needless_range_loop)]

mod chol;
mod error;
mod matrix;
pub mod pool;
pub mod ragged;
mod rng;
pub mod special;
pub mod vecops;

pub use chol::Cholesky;
pub use error::MathError;
pub use matrix::Matrix;
pub use pool::PoolVec;
pub use ragged::FlatRagged;
pub use rng::Prng;
