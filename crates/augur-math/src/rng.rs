//! The in-tree pseudo-random number source.
//!
//! The reproduction is built to run on a hermetic, network-less machine,
//! so the generator is implemented here rather than pulled from an
//! external crate: a splitmix64 core (Steele, Lea & Flood 2014) — the
//! same mixing function the backend already uses to derive per-thread
//! `curand`-style streams — drives the primitive sampling algorithms that
//! the AugurV2 runtime library provides (§6.2).

/// The pseudo-random number source used by every sampler in this
/// reproduction.
///
/// `Prng` wraps a splitmix64 stream and implements the primitive sampling
/// algorithms that the AugurV2 runtime library provides (§6.2): normal
/// (Marsaglia polar), gamma (Marsaglia–Tsang), beta, Dirichlet,
/// categorical, Poisson, exponential. Higher-level distribution sampling
/// in `augur-dist` and all MCMC kernels in the backend draw exclusively
/// from a `Prng`, so a fixed seed makes entire inference runs
/// reproducible.
///
/// # Example
///
/// ```
/// use augur_math::Prng;
///
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
    /// Cached second value from the last polar-normal draw.
    spare_normal: Option<f64>,
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed, spare_normal: None }
    }

    /// The generator's raw internal state: the splitmix64 counter plus
    /// the bit pattern of the cached polar-normal spare, if one is
    /// pending. Together with [`Prng::from_state_words`] this round-trips
    /// the generator bit-exactly — the basis of checkpoint/resume.
    pub fn state_words(&self) -> (u64, Option<u64>) {
        (self.state, self.spare_normal.map(f64::to_bits))
    }

    /// Rebuilds a generator from [`Prng::state_words`] output. The
    /// restored generator produces exactly the stream the saved one would
    /// have produced, including the pending polar-normal spare.
    pub fn from_state_words(state: u64, spare_bits: Option<u64>) -> Prng {
        Prng { state, spare_normal: spare_bits.map(f64::from_bits) }
    }

    /// The next raw 64-bit word of the stream (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high-quality mantissa bits
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Draws a uniform integer in `[0, n)` (Lemire's multiply-shift).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Draws a standard normal via the Marsaglia polar method.
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Draws from `Normal(mu, var)` (variance parameterization, as in the
    /// paper's models).
    ///
    /// # Panics
    ///
    /// Panics if `var < 0`.
    pub fn normal(&mut self, mu: f64, var: f64) -> f64 {
        assert!(var >= 0.0, "normal variance must be non-negative");
        mu + var.sqrt() * self.std_normal()
    }

    /// Draws from `Exponential(rate)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Draws from `Gamma(shape, rate)` via Marsaglia–Tsang, with the usual
    /// boost for `shape < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `shape <= 0` or `rate <= 0`.
    pub fn gamma(&mut self, shape: f64, rate: f64) -> f64 {
        assert!(shape > 0.0 && rate > 0.0, "gamma parameters must be positive");
        if shape < 1.0 {
            // Γ(a) = Γ(a+1) · U^{1/a}
            let u = loop {
                let u = self.uniform();
                if u > 0.0 {
                    break u;
                }
            };
            return self.gamma(shape + 1.0, rate) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.std_normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = self.uniform();
            if u < 1.0 - 0.0331 * x.powi(4)
                || (u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()))
            {
                return d * v / rate;
            }
        }
    }

    /// Draws from `InvGamma(shape, scale)`.
    ///
    /// # Panics
    ///
    /// Panics if `shape <= 0` or `scale <= 0`.
    pub fn inv_gamma(&mut self, shape: f64, scale: f64) -> f64 {
        1.0 / self.gamma(shape, scale)
    }

    /// Draws from `Beta(a, b)` via the two-gamma construction.
    ///
    /// # Panics
    ///
    /// Panics if `a <= 0` or `b <= 0`.
    pub fn beta(&mut self, a: f64, b: f64) -> f64 {
        let x = self.gamma(a, 1.0);
        let y = self.gamma(b, 1.0);
        x / (x + y)
    }

    /// Draws from `Bernoulli(p)`, returning 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> u8 {
        assert!((0.0..=1.0).contains(&p), "bernoulli p must be in [0,1]");
        u8::from(self.uniform() < p)
    }

    /// Draws an index from a (not necessarily normalized) non-negative
    /// weight vector by inverse-CDF scan.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0 && total.is_finite(),
            "categorical weights must be non-empty with positive finite sum"
        );
        let mut t = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Draws an index given *log*-weights, using the Gumbel-free
    /// exponentiate-and-scan with max subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `log_weights` is empty or all `-inf`.
    pub fn categorical_log(&mut self, log_weights: &[f64]) -> usize {
        let m = log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(m > f64::NEG_INFINITY, "categorical_log: all weights are zero");
        // Inline exponentiate-and-scan (no scratch buffer): same draw as
        // materializing the weights and calling `categorical`.
        let total: f64 = log_weights.iter().map(|l| (l - m).exp()).sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "categorical weights must be non-empty with positive finite sum"
        );
        let mut t = self.uniform() * total;
        for (i, l) in log_weights.iter().enumerate() {
            t -= (l - m).exp();
            if t < 0.0 {
                return i;
            }
        }
        log_weights.len() - 1
    }

    /// Fills `out` with a `Dirichlet(alpha)` draw.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or any `alpha` is non-positive.
    pub fn dirichlet(&mut self, alpha: &[f64], out: &mut [f64]) {
        assert_eq!(alpha.len(), out.len(), "dirichlet length mismatch");
        for (o, &a) in out.iter_mut().zip(alpha) {
            *o = self.gamma(a, 1.0);
        }
        crate::vecops::normalize(out);
    }

    /// Draws from `Poisson(lambda)`. Uses Knuth's method for small `lambda`
    /// and additivity-based chunking for large `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 0`.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        // Split large rates using Poisson additivity so the Knuth loop's
        // running product never underflows (e^-400 ≈ 1e-174 is still a
        // normal f64); each chunk is sampled exactly.
        let mut total = 0u64;
        let mut remaining = lambda;
        while remaining > 400.0 {
            total += self.poisson_knuth(400.0);
            remaining -= 400.0;
        }
        total + self.poisson_knuth(remaining)
    }

    fn poisson_knuth(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Draws a chi-squared value with `df` degrees of freedom (used by the
    /// Bartlett decomposition for Wishart sampling).
    ///
    /// # Panics
    ///
    /// Panics if `df <= 0`.
    pub fn chi_squared(&mut self, df: f64) -> f64 {
        self.gamma(df / 2.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::{mean, variance};

    fn draws<F: FnMut(&mut Prng) -> f64>(n: usize, seed: u64, mut f: F) -> Vec<f64> {
        let mut rng = Prng::seed_from_u64(seed);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = Prng::seed_from_u64(3);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.std_normal().to_bits(), b.std_normal().to_bits());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(99);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut rng = Prng::seed_from_u64(13);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for c in counts {
            assert!((c as f64 / 50_000.0 - 0.2).abs() < 0.01, "count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let xs = draws(60_000, 1, |r| r.normal(2.0, 9.0));
        assert!((mean(&xs) - 2.0).abs() < 0.08, "mean {}", mean(&xs));
        assert!((variance(&xs) - 9.0).abs() < 0.35, "var {}", variance(&xs));
    }

    #[test]
    fn gamma_moments() {
        // Gamma(shape=3, rate=2): mean 1.5, var 0.75
        let xs = draws(60_000, 2, |r| r.gamma(3.0, 2.0));
        assert!((mean(&xs) - 1.5).abs() < 0.03);
        assert!((variance(&xs) - 0.75).abs() < 0.05);
    }

    #[test]
    fn gamma_small_shape_moments() {
        // Gamma(0.5, 1): mean 0.5, var 0.5
        let xs = draws(80_000, 3, |r| r.gamma(0.5, 1.0));
        assert!((mean(&xs) - 0.5).abs() < 0.03);
        assert!((variance(&xs) - 0.5).abs() < 0.08);
    }

    #[test]
    fn beta_moments() {
        // Beta(2, 5): mean 2/7 ≈ 0.2857
        let xs = draws(40_000, 4, |r| r.beta(2.0, 5.0));
        assert!((mean(&xs) - 2.0 / 7.0).abs() < 0.01);
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn exponential_moments() {
        let xs = draws(50_000, 5, |r| r.exponential(4.0));
        assert!((mean(&xs) - 0.25).abs() < 0.01);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn categorical_frequencies() {
        let w = [1.0, 2.0, 7.0];
        let mut counts = [0usize; 3];
        let mut rng = Prng::seed_from_u64(6);
        for _ in 0..50_000 {
            counts[rng.categorical(&w)] += 1;
        }
        assert!((counts[2] as f64 / 50_000.0 - 0.7).abs() < 0.02);
        assert!((counts[0] as f64 / 50_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn categorical_log_matches_linear() {
        let w = [0.2f64, 0.5, 0.3];
        let lw: Vec<f64> = w.iter().map(|x| x.ln() + 100.0).collect(); // shifted
        let mut counts = [0usize; 3];
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..50_000 {
            counts[rng.categorical_log(&lw)] += 1;
        }
        assert!((counts[1] as f64 / 50_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn dirichlet_on_simplex_with_right_mean() {
        let alpha = [2.0, 3.0, 5.0];
        let mut rng = Prng::seed_from_u64(8);
        let mut acc = [0.0; 3];
        let mut out = [0.0; 3];
        let n = 20_000;
        for _ in 0..n {
            rng.dirichlet(&alpha, &mut out);
            let s: f64 = out.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            for (a, &o) in acc.iter_mut().zip(&out) {
                *a += o;
            }
        }
        assert!((acc[2] / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let xs = draws(40_000, 9, |r| r.poisson(3.5) as f64);
        assert!((mean(&xs) - 3.5).abs() < 0.06);
        let ys = draws(40_000, 10, |r| r.poisson(120.0) as f64);
        assert!((mean(&ys) - 120.0).abs() < 0.4);
        assert!((variance(&ys) - 120.0).abs() < 6.0);
    }

    #[test]
    fn bernoulli_frequency() {
        let xs = draws(40_000, 11, |r| r.bernoulli(0.3) as f64);
        assert!((mean(&xs) - 0.3).abs() < 0.01);
    }

    #[test]
    fn chi_squared_mean_is_df() {
        let xs = draws(40_000, 12, |r| r.chi_squared(7.0));
        assert!((mean(&xs) - 7.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "categorical weights")]
    fn categorical_rejects_zero_sum() {
        Prng::seed_from_u64(0).categorical(&[0.0, 0.0]);
    }

    /// A generator restored from its state words continues the exact
    /// stream, including the pending polar-normal spare.
    #[test]
    fn state_words_roundtrip_continues_stream() {
        let mut a = Prng::seed_from_u64(99);
        a.std_normal(); // leaves a spare cached
        let (state, spare) = a.state_words();
        assert!(spare.is_some());
        let mut b = Prng::from_state_words(state, spare);
        for _ in 0..64 {
            assert_eq!(a.std_normal().to_bits(), b.std_normal().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
