//! Flattened ragged arrays — the paper's runtime representation of
//! "vectors of vectors" (§6.2).
//!
//! AugurV2 supports ragged arrays in its surface syntax but stores the data
//! in one flat contiguous region so a GPU (or a cache-friendly CPU loop) can
//! map over all elements without chasing pointers. A separate offset index
//! provides random access. [`FlatRagged`] reproduces exactly that pairing.

use crate::MathError;

/// A ragged two-level array stored as one flat buffer plus per-row offsets.
///
/// Row `i` occupies `data[offsets[i] .. offsets[i+1]]`.
///
/// # Example
///
/// ```
/// use augur_math::FlatRagged;
///
/// let r = FlatRagged::from_rows(vec![vec![1.0, 2.0], vec![], vec![3.0]]);
/// assert_eq!(r.num_rows(), 3);
/// assert_eq!(r.row(0), &[1.0, 2.0]);
/// assert_eq!(r.row(1), &[] as &[f64]);
/// assert_eq!(r.flat(), &[1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatRagged {
    offsets: Vec<usize>,
    data: Vec<f64>,
}

impl FlatRagged {
    /// Creates an empty ragged array with no rows.
    pub fn new() -> Self {
        FlatRagged { offsets: vec![0], data: Vec::new() }
    }

    /// Builds the flattened representation from owned rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut data = Vec::with_capacity(total);
        offsets.push(0);
        for row in rows {
            data.extend(row);
            offsets.push(data.len());
        }
        FlatRagged { offsets, data }
    }

    /// Builds a rectangular (non-ragged) array of `rows × cols` zeros.
    pub fn rect(rows: usize, cols: usize) -> Self {
        let offsets = (0..=rows).map(|i| i * cols).collect();
        FlatRagged { offsets, data: vec![0.0; rows * cols] }
    }

    /// Reassembles from a flat buffer and explicit row lengths.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BadLength`] when the lengths do not sum to
    /// `data.len()`.
    pub fn from_flat(data: Vec<f64>, lens: &[usize]) -> Result<Self, MathError> {
        let total: usize = lens.iter().sum();
        if total != data.len() {
            return Err(MathError::BadLength { expected: total, actual: data.len() });
        }
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut acc = 0;
        offsets.push(0);
        for &l in lens {
            acc += l;
            offsets.push(acc);
        }
        Ok(FlatRagged { offsets, data })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of scalar elements across all rows.
    pub fn num_elems(&self) -> usize {
        self.data.len()
    }

    /// Length of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_rows()`.
    pub fn row_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Flat offset at which row `i` begins.
    ///
    /// # Panics
    ///
    /// Panics if `i > self.num_rows()`.
    pub fn row_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Element access `self[i][j]` through the offset index.
    ///
    /// Returns `None` when either index is out of bounds — this is the
    /// random-access path the pointer-directed structure provides in the
    /// paper.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.num_rows() || j >= self.row_len(i) {
            return None;
        }
        Some(self.data[self.offsets[i] + j])
    }

    /// Borrows the whole flat buffer — the efficient "map over everything"
    /// path.
    pub fn flat(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the whole flat buffer.
    pub fn flat_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates over rows as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.num_rows()).map(move |i| self.row(i))
    }

    /// Appends a row, extending the flat buffer.
    pub fn push_row(&mut self, row: &[f64]) {
        self.data.extend_from_slice(row);
        self.offsets.push(self.data.len());
    }
}

impl FromIterator<Vec<f64>> for FlatRagged {
    fn from_iter<I: IntoIterator<Item = Vec<f64>>>(iter: I) -> Self {
        FlatRagged::from_rows(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let r = FlatRagged::from_rows(vec![vec![1.0], vec![2.0, 3.0, 4.0], vec![]]);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.num_elems(), 4);
        assert_eq!(r.row_len(1), 3);
        assert_eq!(r.get(1, 2), Some(4.0));
        assert_eq!(r.get(1, 3), None);
        assert_eq!(r.get(3, 0), None);
    }

    #[test]
    fn flat_layout_is_contiguous() {
        let r = FlatRagged::from_rows(vec![vec![1.0, 2.0], vec![3.0]]);
        assert_eq!(r.flat(), &[1.0, 2.0, 3.0]);
        assert_eq!(r.row_offset(1), 2);
    }

    #[test]
    fn from_flat_roundtrip() {
        let orig = FlatRagged::from_rows(vec![vec![1.0, 2.0], vec![], vec![3.0]]);
        let again = FlatRagged::from_flat(orig.flat().to_vec(), &[2, 0, 1]).unwrap();
        assert_eq!(orig, again);
    }

    #[test]
    fn from_flat_rejects_bad_lengths() {
        assert!(FlatRagged::from_flat(vec![1.0, 2.0], &[3]).is_err());
    }

    #[test]
    fn rect_shape() {
        let r = FlatRagged::rect(3, 4);
        assert_eq!(r.num_rows(), 3);
        assert!(r.iter().all(|row| row.len() == 4));
    }

    #[test]
    fn push_row_extends() {
        let mut r = FlatRagged::new();
        r.push_row(&[5.0, 6.0]);
        r.push_row(&[]);
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.row(0), &[5.0, 6.0]);
        assert_eq!(r.row_len(1), 0);
    }

    #[test]
    fn mutation_through_row_mut_visible_in_flat() {
        let mut r = FlatRagged::from_rows(vec![vec![0.0; 2], vec![0.0; 2]]);
        r.row_mut(1)[0] = 9.0;
        assert_eq!(r.flat()[2], 9.0);
    }

    #[test]
    fn collect_from_iterator() {
        let r: FlatRagged = (0..3).map(|i| vec![i as f64; i]).collect();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.row(2), &[2.0, 2.0]);
    }
}
