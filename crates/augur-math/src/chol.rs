use crate::{MathError, Matrix, PoolVec};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// This is the workhorse behind multivariate-normal log-densities, sampling,
/// and the conjugate updates for Gaussian models: it gives `log|A|`,
/// `A⁻¹ x`, and a linear map that turns i.i.d. standard normals into draws
/// with covariance `A`.
///
/// # Example
///
/// ```
/// use augur_math::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), augur_math::MathError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// assert!((chol.log_det() - (4.0f64 * 3.0 - 2.0 * 2.0).ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely.
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] for non-square input and
    /// [`MathError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self, MathError> {
        if !a.is_square() {
            return Err(MathError::DimensionMismatch {
                op: "Cholesky::new",
                detail: format!("{}x{} matrix", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MathError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// `log |A|` computed as `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solves `L y = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> PoolVec {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower length mismatch");
        let mut y = PoolVec::zeroed(n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` by back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> PoolVec {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper length mismatch");
        let mut x = PoolVec::zeroed(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> PoolVec {
        self.solve_upper(&self.solve_lower(b))
    }

    /// The quadratic form `xᵀ A⁻¹ x`, the squared Mahalanobis norm.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mahalanobis_sq(&self, x: &[f64]) -> f64 {
        let y = self.solve_lower(x);
        y.iter().map(|v| v * v).sum()
    }

    /// The inverse `A⁻¹`, computed column by column.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = PoolVec::zeroed(n);
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }

    /// Maps a vector of i.i.d. standard normals to a draw with covariance
    /// `A`: returns `L z`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn correlate(&self, z: &[f64]) -> PoolVec {
        let n = self.dim();
        assert_eq!(z.len(), n, "correlate length mismatch");
        let mut out = PoolVec::zeroed(n);
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.l[(i, k)] * z[k];
            }
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]).unwrap()
    }

    #[test]
    fn reconstructs_input() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - 5.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(MathError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::new(&a), Err(MathError::DimensionMismatch { .. })));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - eye[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mahalanobis_matches_explicit_inverse() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x = vec![0.3, -1.2, 2.0];
        let explicit = {
            let ax = c.solve(&x);
            x.iter().zip(&ax).map(|(u, v)| u * v).sum::<f64>()
        };
        assert!((c.mahalanobis_sq(&x) - explicit).abs() < 1e-10);
    }

    #[test]
    fn correlate_is_l_times_z() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let z = vec![1.0, 1.0, 1.0];
        let lz = c.factor().matvec(&z);
        assert_eq!(c.correlate(&z), lz);
    }
}
