//! Free functions over `&[f64]` used throughout the runtime library.
//!
//! The AugurV2 runtime provides "vector operations" (§6.2); these are their
//! Rust equivalents, operating directly on flat buffers so they work both on
//! standalone vectors and on rows of a [`crate::FlatRagged`]. Functions
//! that return a fresh vector return a pooled [`PoolVec`] so repeated use
//! inside sampler sweeps stays allocation-free after warmup.

use crate::PoolVec;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> PoolVec {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> PoolVec {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scales a slice into a new vector.
pub fn scale(alpha: f64, x: &[f64]) -> PoolVec {
    x.iter().map(|v| alpha * v).collect()
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Sum of all elements.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Arithmetic mean; zero for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// Unbiased sample variance; zero for slices shorter than two.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Normalizes a non-negative weight vector in place so it sums to one.
///
/// This is the `normalize` primitive from the paper's Dirichlet-sampling
/// example (§5.4). Leaves the vector untouched when the sum is zero or not
/// finite.
pub fn normalize(x: &mut [f64]) {
    let s = sum(x);
    if s > 0.0 && s.is_finite() {
        for v in x.iter_mut() {
            *v /= s;
        }
    }
}

/// Index of the maximum element; `None` for an empty slice.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut w = vec![2.0, 6.0];
        normalize(&mut w);
        assert_eq!(w, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_ignores_zero_sum() {
        let mut w = vec![0.0, 0.0];
        normalize(&mut w);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-15);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn argmax_finds_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn add_sub_scale_norm() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(0.5, &[2.0, 4.0]), vec![1.0, 2.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }
}
