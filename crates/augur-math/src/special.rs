//! Special functions needed by the probability densities in `augur-dist`.
//!
//! All functions are implemented from scratch (Lanczos `lgamma`, series
//! `digamma`, numerically-stable `log_sum_exp`, `sigmoid`, …) since this
//! reproduction does not link `libm` extensions or external math crates.

/// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`. Accurate to
/// roughly 1e-13 relative error over the range used by the densities here.
///
/// # Example
///
/// ```
/// // Γ(5) = 4! = 24
/// assert!((augur_math::special::lgamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn lgamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().abs().ln() - lgamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses upward recurrence to push the argument above 6, then the asymptotic
/// expansion. Needed for gradients of Gamma/Dirichlet/Beta log-densities
/// with respect to their shape parameters.
pub fn digamma(x: f64) -> f64 {
    let mut x = x;
    let mut acc = 0.0;
    while x < 6.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
pub fn lbeta(a: f64, b: f64) -> f64 {
    lgamma(a) + lgamma(b) - lgamma(a + b)
}

/// Numerically stable `ln Σ exp(xᵢ)`.
///
/// Returns negative infinity for an empty slice.
///
/// # Example
///
/// ```
/// let v = [1000.0, 1000.0];
/// let l = augur_math::special::log_sum_exp(&v);
/// assert!((l - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
/// ```
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + sum.ln()
}

/// The logistic sigmoid `1 / (1 + e^{-x})`, stable for large `|x|`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `ln(1 + e^x)` (softplus), the log of the logistic normalizer, stable for
/// large `|x|`.
pub fn log1p_exp(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Multivariate log-gamma `ln Γ_d(x)` used by the (inverse-)Wishart
/// normalizer.
pub fn lmvgamma(d: usize, x: f64) -> f64 {
    let d_f = d as f64;
    let mut acc = d_f * (d_f - 1.0) / 4.0 * std::f64::consts::PI.ln();
    for j in 0..d {
        acc += lgamma(x - 0.5 * j as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lgamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            // Γ(n+1) = n!
            if n > 1 {
                fact *= n as f64;
            }
            assert!(
                (lgamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-10,
                "lgamma({}) mismatch",
                n + 1
            );
        }
    }

    #[test]
    fn lgamma_half() {
        // Γ(1/2) = √π
        assert!((lgamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn lgamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.3, 1.7, 4.2, 11.9] {
            assert!((lgamma(x + 1.0) - (x.ln() + lgamma(x))).abs() < 1e-11);
        }
    }

    #[test]
    fn digamma_matches_finite_difference_of_lgamma() {
        for &x in &[0.7, 1.5, 3.0, 10.0, 42.0] {
            let h = 1e-6;
            let fd = (lgamma(x + h) - lgamma(x - h)) / (2.0 * h);
            assert!((digamma(x) - fd).abs() < 1e-6, "digamma({x})");
        }
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.4, 2.3, 7.7] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
    }

    #[test]
    fn log_sum_exp_stability_and_empty() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[-1e5, -1e5]) - (-1e5 + 2.0f64.ln())).abs() < 1e-9);
        assert!((log_sum_exp(&[0.0]) - 0.0).abs() < 1e-15);
    }

    #[test]
    fn sigmoid_symmetry_and_saturation() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        for &x in &[-3.0, -0.5, 0.1, 8.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-14);
        }
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-10);
    }

    #[test]
    fn log1p_exp_consistency() {
        for &x in &[-40.0f64, -1.0, 0.0, 1.0, 40.0] {
            let direct = if x < 30.0 { (1.0 + x.exp()).ln() } else { x };
            assert!((log1p_exp(x) - direct).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn lbeta_symmetric() {
        assert!((lbeta(2.5, 3.5) - lbeta(3.5, 2.5)).abs() < 1e-14);
        // B(1,1) = 1
        assert!(lbeta(1.0, 1.0).abs() < 1e-13);
    }

    #[test]
    fn lmvgamma_reduces_to_lgamma_in_1d() {
        for &x in &[0.9, 2.4, 6.0] {
            assert!((lmvgamma(1, x) - lgamma(x)).abs() < 1e-12);
        }
    }
}
