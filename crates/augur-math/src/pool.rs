//! Thread-local buffer pool backing allocation-free steady-state sweeps.
//!
//! The runtime's hot loops (tape interpretation, Gibbs conditionals,
//! gradient walks) need short-lived `f64` scratch buffers whose sizes are
//! fixed after the first sweep — exactly the situation the paper's §5.2
//! "allocate everything before the first sweep" discipline targets. A
//! [`PoolVec`] is a `Vec<f64>` that, on drop, parks its storage in a
//! thread-local free list keyed by capacity; the next request for the
//! same capacity reuses it. After a warmup sweep has populated the free
//! lists, steady-state sweeps perform zero heap allocation (verified by
//! the counting-allocator test in `tests/alloc_free.rs`).
//!
//! Design notes:
//! * Pools are **thread-local** — no locks, and worker threads that
//!   persist across sweeps (the `par` pool) warm up independently.
//! * Buffers are keyed by **capacity**, so a request only hits the heap
//!   when a capacity is seen for the first time on a thread.
//! * [`PoolVec`] derefs to `Vec<f64>`, so it drops into existing code
//!   that expects `&[f64]` / `&mut Vec<f64>` without churn; `into_vec`
//!   is the escape hatch when a real `Vec` must leave the pool.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};

thread_local! {
    static POOL: RefCell<HashMap<usize, Vec<Vec<f64>>>> = RefCell::new(HashMap::new());
}

/// Max buffers retained per capacity class (bounds worst-case retention).
const MAX_PER_CLASS: usize = 64;

fn take(cap: usize) -> Vec<f64> {
    POOL.try_with(|p| p.borrow_mut().get_mut(&cap).and_then(Vec::pop))
        .ok()
        .flatten()
        .unwrap_or_else(|| Vec::with_capacity(cap))
}

fn give(buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        let class = p.entry(buf.capacity()).or_default();
        if class.len() < MAX_PER_CLASS {
            class.push(buf);
        }
    });
}

/// A pooled `f64` buffer: behaves like a `Vec<f64>`, but returns its
/// storage to a thread-local free list on drop instead of freeing it.
#[derive(Default)]
pub struct PoolVec {
    buf: Vec<f64>,
}

impl PoolVec {
    /// An empty pooled buffer with at least `cap` capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = take(cap);
        buf.clear();
        PoolVec { buf }
    }

    /// A pooled buffer of `n` zeros.
    pub fn zeroed(n: usize) -> Self {
        let mut v = Self::with_capacity(n);
        v.buf.resize(n, 0.0);
        v
    }

    /// A pooled copy of `s`.
    pub fn from_slice(s: &[f64]) -> Self {
        let mut v = Self::with_capacity(s.len());
        v.buf.extend_from_slice(s);
        v
    }

    /// A pooled buffer where element `i` is `f(i)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut v = Self::with_capacity(n);
        for i in 0..n {
            v.buf.push(f(i));
        }
        v
    }

    /// Adopts an existing `Vec`; its storage joins the pool when dropped.
    pub fn from_vec(buf: Vec<f64>) -> Self {
        PoolVec { buf }
    }

    /// Extracts the inner `Vec`, removing its storage from the pool.
    pub fn into_vec(mut self) -> Vec<f64> {
        std::mem::take(&mut self.buf)
    }
}

impl Drop for PoolVec {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.buf));
    }
}

impl Clone for PoolVec {
    fn clone(&self) -> Self {
        Self::from_slice(&self.buf)
    }
}

impl Deref for PoolVec {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        &self.buf
    }
}

impl DerefMut for PoolVec {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.buf
    }
}

impl fmt::Debug for PoolVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.buf.fmt(f)
    }
}

impl PartialEq for PoolVec {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl PartialEq<Vec<f64>> for PoolVec {
    fn eq(&self, other: &Vec<f64>) -> bool {
        &self.buf == other
    }
}

impl PartialEq<PoolVec> for Vec<f64> {
    fn eq(&self, other: &PoolVec) -> bool {
        self == &other.buf
    }
}

impl PartialEq<&[f64]> for PoolVec {
    fn eq(&self, other: &&[f64]) -> bool {
        self.buf.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[f64; N]> for PoolVec {
    fn eq(&self, other: &[f64; N]) -> bool {
        self.buf.as_slice() == other.as_slice()
    }
}

impl From<Vec<f64>> for PoolVec {
    fn from(v: Vec<f64>) -> Self {
        Self::from_vec(v)
    }
}

impl FromIterator<f64> for PoolVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = Self::with_capacity(iter.size_hint().0);
        for x in iter {
            v.buf.push(x);
        }
        v
    }
}

impl<'a> IntoIterator for &'a PoolVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// Current number of parked buffers on this thread (diagnostics only).
pub fn pooled_buffers() -> usize {
    POOL.try_with(|p| p.borrow().values().map(Vec::len).sum()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_reuses_storage() {
        let v = PoolVec::zeroed(128);
        let ptr = v.as_ptr();
        drop(v);
        let w = PoolVec::with_capacity(128);
        assert_eq!(w.as_ptr(), ptr, "second request must reuse storage");
    }

    #[test]
    fn zeroed_is_clean_after_reuse() {
        let mut v = PoolVec::zeroed(8);
        v.iter_mut().for_each(|x| *x = 7.0);
        drop(v);
        let w = PoolVec::zeroed(8);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn compares_with_plain_vectors() {
        let v = PoolVec::from_slice(&[1.0, 2.0]);
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(vec![1.0, 2.0], v);
        assert_eq!(v, [1.0, 2.0]);
    }

    #[test]
    fn from_fn_and_collect() {
        let v = PoolVec::from_fn(3, |i| i as f64);
        assert_eq!(v, vec![0.0, 1.0, 2.0]);
        let w: PoolVec = (0..3).map(|i| i as f64 * 2.0).collect();
        assert_eq!(w, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn into_vec_escapes_pool() {
        let v = PoolVec::from_slice(&[5.0]);
        let raw = v.into_vec();
        assert_eq!(raw, vec![5.0]);
    }
}
