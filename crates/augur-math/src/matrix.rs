use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::pool::PoolVec;
use crate::MathError;

/// A dense, row-major matrix of `f64`.
///
/// This is the matrix representation used throughout the AugurV2 runtime
/// (e.g. covariance matrices of multivariate normals). It is deliberately
/// simple: a flat buffer plus dimensions, so that it can live inside the
/// flattened runtime memory described in the paper's §6.2. The buffer is a
/// [`PoolVec`], so matrix temporaries created inside sampler sweeps recycle
/// their storage through the thread-local pool instead of hitting the heap.
///
/// # Example
///
/// ```
/// use augur_math::Matrix;
///
/// # fn main() -> Result<(), augur_math::MathError> {
/// let a = Matrix::identity(3).scale(2.0);
/// let v = a.matvec(&[1.0, 2.0, 3.0]);
/// assert_eq!(v, vec![2.0, 4.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: PoolVec,
}

impl Matrix {
    /// Creates a matrix of zeros with the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: PoolVec::zeroed(rows * cols) }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, MathError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = PoolVec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(MathError::DimensionMismatch {
                    op: "Matrix::from_rows",
                    detail: format!("row of length {} in matrix with {c} columns", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BadLength`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::BadLength { expected: rows * cols, actual: data.len() });
        }
        Ok(Matrix { rows, cols, data: PoolVec::from_vec(data) })
    }

    /// Creates a matrix from an already-pooled row-major buffer without
    /// copying.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BadLength`] if `data.len() != rows * cols`.
    pub fn from_pooled(rows: usize, cols: usize, data: PoolVec) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::BadLength { expected: rows * cols, actual: data.len() });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by copying a flat row-major slice into a pooled
    /// buffer — the allocation-free analogue of
    /// `from_vec(rows, cols, data.to_vec())`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::BadLength`] if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f64]) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::BadLength { expected: rows * cols, actual: data.len() });
        }
        Ok(Matrix { rows, cols, data: PoolVec::from_slice(data) })
    }

    /// Creates an `n × n` diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer,
    /// removing its storage from the pool.
    pub fn into_vec(self) -> Vec<f64> {
        self.data.into_vec()
    }

    /// Consumes the matrix and returns its pooled buffer.
    pub fn into_pooled(self) -> PoolVec {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds for {} rows", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Returns the matrix scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> PoolVec {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = PoolVec::zeroed(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::matmul",
                detail: format!(
                    "{}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Computes the outer product `u * vᵀ`.
    pub fn outer(u: &[f64], v: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(u.len(), v.len());
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                m[(i, j)] = ui * vj;
            }
        }
        m
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Checks symmetry up to an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "matrix add shape");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "matrix sub shape");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, other: &Matrix) -> Matrix {
        self.matmul(other).expect("matrix mul shape")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(4);
        let v = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.matvec(&v), v);
    }

    #[test]
    fn from_slice_matches_from_vec() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_slice(2, 2, &data).unwrap();
        let b = Matrix::from_vec(2, 2, data.to_vec()).unwrap();
        assert_eq!(a, b);
        assert!(Matrix::from_slice(2, 2, &data[..3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, MathError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, MathError::BadLength { expected: 4, actual: 3 });
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn outer_product_shape_and_values() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn trace_of_diag() {
        let m = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.trace(), 6.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let sum = &a + &b;
        let back = &sum - &b;
        assert_eq!(back, a);
    }
}
