use std::error::Error;
use std::fmt;

/// Error type for the linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The dimensions that were seen, formatted by the caller.
        detail: String,
    },
    /// A factorization failed because the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot at which the factorization broke down.
        pivot: usize,
    },
    /// The matrix is singular (or numerically so) and cannot be inverted.
    Singular,
    /// Raw data passed to a constructor has the wrong length.
    BadLength {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { op, detail } => {
                write!(f, "dimension mismatch in {op}: {detail}")
            }
            MathError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            MathError::Singular => write!(f, "matrix is singular"),
            MathError::BadLength { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
        }
    }
}

impl Error for MathError {}
