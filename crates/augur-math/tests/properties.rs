// Needs the external `proptest` crate, which the hermetic offline build
// does not vendor. Enable with `--features proptest-tests` on a machine
// with network access.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the linear-algebra substrate.

use augur_math::special::{lgamma, log_sum_exp, sigmoid};
use augur_math::{vecops, Cholesky, FlatRagged, Matrix};
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

/// Generates a random SPD matrix as `A Aᵀ + n·I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data).unwrap();
        let mut s = a.matmul(&a.transpose()).unwrap();
        for i in 0..n {
            s[(i, i)] += n as f64;
        }
        s
    })
}

proptest! {
    #[test]
    fn cholesky_solve_inverts(m in spd(4), b in small_vec(4)) {
        let c = Cholesky::new(&m).unwrap();
        let x = c.solve(&b);
        let back = m.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8, "residual too large");
        }
    }

    #[test]
    fn cholesky_logdet_is_finite_and_consistent(m in spd(3)) {
        let c = Cholesky::new(&m).unwrap();
        let ld = c.log_det();
        prop_assert!(ld.is_finite());
        // log|A⁻¹| = -log|A|
        let inv = c.inverse();
        let ci = Cholesky::new(&inv).unwrap();
        prop_assert!((ci.log_det() + ld).abs() < 1e-7);
    }

    #[test]
    fn mahalanobis_nonnegative(m in spd(3), x in small_vec(3)) {
        let c = Cholesky::new(&m).unwrap();
        prop_assert!(c.mahalanobis_sq(&x) >= -1e-12);
    }

    #[test]
    fn matmul_associative(
        a in prop::collection::vec(-2.0f64..2.0, 4),
        b in prop::collection::vec(-2.0f64..2.0, 4),
        c in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        let a = Matrix::from_vec(2, 2, a).unwrap();
        let b = Matrix::from_vec(2, 2, b).unwrap();
        let c = Matrix::from_vec(2, 2, c).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_respects_matmul(
        a in prop::collection::vec(-2.0f64..2.0, 6),
        b in prop::collection::vec(-2.0f64..2.0, 6),
    ) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let a = Matrix::from_vec(2, 3, a).unwrap();
        let b = Matrix::from_vec(3, 2, b).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).frobenius_norm() < 1e-10);
    }

    #[test]
    fn ragged_roundtrip(rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 0..6), 0..8)) {
        let r = FlatRagged::from_rows(rows.clone());
        prop_assert_eq!(r.num_rows(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(r.row(i), row.as_slice());
        }
        let lens: Vec<usize> = rows.iter().map(Vec::len).collect();
        let again = FlatRagged::from_flat(r.flat().to_vec(), &lens).unwrap();
        prop_assert_eq!(r, again);
    }

    #[test]
    fn log_sum_exp_shift_invariant(xs in prop::collection::vec(-50.0f64..50.0, 1..10), c in -100.0f64..100.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let l1 = log_sum_exp(&xs) + c;
        let l2 = log_sum_exp(&shifted);
        prop_assert!((l1 - l2).abs() < 1e-8);
    }

    #[test]
    fn lgamma_recurrence_holds(x in 0.1f64..50.0) {
        prop_assert!((lgamma(x + 1.0) - lgamma(x) - x.ln()).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_in_unit_interval(x in -1e6f64..1e6) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn normalize_produces_distribution(mut w in prop::collection::vec(0.01f64..10.0, 1..12)) {
        vecops::normalize(&mut w);
        let s: f64 = w.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-10);
        prop_assert!(w.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dot_bilinear(a in small_vec(5), b in small_vec(5), alpha in -3.0f64..3.0) {
        let scaled = vecops::scale(alpha, &a);
        prop_assert!((vecops::dot(&scaled, &b) - alpha * vecops::dot(&a, &b)).abs() < 1e-9);
    }
}
