/// A borrowed view of a runtime value passed to a distribution operation.
///
/// The AugurV2 runtime stores every value in flat `f64` memory (§6.2); this
/// enum is the typed window the distribution layer sees. Matrices are square
/// in all uses here (covariances), stored row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// A scalar (`Real`, or an `Int` stored exactly in an `f64`).
    Scalar(f64),
    /// A vector view.
    Vector(&'a [f64]),
    /// A square matrix view, row-major with dimension `dim`.
    Matrix {
        /// Row-major data of length `dim * dim`.
        data: &'a [f64],
        /// Matrix dimension.
        dim: usize,
    },
}

impl<'a> ValueRef<'a> {
    /// Extracts a scalar, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a scalar.
    pub fn scalar(self) -> f64 {
        match self {
            ValueRef::Scalar(x) => x,
            other => panic!("expected scalar value, got {other:?}"),
        }
    }

    /// Extracts a scalar as a non-negative integer index.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a scalar or is negative.
    pub fn index(self) -> usize {
        let x = self.scalar();
        assert!(x >= 0.0, "expected non-negative index, got {x}");
        x as usize
    }

    /// Extracts a vector view, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a vector.
    pub fn vector(self) -> &'a [f64] {
        match self {
            ValueRef::Vector(v) => v,
            other => panic!("expected vector value, got {other:?}"),
        }
    }

    /// Extracts a matrix view, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a matrix.
    pub fn matrix(self) -> (&'a [f64], usize) {
        match self {
            ValueRef::Matrix { data, dim } => (data, dim),
            other => panic!("expected matrix value, got {other:?}"),
        }
    }
}

impl From<f64> for ValueRef<'_> {
    fn from(x: f64) -> Self {
        ValueRef::Scalar(x)
    }
}

impl<'a> From<&'a [f64]> for ValueRef<'a> {
    fn from(v: &'a [f64]) -> Self {
        ValueRef::Vector(v)
    }
}

/// A mutable view of a runtime value, used as the output slot of `samp` and
/// the accumulation target of `grad`.
#[derive(Debug)]
pub enum ValueMut<'a> {
    /// A scalar slot.
    Scalar(&'a mut f64),
    /// A vector slot.
    Vector(&'a mut [f64]),
    /// A square matrix slot, row-major with dimension `dim`.
    Matrix {
        /// Row-major data of length `dim * dim`.
        data: &'a mut [f64],
        /// Matrix dimension.
        dim: usize,
    },
}

impl<'a> ValueMut<'a> {
    /// Extracts the scalar slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a scalar.
    pub fn scalar(self) -> &'a mut f64 {
        match self {
            ValueMut::Scalar(x) => x,
            other => panic!("expected scalar slot, got {other:?}"),
        }
    }

    /// Extracts the vector slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a vector.
    pub fn vector(self) -> &'a mut [f64] {
        match self {
            ValueMut::Vector(v) => v,
            other => panic!("expected vector slot, got {other:?}"),
        }
    }

    /// Extracts the matrix slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a matrix.
    pub fn matrix(self) -> (&'a mut [f64], usize) {
        match self {
            ValueMut::Matrix { data, dim } => (data, dim),
            other => panic!("expected matrix slot, got {other:?}"),
        }
    }

    /// Reborrows the slot with a shorter lifetime.
    pub fn reborrow(&mut self) -> ValueMut<'_> {
        match self {
            ValueMut::Scalar(x) => ValueMut::Scalar(x),
            ValueMut::Vector(v) => ValueMut::Vector(v),
            ValueMut::Matrix { data, dim } => ValueMut::Matrix { data, dim: *dim },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(ValueRef::Scalar(2.5).scalar(), 2.5);
        assert_eq!(ValueRef::from(3.0).index(), 3);
    }

    #[test]
    #[should_panic(expected = "expected vector")]
    fn wrong_kind_panics() {
        ValueRef::Scalar(1.0).vector();
    }

    #[test]
    fn mut_slots() {
        let mut x = 0.0;
        *ValueMut::Scalar(&mut x).scalar() = 5.0;
        assert_eq!(x, 5.0);
        let mut v = vec![0.0; 3];
        ValueMut::Vector(&mut v).vector()[1] = 2.0;
        assert_eq!(v, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn reborrow_allows_repeated_use() {
        let mut v = vec![0.0; 2];
        let mut slot = ValueMut::Vector(&mut v);
        slot.reborrow().vector()[0] = 1.0;
        slot.reborrow().vector()[1] = 2.0;
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
