//! Scalar distributions: log-densities and the partial derivatives of the
//! log-density used by the AD pass and gradient-based kernels.
//!
//! Parameterizations follow the paper's models: `Normal(mu, var)` uses the
//! *variance* (the HLR model writes `Normal(0, σ²)`), `Gamma(shape, rate)`,
//! `InvGamma(shape, scale)`, `Exponential(rate)`.

use augur_math::special::{lbeta, lgamma, log1p_exp};

const LN_2PI: f64 = 1.837_877_066_409_345_6;

/// `ln N(x | mu, var)`.
pub fn normal_log_pdf(x: f64, mu: f64, var: f64) -> f64 {
    if var <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let d = x - mu;
    -0.5 * (LN_2PI + var.ln()) - 0.5 * d * d / var
}

/// `∂/∂x ln N(x | mu, var)`.
pub fn normal_grad_x(x: f64, mu: f64, var: f64) -> f64 {
    -(x - mu) / var
}

/// `∂/∂mu ln N(x | mu, var)`.
pub fn normal_grad_mu(x: f64, mu: f64, var: f64) -> f64 {
    (x - mu) / var
}

/// `∂/∂var ln N(x | mu, var)`.
pub fn normal_grad_var(x: f64, mu: f64, var: f64) -> f64 {
    let d = x - mu;
    -0.5 / var + 0.5 * d * d / (var * var)
}

/// `ln Gamma(x | shape, rate)`.
pub fn gamma_log_pdf(x: f64, shape: f64, rate: f64) -> f64 {
    if x <= 0.0 || shape <= 0.0 || rate <= 0.0 {
        return f64::NEG_INFINITY;
    }
    shape * rate.ln() - lgamma(shape) + (shape - 1.0) * x.ln() - rate * x
}

/// `∂/∂x ln Gamma(x | shape, rate)`.
pub fn gamma_grad_x(x: f64, shape: f64, rate: f64) -> f64 {
    (shape - 1.0) / x - rate
}

/// `ln InvGamma(x | shape, scale)`.
pub fn inv_gamma_log_pdf(x: f64, shape: f64, scale: f64) -> f64 {
    if x <= 0.0 || shape <= 0.0 || scale <= 0.0 {
        return f64::NEG_INFINITY;
    }
    shape * scale.ln() - lgamma(shape) - (shape + 1.0) * x.ln() - scale / x
}

/// `∂/∂x ln InvGamma(x | shape, scale)`.
pub fn inv_gamma_grad_x(x: f64, shape: f64, scale: f64) -> f64 {
    -(shape + 1.0) / x + scale / (x * x)
}

/// `ln Beta(x | a, b)`.
pub fn beta_log_pdf(x: f64, a: f64, b: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) || a <= 0.0 || b <= 0.0 {
        return f64::NEG_INFINITY;
    }
    (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - lbeta(a, b)
}

/// `∂/∂x ln Beta(x | a, b)`.
pub fn beta_grad_x(x: f64, a: f64, b: f64) -> f64 {
    (a - 1.0) / x - (b - 1.0) / (1.0 - x)
}

/// `ln Exponential(x | rate)`.
pub fn exponential_log_pdf(x: f64, rate: f64) -> f64 {
    if x < 0.0 || rate <= 0.0 {
        return f64::NEG_INFINITY;
    }
    rate.ln() - rate * x
}

/// `∂/∂x ln Exponential(x | rate)`.
pub fn exponential_grad_x(_x: f64, rate: f64) -> f64 {
    -rate
}

/// `ln Uniform(x | lo, hi)`.
pub fn uniform_log_pdf(x: f64, lo: f64, hi: f64) -> f64 {
    if hi <= lo || x < lo || x > hi {
        return f64::NEG_INFINITY;
    }
    -(hi - lo).ln()
}

/// `ln Bernoulli(x | p)` for `x ∈ {0, 1}`.
///
/// Computed in a form stable for `p` near 0 or 1.
pub fn bernoulli_log_pmf(x: u8, p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NEG_INFINITY;
    }
    match x {
        1 => p.ln(),
        0 => (-p).ln_1p(),
        _ => f64::NEG_INFINITY,
    }
}

/// `ln Bernoulli(x | sigmoid(eta))` expressed directly in the logit `eta`;
/// this is the numerically stable form the HLR likelihood lowers to.
pub fn bernoulli_logit_log_pmf(x: u8, eta: f64) -> f64 {
    match x {
        1 => -log1p_exp(-eta),
        0 => -log1p_exp(eta),
        _ => f64::NEG_INFINITY,
    }
}

/// `∂/∂eta ln Bernoulli(x | sigmoid(eta)) = x − sigmoid(eta)`.
pub fn bernoulli_logit_grad_eta(x: u8, eta: f64) -> f64 {
    f64::from(x) - augur_math::special::sigmoid(eta)
}

/// `ln Poisson(x | lambda)`.
pub fn poisson_log_pmf(x: u64, lambda: f64) -> f64 {
    if lambda < 0.0 {
        return f64::NEG_INFINITY;
    }
    if lambda == 0.0 {
        return if x == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    let xf = x as f64;
    xf * lambda.ln() - lambda - lgamma(xf + 1.0)
}

/// `ln Binomial(x | n, p)`.
pub fn binomial_log_pmf(x: u64, n: u64, p: f64) -> f64 {
    if x > n || !(0.0..=1.0).contains(&p) {
        return f64::NEG_INFINITY;
    }
    let (xf, nf) = (x as f64, n as f64);
    let log_choose = lgamma(nf + 1.0) - lgamma(xf + 1.0) - lgamma(nf - xf + 1.0);
    let term_p = if x == 0 { 0.0 } else { xf * p.ln() };
    let term_q = if x == n { 0.0 } else { (nf - xf) * (-p).ln_1p() };
    log_choose + term_p + term_q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6 * (1.0 + x.abs());
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn normal_standard_at_zero() {
        assert!((normal_log_pdf(0.0, 0.0, 1.0) + 0.5 * LN_2PI).abs() < 1e-14);
    }

    #[test]
    fn normal_grads_match_finite_differences() {
        let (x, mu, var) = (0.7, -0.3, 2.5);
        assert!(
            (normal_grad_x(x, mu, var) - finite_diff(|t| normal_log_pdf(t, mu, var), x)).abs()
                < 1e-6
        );
        assert!(
            (normal_grad_mu(x, mu, var) - finite_diff(|t| normal_log_pdf(x, t, var), mu)).abs()
                < 1e-6
        );
        assert!(
            (normal_grad_var(x, mu, var) - finite_diff(|t| normal_log_pdf(x, mu, t), var)).abs()
                < 1e-6
        );
    }

    #[test]
    fn gamma_grad_matches_finite_differences() {
        let (x, a, b) = (1.4, 3.0, 2.0);
        assert!(
            (gamma_grad_x(x, a, b) - finite_diff(|t| gamma_log_pdf(t, a, b), x)).abs() < 1e-6
        );
    }

    #[test]
    fn inv_gamma_grad_matches_finite_differences() {
        let (x, a, b) = (0.8, 2.5, 1.5);
        assert!(
            (inv_gamma_grad_x(x, a, b) - finite_diff(|t| inv_gamma_log_pdf(t, a, b), x)).abs()
                < 1e-6
        );
    }

    #[test]
    fn beta_grad_matches_finite_differences() {
        let (x, a, b) = (0.3, 2.0, 4.0);
        assert!((beta_grad_x(x, a, b) - finite_diff(|t| beta_log_pdf(t, a, b), x)).abs() < 1e-5);
    }

    #[test]
    fn beta_integrates_to_one_on_grid() {
        // crude trapezoid check of normalization
        let (a, b) = (2.5, 1.5);
        let n = 20_000;
        let mut acc = 0.0;
        for i in 1..n {
            let x = i as f64 / n as f64;
            acc += beta_log_pdf(x, a, b).exp() / n as f64;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral {acc}");
    }

    #[test]
    fn exponential_basics() {
        assert!((exponential_log_pdf(0.0, 2.0) - 2.0f64.ln()).abs() < 1e-14);
        assert_eq!(exponential_log_pdf(-1.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(exponential_grad_x(3.0, 2.0), -2.0);
    }

    #[test]
    fn bernoulli_logit_matches_direct() {
        for &eta in &[-3.0, -0.2, 0.0, 1.7] {
            let p = augur_math::special::sigmoid(eta);
            assert!((bernoulli_logit_log_pmf(1, eta) - bernoulli_log_pmf(1, p)).abs() < 1e-12);
            assert!((bernoulli_logit_log_pmf(0, eta) - bernoulli_log_pmf(0, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn bernoulli_logit_grad_matches_finite_differences() {
        for &eta in &[-2.0, 0.1, 3.0] {
            for x in [0u8, 1] {
                let fd = finite_diff(|t| bernoulli_logit_log_pmf(x, t), eta);
                assert!((bernoulli_logit_grad_eta(x, eta) - fd).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let lambda = 4.2;
        let total: f64 = (0..200).map(|k| poisson_log_pmf(k, lambda).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let (n, p) = (17, 0.35);
        let total: f64 = (0..=n).map(|k| binomial_log_pmf(k, n, p).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10);
        // degenerate edges (lgamma round-off keeps these from being exact)
        assert!(binomial_log_pmf(0, 5, 0.0).abs() < 1e-12);
        assert!(binomial_log_pmf(5, 5, 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_log_pdf_cases() {
        assert!((uniform_log_pdf(0.5, 0.0, 2.0) + 2.0f64.ln()).abs() < 1e-14);
        assert_eq!(uniform_log_pdf(3.0, 0.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(uniform_log_pdf(0.5, 2.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn out_of_support_is_neg_infinity() {
        assert_eq!(gamma_log_pdf(-1.0, 2.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(inv_gamma_log_pdf(0.0, 2.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(beta_log_pdf(1.5, 2.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(bernoulli_log_pmf(2, 0.5), f64::NEG_INFINITY);
        assert_eq!(normal_log_pdf(0.0, 0.0, -1.0), f64::NEG_INFINITY);
    }
}
