//! Vector-valued distributions: Categorical, Dirichlet, and the
//! multivariate normal.

use augur_math::special::lgamma;
use augur_math::{Cholesky, Matrix, PoolVec};

const LN_2PI: f64 = 1.837_877_066_409_345_6;

/// `ln Categorical(k | pis)` for a probability vector `pis`.
///
/// Out-of-range indices and non-positive probabilities yield `-inf`.
pub fn categorical_log_pmf(k: usize, pis: &[f64]) -> f64 {
    match pis.get(k) {
        Some(&p) if p > 0.0 => p.ln(),
        _ => f64::NEG_INFINITY,
    }
}

/// `ln Dirichlet(x | alpha)`.
pub fn dirichlet_log_pdf(x: &[f64], alpha: &[f64]) -> f64 {
    assert_eq!(x.len(), alpha.len(), "dirichlet dimension mismatch");
    let sum_alpha: f64 = alpha.iter().sum();
    let mut ll = lgamma(sum_alpha);
    for (&xi, &ai) in x.iter().zip(alpha) {
        if xi <= 0.0 || ai <= 0.0 {
            return f64::NEG_INFINITY;
        }
        ll += (ai - 1.0) * xi.ln() - lgamma(ai);
    }
    ll
}

/// `∂/∂xᵢ ln Dirichlet(x | alpha) = (alphaᵢ − 1) / xᵢ`, accumulated into
/// `out`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn dirichlet_grad_x(x: &[f64], alpha: &[f64], out: &mut [f64]) {
    assert!(x.len() == alpha.len() && x.len() == out.len(), "dirichlet grad dims");
    for ((o, &xi), &ai) in out.iter_mut().zip(x).zip(alpha) {
        *o += (ai - 1.0) / xi;
    }
}

/// A multivariate normal with precomputed Cholesky factor — the cached form
/// used by the runtime when the covariance is a hyper-parameter.
#[derive(Debug, Clone)]
pub struct MvNormalCache {
    dim: usize,
    chol: Cholesky,
    log_norm: f64,
}

impl MvNormalCache {
    /// Builds the cache from a covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`augur_math::MathError`] when the covariance
    /// is not symmetric positive definite.
    pub fn new(cov: &Matrix) -> Result<Self, augur_math::MathError> {
        let chol = Cholesky::new(cov)?;
        let dim = cov.rows();
        let log_norm = -0.5 * (dim as f64 * LN_2PI + chol.log_det());
        Ok(MvNormalCache { dim, chol, log_norm })
    }

    /// The dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The Cholesky factor of the covariance.
    pub fn cholesky(&self) -> &Cholesky {
        &self.chol
    }

    /// `ln N(x | mu, Σ)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn log_pdf(&self, x: &[f64], mu: &[f64]) -> f64 {
        assert!(x.len() == self.dim && mu.len() == self.dim, "mvnormal dims");
        let diff = augur_math::vecops::sub(x, mu);
        self.log_norm - 0.5 * self.chol.mahalanobis_sq(&diff)
    }

    /// `∂/∂x ln N(x | mu, Σ) = −Σ⁻¹ (x − mu)`, accumulated into `out`.
    pub fn grad_x(&self, x: &[f64], mu: &[f64], out: &mut [f64]) {
        let diff = augur_math::vecops::sub(x, mu);
        let g = self.chol.solve(&diff);
        for (o, gi) in out.iter_mut().zip(&g) {
            *o -= gi;
        }
    }

    /// `∂/∂mu ln N(x | mu, Σ) = Σ⁻¹ (x − mu)`, accumulated into `out`.
    pub fn grad_mu(&self, x: &[f64], mu: &[f64], out: &mut [f64]) {
        let diff = augur_math::vecops::sub(x, mu);
        let g = self.chol.solve(&diff);
        for (o, gi) in out.iter_mut().zip(&g) {
            *o += gi;
        }
    }

    /// Samples `mu + L z` into `out`.
    pub fn sample(&self, mu: &[f64], rng: &mut crate::Prng, out: &mut [f64]) {
        let z = PoolVec::from_fn(self.dim, |_| rng.std_normal());
        let lz = self.chol.correlate(&z);
        for ((o, &m), l) in out.iter_mut().zip(mu).zip(&lz) {
            *o = m + l;
        }
    }
}

/// One-shot `ln N(x | mu, Σ)` without caching (factorizes Σ on every call).
///
/// Returns `-inf` when `Σ` is not positive definite.
pub fn mv_normal_log_pdf(x: &[f64], mu: &[f64], cov_data: &[f64], dim: usize) -> f64 {
    let cov = match Matrix::from_slice(dim, dim, cov_data) {
        Ok(m) => m,
        Err(_) => return f64::NEG_INFINITY,
    };
    match MvNormalCache::new(&cov) {
        Ok(cache) => cache.log_pdf(x, mu),
        Err(_) => f64::NEG_INFINITY,
    }
}

/// One-shot sampling from `N(mu, Σ)` into `out`.
///
/// # Panics
///
/// Panics if `Σ` is not positive definite or dimensions disagree.
pub fn mv_normal_sample(
    mu: &[f64],
    cov_data: &[f64],
    dim: usize,
    rng: &mut crate::Prng,
    out: &mut [f64],
) {
    let cov = Matrix::from_slice(dim, dim, cov_data).expect("covariance shape");
    let cache = MvNormalCache::new(&cov).expect("covariance must be SPD");
    cache.sample(mu, rng, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn categorical_basics() {
        let pis = [0.2, 0.3, 0.5];
        assert!((categorical_log_pmf(2, &pis) - 0.5f64.ln()).abs() < 1e-15);
        assert_eq!(categorical_log_pmf(3, &pis), f64::NEG_INFINITY);
    }

    #[test]
    fn dirichlet_uniform_density() {
        // Dirichlet(1,1,1) is uniform on the simplex with density Γ(3) = 2.
        let ll = dirichlet_log_pdf(&[0.2, 0.3, 0.5], &[1.0, 1.0, 1.0]);
        assert!((ll - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn dirichlet_grad_matches_finite_differences() {
        let alpha = [2.0, 3.0, 4.0];
        let x = [0.2, 0.3, 0.5];
        let mut g = vec![0.0; 3];
        dirichlet_grad_x(&x, &alpha, &mut g);
        for i in 0..3 {
            let h = 1e-7;
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (dirichlet_log_pdf(&xp, &alpha) - dirichlet_log_pdf(&xm, &alpha)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-4, "component {i}: {} vs {}", g[i], fd);
        }
    }

    #[test]
    fn mvnormal_1d_matches_scalar_normal() {
        let cov = Matrix::from_vec(1, 1, vec![2.5]).unwrap();
        let cache = MvNormalCache::new(&cov).unwrap();
        let ll = cache.log_pdf(&[0.7], &[-0.2]);
        assert!((ll - crate::scalar::normal_log_pdf(0.7, -0.2, 2.5)).abs() < 1e-13);
    }

    #[test]
    fn mvnormal_grads_match_finite_differences() {
        let cov = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        let cache = MvNormalCache::new(&cov).unwrap();
        let (x, mu) = ([0.3, -0.4], [0.1, 0.2]);
        let mut gx = vec![0.0; 2];
        cache.grad_x(&x, &mu, &mut gx);
        let mut gm = vec![0.0; 2];
        cache.grad_mu(&x, &mu, &mut gm);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (cache.log_pdf(&xp, &mu) - cache.log_pdf(&xm, &mu)) / (2.0 * h);
            assert!((gx[i] - fd).abs() < 1e-5);
            let mut mp = mu;
            mp[i] += h;
            let mut mm = mu;
            mm[i] -= h;
            let fdm = (cache.log_pdf(&x, &mp) - cache.log_pdf(&x, &mm)) / (2.0 * h);
            assert!((gm[i] - fdm).abs() < 1e-5);
        }
        // grad_x = -grad_mu for MVN
        assert!((gx[0] + gm[0]).abs() < 1e-12 && (gx[1] + gm[1]).abs() < 1e-12);
    }

    #[test]
    fn mvnormal_sampling_moments() {
        let cov = Matrix::from_rows(&[&[2.0, 0.8], &[0.8, 1.0]]).unwrap();
        let cache = MvNormalCache::new(&cov).unwrap();
        let mu = [1.0, -2.0];
        let mut rng = Prng::seed_from_u64(13);
        let n = 40_000;
        let mut sum = [0.0f64; 2];
        let mut cov01 = 0.0;
        let mut out = [0.0; 2];
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            cache.sample(&mu, &mut rng, &mut out);
            sum[0] += out[0];
            sum[1] += out[1];
            samples.push(out);
        }
        let m0 = sum[0] / n as f64;
        let m1 = sum[1] / n as f64;
        for s in &samples {
            cov01 += (s[0] - m0) * (s[1] - m1);
        }
        cov01 /= (n - 1) as f64;
        assert!((m0 - 1.0).abs() < 0.03);
        assert!((m1 + 2.0).abs() < 0.03);
        assert!((cov01 - 0.8).abs() < 0.05, "cov01 {cov01}");
    }

    #[test]
    fn one_shot_matches_cached() {
        let cov = [2.0, 0.5, 0.5, 1.0];
        let ll = mv_normal_log_pdf(&[0.3, -0.4], &[0.1, 0.2], &cov, 2);
        let cache =
            MvNormalCache::new(&Matrix::from_vec(2, 2, cov.to_vec()).unwrap()).unwrap();
        assert!((ll - cache.log_pdf(&[0.3, -0.4], &[0.1, 0.2])).abs() < 1e-14);
    }

    #[test]
    fn non_spd_covariance_gives_neg_inf() {
        let cov = [1.0, 2.0, 2.0, 1.0];
        assert_eq!(mv_normal_log_pdf(&[0.0, 0.0], &[0.0, 0.0], &cov, 2), f64::NEG_INFINITY);
    }
}
