//! Matrix-valued distributions: Wishart and inverse-Wishart, used by the
//! HGMM model (`Σ_k ∼ InvWishart(ν, Ψ)`).

use augur_math::special::lmvgamma;
use augur_math::{Cholesky, Matrix};

use crate::Prng;

/// `ln Wishart(X | df, scale)` with scale matrix `V` and `df > d − 1`.
pub fn wishart_log_pdf(x: &Matrix, df: f64, scale: &Matrix) -> f64 {
    let d = x.rows();
    assert!(x.is_square() && scale.is_square() && scale.rows() == d, "wishart dims");
    let chol_x = match Cholesky::new(x) {
        Ok(c) => c,
        Err(_) => return f64::NEG_INFINITY,
    };
    let chol_v = match Cholesky::new(scale) {
        Ok(c) => c,
        Err(_) => return f64::NEG_INFINITY,
    };
    if df <= (d - 1) as f64 {
        return f64::NEG_INFINITY;
    }
    let d_f = d as f64;
    // tr(V⁻¹ X)
    let vinv = chol_v.inverse();
    let tr = vinv.matmul(x).expect("square product").trace();
    0.5 * (df - d_f - 1.0) * chol_x.log_det()
        - 0.5 * tr
        - 0.5 * df * d_f * 2.0f64.ln()
        - 0.5 * df * chol_v.log_det()
        - lmvgamma(d, 0.5 * df)
}

/// `ln InvWishart(X | df, psi)` with `df > d − 1`.
pub fn inv_wishart_log_pdf(x: &Matrix, df: f64, psi: &Matrix) -> f64 {
    let d = x.rows();
    assert!(x.is_square() && psi.is_square() && psi.rows() == d, "inv-wishart dims");
    let chol_x = match Cholesky::new(x) {
        Ok(c) => c,
        Err(_) => return f64::NEG_INFINITY,
    };
    let chol_psi = match Cholesky::new(psi) {
        Ok(c) => c,
        Err(_) => return f64::NEG_INFINITY,
    };
    if df <= (d - 1) as f64 {
        return f64::NEG_INFINITY;
    }
    let d_f = d as f64;
    // tr(Ψ X⁻¹)
    let xinv = chol_x.inverse();
    let tr = psi.matmul(&xinv).expect("square product").trace();
    0.5 * df * chol_psi.log_det()
        - 0.5 * (df + d_f + 1.0) * chol_x.log_det()
        - 0.5 * tr
        - 0.5 * df * d_f * 2.0f64.ln()
        - lmvgamma(d, 0.5 * df)
}

/// Samples `Wishart(df, scale)` via the Bartlett decomposition.
///
/// # Panics
///
/// Panics if `scale` is not SPD or `df <= d - 1`.
pub fn wishart_sample(df: f64, scale: &Matrix, rng: &mut Prng) -> Matrix {
    let d = scale.rows();
    assert!(df > (d - 1) as f64, "wishart df must exceed d - 1");
    let chol = Cholesky::new(scale).expect("wishart scale must be SPD");
    // Lower-triangular A with chi-squared diagonal, standard normals below.
    let mut a = Matrix::zeros(d, d);
    for i in 0..d {
        a[(i, i)] = rng.chi_squared(df - i as f64).sqrt();
        for j in 0..i {
            a[(i, j)] = rng.std_normal();
        }
    }
    let la = chol.factor().matmul(&a).expect("square product");
    la.matmul(&la.transpose()).expect("square product")
}

/// Samples `InvWishart(df, psi)`: draws `W ∼ Wishart(df, Ψ⁻¹)` and returns
/// `W⁻¹`.
///
/// # Panics
///
/// Panics if `psi` is not SPD or `df <= d - 1`.
pub fn inv_wishart_sample(df: f64, psi: &Matrix, rng: &mut Prng) -> Matrix {
    let psi_inv = Cholesky::new(psi).expect("psi must be SPD").inverse();
    // Symmetrize against round-off before factorizing again.
    let w = wishart_sample(df, &symmetrize(&psi_inv), rng);
    let w_inv = Cholesky::new(&symmetrize(&w)).expect("wishart draw must be SPD").inverse();
    symmetrize(&w_inv)
}

fn symmetrize(m: &Matrix) -> Matrix {
    let n = m.rows();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = 0.5 * (m[(i, j)] + m[(j, i)]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wishart_1d_is_gamma() {
        // Wishart(df, v) in 1-D equals Gamma(df/2, 1/(2v)).
        let x = Matrix::from_vec(1, 1, vec![1.7]).unwrap();
        let v = Matrix::from_vec(1, 1, vec![0.8]).unwrap();
        let ll = wishart_log_pdf(&x, 5.0, &v);
        let gamma_ll = crate::scalar::gamma_log_pdf(1.7, 2.5, 1.0 / 1.6);
        assert!((ll - gamma_ll).abs() < 1e-10, "{ll} vs {gamma_ll}");
    }

    #[test]
    fn inv_wishart_1d_is_inv_gamma() {
        // InvWishart(df, psi) in 1-D equals InvGamma(df/2, psi/2).
        let x = Matrix::from_vec(1, 1, vec![0.9]).unwrap();
        let psi = Matrix::from_vec(1, 1, vec![1.2]).unwrap();
        let ll = inv_wishart_log_pdf(&x, 6.0, &psi);
        let ig_ll = crate::scalar::inv_gamma_log_pdf(0.9, 3.0, 0.6);
        assert!((ll - ig_ll).abs() < 1e-10, "{ll} vs {ig_ll}");
    }

    #[test]
    fn wishart_sample_mean_is_df_times_scale() {
        let scale = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 0.5]]).unwrap();
        let df = 7.0;
        let mut rng = Prng::seed_from_u64(21);
        let n = 8_000;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..n {
            let w = wishart_sample(df, &scale, &mut rng);
            acc = &acc + &w;
        }
        let mean = acc.scale(1.0 / n as f64);
        let expect = scale.scale(df);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (mean[(i, j)] - expect[(i, j)]).abs() < 0.15,
                    "({i},{j}): {} vs {}",
                    mean[(i, j)],
                    expect[(i, j)]
                );
            }
        }
    }

    #[test]
    fn inv_wishart_sample_mean_matches_formula() {
        // E[X] = Ψ / (df − d − 1)
        let psi = Matrix::from_rows(&[&[2.0, 0.2], &[0.2, 1.0]]).unwrap();
        let df = 9.0;
        let mut rng = Prng::seed_from_u64(22);
        let n = 8_000;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..n {
            let w = inv_wishart_sample(df, &psi, &mut rng);
            acc = &acc + &w;
        }
        let mean = acc.scale(1.0 / n as f64);
        let expect = psi.scale(1.0 / (df - 3.0));
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (mean[(i, j)] - expect[(i, j)]).abs() < 0.05,
                    "({i},{j}): {} vs {}",
                    mean[(i, j)],
                    expect[(i, j)]
                );
            }
        }
    }

    #[test]
    fn samples_are_spd() {
        let psi = Matrix::from_rows(&[&[1.0, 0.1], &[0.1, 1.0]]).unwrap();
        let mut rng = Prng::seed_from_u64(23);
        for _ in 0..100 {
            let w = inv_wishart_sample(5.0, &psi, &mut rng);
            assert!(Cholesky::new(&w).is_ok());
            assert!(w.is_symmetric(1e-9));
        }
    }

    #[test]
    fn invalid_df_gives_neg_inf() {
        let x = Matrix::identity(3);
        let psi = Matrix::identity(3);
        assert_eq!(inv_wishart_log_pdf(&x, 1.5, &psi), f64::NEG_INFINITY);
        assert_eq!(wishart_log_pdf(&x, 1.5, &psi), f64::NEG_INFINITY);
    }
}
