//! The well-known conjugacy-relation table (paper §4.4).
//!
//! AugurV2 supports closed-form full-conditional (Gibbs) updates "via table
//! lookup" over the standard list of conjugacy relations. This module holds
//! the *runtime* half of the table: given the sufficient statistics that the
//! generated Low-- code accumulates, compute the posterior parameters to
//! sample from. The *detection* half (structural pattern matching on the
//! Density IL) lives in `augur-density::conjugacy`.

use augur_math::{Cholesky, Matrix};

/// Names a supported (prior, likelihood) conjugate pair.
///
/// The compiler attaches one of these to each Gibbs-able conditional; the
/// backend generates the sufficient-statistics loops plus a posterior
/// sampling step specialized to the relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Dirichlet` prior on the probability vector of a `Categorical`
    /// likelihood — posterior `Dirichlet(alpha + counts)`.
    DirichletCategorical,
    /// `Beta` prior on the success probability of a `Bernoulli` likelihood.
    BetaBernoulli,
    /// Scalar `Normal` prior on the mean of a `Normal` likelihood with known
    /// variance.
    NormalNormalMean,
    /// `MvNormal` prior on the mean of an `MvNormal` likelihood with known
    /// covariance.
    MvNormalMvNormalMean,
    /// `InvGamma` prior on the variance of a `Normal` likelihood with known
    /// mean.
    InvGammaNormalVar,
    /// `InvWishart` prior on the covariance of an `MvNormal` likelihood with
    /// known mean.
    InvWishartMvNormalCov,
    /// `Gamma` prior on the rate of a `Poisson` likelihood.
    GammaPoisson,
    /// `Gamma` prior on the rate of an `Exponential` likelihood.
    GammaExponential,
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Relation::DirichletCategorical => "Dirichlet-Categorical",
            Relation::BetaBernoulli => "Beta-Bernoulli",
            Relation::NormalNormalMean => "Normal-Normal (mean)",
            Relation::MvNormalMvNormalMean => "MvNormal-MvNormal (mean)",
            Relation::InvGammaNormalVar => "InvGamma-Normal (variance)",
            Relation::InvWishartMvNormalCov => "InvWishart-MvNormal (covariance)",
            Relation::GammaPoisson => "Gamma-Poisson",
            Relation::GammaExponential => "Gamma-Exponential",
        };
        f.write_str(s)
    }
}

/// All supported relations, for iteration in tests and documentation.
pub const ALL_RELATIONS: [Relation; 8] = [
    Relation::DirichletCategorical,
    Relation::BetaBernoulli,
    Relation::NormalNormalMean,
    Relation::MvNormalMvNormalMean,
    Relation::InvGammaNormalVar,
    Relation::InvWishartMvNormalCov,
    Relation::GammaPoisson,
    Relation::GammaExponential,
];

/// Posterior of `Dirichlet(alpha)` after categorical counts:
/// `Dirichlet(alpha + counts)`, written into `out`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dirichlet_categorical(alpha: &[f64], counts: &[f64], out: &mut [f64]) {
    assert!(alpha.len() == counts.len() && alpha.len() == out.len(), "dirichlet post dims");
    for ((o, &a), &c) in out.iter_mut().zip(alpha).zip(counts) {
        *o = a + c;
    }
}

/// Posterior of `Beta(a, b)` after observing `n1` successes and `n0`
/// failures: `Beta(a + n1, b + n0)`.
pub fn beta_bernoulli(a: f64, b: f64, n1: f64, n0: f64) -> (f64, f64) {
    (a + n1, b + n0)
}

/// Posterior of a `Normal(mu0, var0)` prior on the mean of
/// `Normal(·, like_var)` observations with sum `sum_x` over `n` points.
///
/// Returns `(mu_post, var_post)` with precision addition:
/// `1/var_post = 1/var0 + n/like_var`.
pub fn normal_normal_mean(
    mu0: f64,
    var0: f64,
    like_var: f64,
    sum_x: f64,
    n: f64,
) -> (f64, f64) {
    let prec = 1.0 / var0 + n / like_var;
    let var_post = 1.0 / prec;
    let mu_post = var_post * (mu0 / var0 + sum_x / like_var);
    (mu_post, var_post)
}

/// Posterior of an `MvNormal(mu0, Sigma0)` prior on the mean of
/// `MvNormal(·, Sigma)` observations with component-wise sum `sum_x` over
/// `n` points.
///
/// Returns `(mu_post, Sigma_post)` where
/// `Sigma_post = (Σ0⁻¹ + n Σ⁻¹)⁻¹` and
/// `mu_post = Sigma_post (Σ0⁻¹ mu0 + Σ⁻¹ sum_x)`.
///
/// # Panics
///
/// Panics when either covariance is not SPD or dimensions disagree.
pub fn mvnormal_mvnormal_mean(
    mu0: &[f64],
    sigma0: &Matrix,
    sigma: &Matrix,
    sum_x: &[f64],
    n: f64,
) -> (augur_math::PoolVec, Matrix) {
    let d = mu0.len();
    assert!(sigma0.rows() == d && sigma.rows() == d, "mvnormal post dims");
    let prec0 = Cholesky::new(sigma0).expect("Sigma0 must be SPD").inverse();
    let prec = Cholesky::new(sigma).expect("Sigma must be SPD").inverse();
    let post_prec = &prec0 + &prec.scale(n);
    let post_cov = Cholesky::new(&post_prec).expect("posterior precision SPD").inverse();
    let mut rhs = prec0.matvec(mu0);
    let like_part = prec.matvec(sum_x);
    for (r, l) in rhs.iter_mut().zip(&like_part) {
        *r += l;
    }
    let mu_post = post_cov.matvec(&rhs);
    (mu_post, post_cov)
}

/// Posterior of `InvGamma(shape, scale)` on the variance of
/// `Normal(mu, ·)` observations with `sum_sq_dev = Σ (xᵢ − mu)²` over `n`
/// points: `InvGamma(shape + n/2, scale + sum_sq_dev/2)`.
pub fn invgamma_normal_var(shape: f64, scale: f64, sum_sq_dev: f64, n: f64) -> (f64, f64) {
    (shape + 0.5 * n, scale + 0.5 * sum_sq_dev)
}

/// Posterior of `InvWishart(df, psi)` on the covariance of `MvNormal(mu, ·)`
/// observations with scatter matrix `S = Σ (xᵢ−mu)(xᵢ−mu)ᵀ` over `n`
/// points: `InvWishart(df + n, psi + S)`.
pub fn invwishart_mvnormal_cov(df: f64, psi: &Matrix, scatter: &Matrix, n: f64) -> (f64, Matrix) {
    (df + n, psi + scatter)
}

/// Posterior of `Gamma(shape, rate)` on a Poisson rate with `sum_x = Σ xᵢ`
/// over `n` points: `Gamma(shape + sum_x, rate + n)`.
pub fn gamma_poisson(shape: f64, rate: f64, sum_x: f64, n: f64) -> (f64, f64) {
    (shape + sum_x, rate + n)
}

/// Posterior of `Gamma(shape, rate)` on an Exponential rate with
/// `sum_x = Σ xᵢ` over `n` points: `Gamma(shape + n, rate + sum_x)`.
pub fn gamma_exponential(shape: f64, rate: f64, sum_x: f64, n: f64) -> (f64, f64) {
    (shape + n, rate + sum_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::normal_log_pdf;

    /// Verifies a closed-form posterior against brute-force Bayes on a grid:
    /// posterior ∝ prior · likelihood.
    #[test]
    fn normal_normal_matches_grid_bayes() {
        let (mu0, var0, like_var) = (1.0, 2.0, 0.5);
        let data = [0.3, -0.2, 0.8, 1.5];
        let sum_x: f64 = data.iter().sum();
        let (mu_p, var_p) = normal_normal_mean(mu0, var0, like_var, sum_x, data.len() as f64);
        // Grid-compare unnormalized log posterior with N(mu_p, var_p).
        for &theta in &[-1.0, 0.0, 0.5, 1.0, 2.0] {
            let lp: f64 = normal_log_pdf(theta, mu0, var0)
                + data.iter().map(|&x| normal_log_pdf(x, theta, like_var)).sum::<f64>();
            let lq = normal_log_pdf(theta, mu_p, var_p);
            let lp0: f64 = normal_log_pdf(0.0, mu0, var0)
                + data.iter().map(|&x| normal_log_pdf(x, 0.0, like_var)).sum::<f64>();
            let lq0 = normal_log_pdf(0.0, mu_p, var_p);
            // differences of log densities must agree (same shape)
            assert!(((lp - lp0) - (lq - lq0)).abs() < 1e-10, "theta={theta}");
        }
    }

    #[test]
    fn dirichlet_categorical_adds_counts() {
        let alpha = [1.0, 2.0, 3.0];
        let counts = [5.0, 0.0, 2.0];
        let mut out = [0.0; 3];
        dirichlet_categorical(&alpha, &counts, &mut out);
        assert_eq!(out, [6.0, 2.0, 5.0]);
    }

    #[test]
    fn beta_bernoulli_counts() {
        assert_eq!(beta_bernoulli(1.0, 1.0, 7.0, 3.0), (8.0, 4.0));
    }

    #[test]
    fn invgamma_normal_shapes() {
        let (a, b) = invgamma_normal_var(2.0, 1.0, 4.0, 10.0);
        assert_eq!((a, b), (7.0, 3.0));
    }

    #[test]
    fn gamma_poisson_and_exponential() {
        assert_eq!(gamma_poisson(2.0, 1.0, 30.0, 10.0), (32.0, 11.0));
        assert_eq!(gamma_exponential(2.0, 1.0, 30.0, 10.0), (12.0, 31.0));
    }

    #[test]
    fn mvnormal_posterior_1d_matches_scalar() {
        let mu0 = [1.0];
        let sigma0 = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        let sigma = Matrix::from_vec(1, 1, vec![0.5]).unwrap();
        let data_sum = [2.4];
        let n = 4.0;
        let (mu_v, cov_v) = mvnormal_mvnormal_mean(&mu0, &sigma0, &sigma, &data_sum, n);
        let (mu_s, var_s) = normal_normal_mean(1.0, 2.0, 0.5, 2.4, 4.0);
        assert!((mu_v[0] - mu_s).abs() < 1e-12);
        assert!((cov_v[(0, 0)] - var_s).abs() < 1e-12);
    }

    #[test]
    fn mvnormal_posterior_contracts_with_data() {
        let mu0 = [0.0, 0.0];
        let sigma0 = Matrix::identity(2).scale(10.0);
        let sigma = Matrix::identity(2);
        let (_, cov_small) = mvnormal_mvnormal_mean(&mu0, &sigma0, &sigma, &[0.0, 0.0], 100.0);
        let (_, cov_big) = mvnormal_mvnormal_mean(&mu0, &sigma0, &sigma, &[0.0, 0.0], 1.0);
        assert!(cov_small[(0, 0)] < cov_big[(0, 0)]);
        assert!((cov_small[(0, 0)] - 1.0 / (0.1 + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn invwishart_posterior_adds_scatter() {
        let psi = Matrix::identity(2);
        let scatter = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let (df, post) = invwishart_mvnormal_cov(4.0, &psi, &scatter, 5.0);
        assert_eq!(df, 9.0);
        assert_eq!(post[(0, 0)], 3.0);
        assert_eq!(post[(0, 1)], 1.0);
    }

    /// MC check: Gibbs via the posterior formulas leaves the joint invariant
    /// (posterior mean matches closed form after sampling).
    #[test]
    fn normal_normal_posterior_sampling_consistency() {
        use crate::Prng;
        let mut rng = Prng::seed_from_u64(31);
        let (mu0, var0, like_var) = (0.0, 1.0, 1.0);
        let data = [1.0, 1.2, 0.8, 1.1];
        let sum_x: f64 = data.iter().sum();
        let (mu_p, var_p) = normal_normal_mean(mu0, var0, like_var, sum_x, 4.0);
        let n = 50_000;
        let mean: f64 =
            (0..n).map(|_| rng.normal(mu_p, var_p)).sum::<f64>() / n as f64;
        assert!((mean - mu_p).abs() < 0.01);
        assert!((mu_p - sum_x / 5.0).abs() < 1e-12); // shrinkage toward 0
    }
}
