use std::fmt;
use std::str::FromStr;

use augur_math::Matrix;

use crate::value::{ValueMut, ValueRef};
use crate::{matrix as mat_dist, scalar, vector, Prng};

/// Simple runtime-level types, mirroring the Density IL base/compound types
/// (`σ ::= Int | Real`, `τ ::= σ | Vec τ | Mat σ`, paper Fig. 4) as far as
/// the distribution signatures need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimpleTy {
    /// Integer scalar.
    Int,
    /// Real scalar.
    Real,
    /// Vector of reals.
    Vec,
    /// Square matrix of reals.
    Mat,
}

impl fmt::Display for SimpleTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SimpleTy::Int => "Int",
            SimpleTy::Real => "Real",
            SimpleTy::Vec => "Vec Real",
            SimpleTy::Mat => "Mat Real",
        };
        f.write_str(s)
    }
}

/// The support of a distribution — drives the HMC constraint transforms and
/// the schedule heuristic (discrete ⇒ Gibbs, continuous ⇒ gradient-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// Finite discrete support `{0, …, K−1}` with `K` given by a parameter.
    DiscreteFinite,
    /// Countable discrete support (e.g. Poisson).
    DiscreteCount,
    /// The whole real line.
    RealLine,
    /// Positive reals.
    RealPos,
    /// The unit interval `[0, 1]`.
    UnitInterval,
    /// A bounded interval given by parameters.
    Interval,
    /// Real vectors.
    RealVector,
    /// The probability simplex.
    Simplex,
    /// Symmetric positive-definite matrices.
    PosDefMatrix,
}

impl Support {
    /// True for discrete supports.
    pub fn is_discrete(self) -> bool {
        matches!(self, Support::DiscreteFinite | Support::DiscreteCount)
    }
}

/// Error type for dynamic distribution operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Wrong number of parameters for the distribution.
    Arity {
        /// The distribution.
        kind: DistKind,
        /// Expected parameter count.
        expected: usize,
        /// Received parameter count.
        actual: usize,
    },
    /// The requested operation is not implemented for this distribution
    /// (e.g. gradients of a discrete distribution), matching the paper's
    /// Fig. 7 primitive-support table.
    Unsupported {
        /// The distribution.
        kind: DistKind,
        /// Short operation name (`"grad"`, `"samp"`, …).
        op: &'static str,
    },
    /// An unknown distribution name was parsed.
    UnknownName(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Arity { kind, expected, actual } => {
                write!(f, "{kind} expects {expected} parameters, got {actual}")
            }
            DistError::Unsupported { kind, op } => {
                write!(f, "operation {op} is not supported for {kind}")
            }
            DistError::UnknownName(n) => write!(f, "unknown distribution {n}"),
        }
    }
}

impl std::error::Error for DistError {}

/// The primitive distributions of the AugurV2 modeling language.
///
/// Each variant provides the three Low++ IL distribution operations of the
/// paper (Fig. 6): `ll` ([`DistKind::log_pdf`]), `samp`
/// ([`DistKind::sample`]), and `grad_i` ([`DistKind::grad_param`] /
/// [`DistKind::grad_point`]).
///
/// # Example
///
/// ```
/// use augur_dist::DistKind;
///
/// let d: DistKind = "MvNormal".parse().unwrap();
/// assert_eq!(d, DistKind::MvNormal);
/// assert_eq!(d.arity(), 2);
/// assert!(!d.support().is_discrete());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// `Normal(mu, var)` — scalar normal, *variance* parameterization.
    Normal,
    /// `MvNormal(mu, Sigma)` — multivariate normal.
    MvNormal,
    /// `Categorical(pis)` — finite discrete with probability vector.
    Categorical,
    /// `Dirichlet(alpha)`.
    Dirichlet,
    /// `Bernoulli(p)`.
    Bernoulli,
    /// `BernoulliLogit(eta)` — Bernoulli with logit parameter; the stable
    /// form the HLR likelihood lowers to.
    BernoulliLogit,
    /// `Gamma(shape, rate)`.
    Gamma,
    /// `InvGamma(shape, scale)`.
    InvGamma,
    /// `Beta(a, b)`.
    Beta,
    /// `Exponential(rate)`.
    Exponential,
    /// `Poisson(lambda)`.
    Poisson,
    /// `Uniform(lo, hi)` — continuous uniform.
    Uniform,
    /// `InvWishart(df, psi)`.
    InvWishart,
    /// `Binomial(n, p)`.
    Binomial,
}

/// All distribution kinds, for iteration in tests and tables.
pub const ALL_KINDS: [DistKind; 14] = [
    DistKind::Normal,
    DistKind::MvNormal,
    DistKind::Categorical,
    DistKind::Dirichlet,
    DistKind::Bernoulli,
    DistKind::BernoulliLogit,
    DistKind::Gamma,
    DistKind::InvGamma,
    DistKind::Beta,
    DistKind::Exponential,
    DistKind::Poisson,
    DistKind::Uniform,
    DistKind::InvWishart,
    DistKind::Binomial,
];

impl fmt::Display for DistKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DistKind {
    type Err = DistError;

    fn from_str(s: &str) -> Result<Self, DistError> {
        ALL_KINDS
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| DistError::UnknownName(s.to_owned()))
    }
}

impl DistKind {
    /// The surface-syntax name of the distribution.
    pub fn name(self) -> &'static str {
        match self {
            DistKind::Normal => "Normal",
            DistKind::MvNormal => "MvNormal",
            DistKind::Categorical => "Categorical",
            DistKind::Dirichlet => "Dirichlet",
            DistKind::Bernoulli => "Bernoulli",
            DistKind::BernoulliLogit => "BernoulliLogit",
            DistKind::Gamma => "Gamma",
            DistKind::InvGamma => "InvGamma",
            DistKind::Beta => "Beta",
            DistKind::Exponential => "Exponential",
            DistKind::Poisson => "Poisson",
            DistKind::Uniform => "Uniform",
            DistKind::InvWishart => "InvWishart",
            DistKind::Binomial => "Binomial",
        }
    }

    /// Number of parameters.
    pub fn arity(self) -> usize {
        self.param_tys().len()
    }

    /// Parameter types, in surface-syntax order.
    pub fn param_tys(self) -> &'static [SimpleTy] {
        match self {
            DistKind::Normal => &[SimpleTy::Real, SimpleTy::Real],
            DistKind::MvNormal => &[SimpleTy::Vec, SimpleTy::Mat],
            DistKind::Categorical => &[SimpleTy::Vec],
            DistKind::Dirichlet => &[SimpleTy::Vec],
            DistKind::Bernoulli | DistKind::BernoulliLogit => &[SimpleTy::Real],
            DistKind::Gamma | DistKind::InvGamma | DistKind::Beta => {
                &[SimpleTy::Real, SimpleTy::Real]
            }
            DistKind::Exponential | DistKind::Poisson => &[SimpleTy::Real],
            DistKind::Uniform => &[SimpleTy::Real, SimpleTy::Real],
            DistKind::InvWishart => &[SimpleTy::Real, SimpleTy::Mat],
            DistKind::Binomial => &[SimpleTy::Int, SimpleTy::Real],
        }
    }

    /// The type of a point in the support.
    pub fn point_ty(self) -> SimpleTy {
        match self {
            DistKind::Normal
            | DistKind::Gamma
            | DistKind::InvGamma
            | DistKind::Beta
            | DistKind::Exponential
            | DistKind::Uniform => SimpleTy::Real,
            DistKind::Categorical
            | DistKind::Bernoulli
            | DistKind::BernoulliLogit
            | DistKind::Poisson
            | DistKind::Binomial => SimpleTy::Int,
            DistKind::MvNormal | DistKind::Dirichlet => SimpleTy::Vec,
            DistKind::InvWishart => SimpleTy::Mat,
        }
    }

    /// The support of the distribution.
    pub fn support(self) -> Support {
        match self {
            DistKind::Normal => Support::RealLine,
            DistKind::MvNormal => Support::RealVector,
            DistKind::Categorical => Support::DiscreteFinite,
            DistKind::Dirichlet => Support::Simplex,
            DistKind::Bernoulli | DistKind::BernoulliLogit => Support::DiscreteFinite,
            DistKind::Gamma | DistKind::InvGamma | DistKind::Exponential => Support::RealPos,
            DistKind::Beta => Support::UnitInterval,
            DistKind::Poisson => Support::DiscreteCount,
            DistKind::Uniform => Support::Interval,
            DistKind::InvWishart => Support::PosDefMatrix,
            DistKind::Binomial => Support::DiscreteFinite,
        }
    }

    /// Whether gradients of the log-density with respect to the point are
    /// available (paper Fig. 7: HMC/reflective-slice need them).
    pub fn has_point_grad(self) -> bool {
        matches!(
            self,
            DistKind::Normal
                | DistKind::MvNormal
                | DistKind::Gamma
                | DistKind::InvGamma
                | DistKind::Beta
                | DistKind::Exponential
                | DistKind::Dirichlet
        )
    }

    fn check_arity(self, params: &[ValueRef]) -> Result<(), DistError> {
        if params.len() != self.arity() {
            return Err(DistError::Arity {
                kind: self,
                expected: self.arity(),
                actual: params.len(),
            });
        }
        Ok(())
    }

    /// Evaluates the log-density (`ll` in the Low++ IL) at `point`.
    ///
    /// Out-of-support points yield `-inf` rather than an error, matching
    /// MCMC usage where a proposal may step outside the support.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Arity`] when the parameter count is wrong.
    pub fn log_pdf(self, params: &[ValueRef], point: ValueRef) -> Result<f64, DistError> {
        self.check_arity(params)?;
        let ll = match self {
            DistKind::Normal => {
                scalar::normal_log_pdf(point.scalar(), params[0].scalar(), params[1].scalar())
            }
            DistKind::MvNormal => {
                let (cov, dim) = params[1].matrix();
                vector::mv_normal_log_pdf(point.vector(), params[0].vector(), cov, dim)
            }
            DistKind::Categorical => {
                let k = point.scalar();
                if k < 0.0 {
                    f64::NEG_INFINITY
                } else {
                    vector::categorical_log_pmf(k as usize, params[0].vector())
                }
            }
            DistKind::Dirichlet => vector::dirichlet_log_pdf(point.vector(), params[0].vector()),
            DistKind::Bernoulli => {
                let x = point.scalar();
                if x == 0.0 || x == 1.0 {
                    scalar::bernoulli_log_pmf(x as u8, params[0].scalar())
                } else {
                    f64::NEG_INFINITY
                }
            }
            DistKind::BernoulliLogit => {
                let x = point.scalar();
                if x == 0.0 || x == 1.0 {
                    scalar::bernoulli_logit_log_pmf(x as u8, params[0].scalar())
                } else {
                    f64::NEG_INFINITY
                }
            }
            DistKind::Gamma => {
                scalar::gamma_log_pdf(point.scalar(), params[0].scalar(), params[1].scalar())
            }
            DistKind::InvGamma => {
                scalar::inv_gamma_log_pdf(point.scalar(), params[0].scalar(), params[1].scalar())
            }
            DistKind::Beta => {
                scalar::beta_log_pdf(point.scalar(), params[0].scalar(), params[1].scalar())
            }
            DistKind::Exponential => {
                scalar::exponential_log_pdf(point.scalar(), params[0].scalar())
            }
            DistKind::Poisson => {
                let x = point.scalar();
                if x < 0.0 || x.fract() != 0.0 {
                    f64::NEG_INFINITY
                } else {
                    scalar::poisson_log_pmf(x as u64, params[0].scalar())
                }
            }
            DistKind::Uniform => {
                scalar::uniform_log_pdf(point.scalar(), params[0].scalar(), params[1].scalar())
            }
            DistKind::InvWishart => {
                let (x, d) = point.matrix();
                let (psi, dp) = params[1].matrix();
                let xm = Matrix::from_slice(d, d, x).expect("point matrix shape");
                let pm = Matrix::from_slice(dp, dp, psi).expect("psi matrix shape");
                mat_dist::inv_wishart_log_pdf(&xm, params[0].scalar(), &pm)
            }
            DistKind::Binomial => {
                let x = point.scalar();
                let n = params[0].scalar();
                if x < 0.0 || x.fract() != 0.0 || n < 0.0 {
                    f64::NEG_INFINITY
                } else {
                    scalar::binomial_log_pmf(x as u64, n as u64, params[1].scalar())
                }
            }
        };
        Ok(ll)
    }

    /// Samples a fresh point (`samp` in the Low++ IL) into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Arity`] on a wrong parameter count.
    ///
    /// # Panics
    ///
    /// Panics when parameters are outside their domain (e.g. a negative
    /// variance), consistent with the paper's runtime which traps on
    /// malformed parameters.
    pub fn sample(
        self,
        params: &[ValueRef],
        rng: &mut Prng,
        out: ValueMut,
    ) -> Result<(), DistError> {
        self.check_arity(params)?;
        match self {
            DistKind::Normal => {
                *out.scalar() = rng.normal(params[0].scalar(), params[1].scalar());
            }
            DistKind::MvNormal => {
                let (cov, dim) = params[1].matrix();
                vector::mv_normal_sample(params[0].vector(), cov, dim, rng, out.vector());
            }
            DistKind::Categorical => {
                *out.scalar() = rng.categorical(params[0].vector()) as f64;
            }
            DistKind::Dirichlet => {
                rng.dirichlet(params[0].vector(), out.vector());
            }
            DistKind::Bernoulli => {
                *out.scalar() = f64::from(rng.bernoulli(params[0].scalar()));
            }
            DistKind::BernoulliLogit => {
                let p = augur_math::special::sigmoid(params[0].scalar());
                *out.scalar() = f64::from(rng.bernoulli(p));
            }
            DistKind::Gamma => {
                *out.scalar() = rng.gamma(params[0].scalar(), params[1].scalar());
            }
            DistKind::InvGamma => {
                *out.scalar() = rng.inv_gamma(params[0].scalar(), params[1].scalar());
            }
            DistKind::Beta => {
                *out.scalar() = rng.beta(params[0].scalar(), params[1].scalar());
            }
            DistKind::Exponential => {
                *out.scalar() = rng.exponential(params[0].scalar());
            }
            DistKind::Poisson => {
                *out.scalar() = rng.poisson(params[0].scalar()) as f64;
            }
            DistKind::Uniform => {
                *out.scalar() = rng.uniform_range(params[0].scalar(), params[1].scalar());
            }
            DistKind::InvWishart => {
                let (psi, dp) = params[1].matrix();
                let pm = Matrix::from_slice(dp, dp, psi).expect("psi matrix shape");
                let draw = mat_dist::inv_wishart_sample(params[0].scalar(), &pm, rng);
                let (slot, dim) = out.matrix();
                assert_eq!(dim, dp, "inv-wishart output dimension");
                slot.copy_from_slice(draw.as_slice());
            }
            DistKind::Binomial => {
                let n = params[0].scalar() as u64;
                let p = params[1].scalar();
                let mut c = 0u64;
                for _ in 0..n {
                    c += u64::from(rng.bernoulli(p));
                }
                *out.scalar() = c as f64;
            }
        }
        Ok(())
    }

    /// Accumulates `∂/∂point log p(point | params)` into `out` (the Low++
    /// `grad_1`, position 1 being the point by the paper's convention).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Unsupported`] for distributions without point
    /// gradients (see [`DistKind::has_point_grad`]) and [`DistError::Arity`]
    /// on a wrong parameter count.
    pub fn grad_point(
        self,
        params: &[ValueRef],
        point: ValueRef,
        out: ValueMut,
    ) -> Result<(), DistError> {
        self.check_arity(params)?;
        match self {
            DistKind::Normal => {
                *out.scalar() +=
                    scalar::normal_grad_x(point.scalar(), params[0].scalar(), params[1].scalar());
            }
            DistKind::MvNormal => {
                let (cov, dim) = params[1].matrix();
                let m = Matrix::from_slice(dim, dim, cov).expect("cov shape");
                let cache = vector::MvNormalCache::new(&m)
                    .expect("covariance must be SPD for gradients");
                cache.grad_x(point.vector(), params[0].vector(), out.vector());
            }
            DistKind::Gamma => {
                *out.scalar() +=
                    scalar::gamma_grad_x(point.scalar(), params[0].scalar(), params[1].scalar());
            }
            DistKind::InvGamma => {
                *out.scalar() += scalar::inv_gamma_grad_x(
                    point.scalar(),
                    params[0].scalar(),
                    params[1].scalar(),
                );
            }
            DistKind::Beta => {
                *out.scalar() +=
                    scalar::beta_grad_x(point.scalar(), params[0].scalar(), params[1].scalar());
            }
            DistKind::Exponential => {
                *out.scalar() += scalar::exponential_grad_x(point.scalar(), params[0].scalar());
            }
            DistKind::Dirichlet => {
                vector::dirichlet_grad_x(point.vector(), params[0].vector(), out.vector());
            }
            _ => return Err(DistError::Unsupported { kind: self, op: "grad_point" }),
        }
        Ok(())
    }

    /// Accumulates `∂/∂params[i] log p(point | params)` into `out` (the
    /// Low++ `grad_{i+2}` by the paper's 1-based argument convention).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Unsupported`] for parameters without gradient
    /// support and [`DistError::Arity`] on a wrong parameter count.
    pub fn grad_param(
        self,
        i: usize,
        params: &[ValueRef],
        point: ValueRef,
        out: ValueMut,
    ) -> Result<(), DistError> {
        self.check_arity(params)?;
        match (self, i) {
            (DistKind::Normal, 0) => {
                *out.scalar() +=
                    scalar::normal_grad_mu(point.scalar(), params[0].scalar(), params[1].scalar());
            }
            (DistKind::Normal, 1) => {
                *out.scalar() += scalar::normal_grad_var(
                    point.scalar(),
                    params[0].scalar(),
                    params[1].scalar(),
                );
            }
            (DistKind::MvNormal, 0) => {
                let (cov, dim) = params[1].matrix();
                let m = Matrix::from_slice(dim, dim, cov).expect("cov shape");
                let cache = vector::MvNormalCache::new(&m)
                    .expect("covariance must be SPD for gradients");
                cache.grad_mu(point.vector(), params[0].vector(), out.vector());
            }
            (DistKind::BernoulliLogit, 0) => {
                let x = point.scalar();
                *out.scalar() += scalar::bernoulli_logit_grad_eta(x as u8, params[0].scalar());
            }
            (DistKind::Bernoulli, 0) => {
                // ∂/∂p ln Bern(y | p) = y/p − (1−y)/(1−p)
                let y = point.scalar();
                let p = params[0].scalar();
                *out.scalar() += if y == 1.0 { 1.0 / p } else { -1.0 / (1.0 - p) };
            }
            (DistKind::Exponential, 0) => {
                // ∂/∂rate [ln rate − rate·x] = 1/rate − x
                *out.scalar() += 1.0 / params[0].scalar() - point.scalar();
            }
            (DistKind::Poisson, 0) => {
                // ∂/∂λ [x ln λ − λ] = x/λ − 1
                *out.scalar() += point.scalar() / params[0].scalar() - 1.0;
            }
            _ => return Err(DistError::Unsupported { kind: self, op: "grad_param" }),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_every_name_roundtrips() {
        for k in ALL_KINDS {
            assert_eq!(k.name().parse::<DistKind>().unwrap(), k);
        }
        assert!(matches!(
            "Gumbel".parse::<DistKind>(),
            Err(DistError::UnknownName(_))
        ));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let err = DistKind::Normal.log_pdf(&[ValueRef::Scalar(0.0)], ValueRef::Scalar(0.0));
        assert!(matches!(err, Err(DistError::Arity { expected: 2, actual: 1, .. })));
    }

    #[test]
    fn dynamic_normal_matches_static() {
        let params = [ValueRef::Scalar(1.0), ValueRef::Scalar(4.0)];
        let ll = DistKind::Normal.log_pdf(&params, ValueRef::Scalar(0.0)).unwrap();
        assert!((ll - scalar::normal_log_pdf(0.0, 1.0, 4.0)).abs() < 1e-15);
    }

    #[test]
    fn dynamic_sampling_all_scalar_kinds() {
        let mut rng = Prng::seed_from_u64(5);
        let cases: Vec<(DistKind, Vec<f64>)> = vec![
            (DistKind::Normal, vec![0.0, 1.0]),
            (DistKind::Gamma, vec![2.0, 2.0]),
            (DistKind::InvGamma, vec![3.0, 2.0]),
            (DistKind::Beta, vec![2.0, 2.0]),
            (DistKind::Exponential, vec![1.5]),
            (DistKind::Poisson, vec![4.0]),
            (DistKind::Uniform, vec![-1.0, 1.0]),
            (DistKind::Bernoulli, vec![0.4]),
            (DistKind::BernoulliLogit, vec![0.3]),
        ];
        for (kind, ps) in cases {
            let params: Vec<ValueRef> = ps.iter().map(|&p| ValueRef::Scalar(p)).collect();
            let mut x = f64::NAN;
            kind.sample(&params, &mut rng, ValueMut::Scalar(&mut x)).unwrap();
            assert!(x.is_finite(), "{kind} sample");
            // The drawn point must be inside the support: finite ll.
            let ll = kind.log_pdf(&params, ValueRef::Scalar(x)).unwrap();
            assert!(ll.is_finite(), "{kind} ll at own sample: {ll}");
        }
    }

    #[test]
    fn categorical_and_dirichlet_dispatch() {
        let pis = [0.25, 0.25, 0.5];
        let params = [ValueRef::Vector(&pis)];
        let mut rng = Prng::seed_from_u64(6);
        let mut k = f64::NAN;
        DistKind::Categorical.sample(&params, &mut rng, ValueMut::Scalar(&mut k)).unwrap();
        assert!((0.0..=2.0).contains(&k) && k.fract() == 0.0);
        let alpha = [1.0, 2.0, 3.0];
        let dparams = [ValueRef::Vector(&alpha)];
        let mut theta = vec![0.0; 3];
        DistKind::Dirichlet
            .sample(&dparams, &mut rng, ValueMut::Vector(&mut theta))
            .unwrap();
        let ll = DistKind::Dirichlet.log_pdf(&dparams, ValueRef::Vector(&theta)).unwrap();
        assert!(ll.is_finite());
    }

    #[test]
    fn grad_point_unsupported_for_discrete() {
        let pis = [0.5, 0.5];
        let params = [ValueRef::Vector(&pis)];
        let mut out = 0.0;
        let err = DistKind::Categorical.grad_point(
            &params,
            ValueRef::Scalar(0.0),
            ValueMut::Scalar(&mut out),
        );
        assert!(matches!(err, Err(DistError::Unsupported { .. })));
    }

    #[test]
    fn grad_accumulates_rather_than_overwrites() {
        let params = [ValueRef::Scalar(0.0), ValueRef::Scalar(1.0)];
        let mut out = 10.0;
        DistKind::Normal
            .grad_point(&params, ValueRef::Scalar(2.0), ValueMut::Scalar(&mut out))
            .unwrap();
        assert!((out - (10.0 - 2.0)).abs() < 1e-14);
    }

    #[test]
    fn inv_wishart_dispatch_roundtrip() {
        let psi = [1.0, 0.0, 0.0, 1.0];
        let params = [ValueRef::Scalar(5.0), ValueRef::Matrix { data: &psi, dim: 2 }];
        let mut rng = Prng::seed_from_u64(7);
        let mut draw = vec![0.0; 4];
        DistKind::InvWishart
            .sample(&params, &mut rng, ValueMut::Matrix { data: &mut draw, dim: 2 })
            .unwrap();
        let ll = DistKind::InvWishart
            .log_pdf(&params, ValueRef::Matrix { data: &draw, dim: 2 })
            .unwrap();
        assert!(ll.is_finite());
    }

    #[test]
    fn support_table_consistency() {
        for k in ALL_KINDS {
            if k.support().is_discrete() {
                assert!(!k.has_point_grad(), "{k} is discrete but claims point grads");
            }
        }
    }
}
