//! Primitive probability distributions for the AugurV2 reproduction.
//!
//! AugurV2 (PLDI 2017) restricts models to *primitive distributions whose
//! PDF/PMF has known functional form* (§2.2). This crate implements those
//! primitives — log-density, sampling, and the partial derivatives of the
//! log-density that the compiler's AD pass and HMC kernels consume — plus
//! the runtime half of the well-known *conjugacy relations* table that
//! Gibbs updates are generated from (§4.4).
//!
//! Three layers:
//!
//! * typed free functions per distribution (modules [`scalar`], [`vector`],
//!   [`matrix`]) — used by the baselines and by tests;
//! * [`DistKind`] — a uniform, dynamically-dispatched view used by the
//!   compiler pipeline and the Low-- interpreter (`ll` / `samp` / `grad_i`
//!   from the paper's Low++ IL, Fig. 6);
//! * [`conjugacy`] — posterior-parameter computations for each supported
//!   conjugate pair.
//!
//! # Example
//!
//! ```
//! use augur_dist::{DistKind, Prng, ValueRef};
//!
//! let mut rng = Prng::seed_from_u64(7);
//! let params = [ValueRef::Scalar(0.0), ValueRef::Scalar(1.0)];
//! let ll = DistKind::Normal.log_pdf(&params, ValueRef::Scalar(0.5)).unwrap();
//! assert!((ll - augur_dist::scalar::normal_log_pdf(0.5, 0.0, 1.0)).abs() < 1e-15);
//! let x = rng.normal(0.0, 1.0);
//! assert!(x.is_finite());
//! ```

#![deny(missing_docs)]

pub mod conjugacy;
mod kind;
pub mod matrix;
pub mod scalar;
mod value;
pub mod vector;

pub use augur_math::Prng;
pub use kind::{DistError, DistKind, SimpleTy, Support, ALL_KINDS};
pub use value::{ValueMut, ValueRef};
