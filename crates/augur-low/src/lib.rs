//! The **Low++ / Low--** stage of the AugurV2 compiler (paper §4.3–§5.2).
//!
//! This crate turns a validated [`augur_kernel::KernelPlan`] into
//! executable imperative code:
//!
//! * [`il`] — the Low++/Low-- IL: statements with `Seq`/`Par`/`AtmPar`
//!   loop annotations, a dedicated atomic `+=` category, and distribution
//!   operations `ll`/`samp`/`grad_i` (Fig. 6);
//! * [`gibbs`] — code generators for conjugate Gibbs (one per relation)
//!   and finite-sum Gibbs over discrete supports (§4.4);
//! * [`grad`] — source-to-source reverse-mode AD (Fig. 8), exploiting
//!   parallel-comprehension semantics to avoid a reversal stack;
//! * [`shape`] — size inference (§5.2): every buffer gets a symbolic shape
//!   resolved at setup so all memory is allocated up front;
//! * [`lower`] — the per-update driver producing a [`LoweredModel`].
//!
//! # Example
//!
//! ```
//! use augur_kernel::{heuristic_schedule, plan};
//! use augur_low::lower;
//!
//! let src = "(N, tau2, s2) => {
//!     param m ~ Normal(0.0, tau2) ;
//!     data y[n] ~ Normal(m, s2) for n <- 0 until N ;
//! }";
//! let typed = augur_lang::typecheck(&augur_lang::parse(src)?)?;
//! let dm = augur_density::DensityModel::from_typed(&typed)?;
//! let sched = heuristic_schedule(&dm)?;
//! let lowered = lower(&dm, &plan(&dm, &sched)?)?;
//! assert_eq!(lowered.steps.len(), 1); // one conjugate Gibbs step
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod from_density;
pub mod gibbs;
pub mod grad;
pub mod il;
mod lower;
pub mod memory;
pub mod shape;

use std::fmt;

pub use lower::{lower, LoweredModel, Step, Transform};

/// Errors produced while lowering to Low--.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// A likelihood's fixed parameter varies within a target slice, so the
    /// closed-form posterior cannot be formed (precision loss of the
    /// symbolic conditional, §3.3).
    NotSliceConstant {
        /// The update being generated.
        update: String,
        /// The offending expression.
        expr: String,
        /// The comprehension variable it still mentions.
        comp_var: String,
    },
    /// A discrete variable's conditional could not be aligned to its
    /// comprehension structure.
    UnalignedDiscrete {
        /// The variable.
        target: String,
    },
    /// An expression mentioning a differentiation target is outside the
    /// AD-supported fragment.
    UnsupportedAd {
        /// The expression.
        expr: String,
    },
    /// No constraint transform is available for the variable's support.
    UnsupportedTransform {
        /// The update being generated.
        update: String,
        /// The variable.
        var: String,
        /// Its support.
        support: String,
    },
    /// A planned Gibbs update arrived without a full-conditional strategy
    /// (the kernel plan does not belong to this model).
    MissingStrategy {
        /// The update whose strategy is absent.
        update: String,
        /// The variable it was supposed to resample.
        var: String,
    },
    /// A variable the plan targets (or a parameter to initialize) has no
    /// prior factor in the density model — the plan and model disagree.
    MissingPrior {
        /// The variable without a prior.
        var: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NotSliceConstant { update, expr, comp_var } => write!(
                f,
                "{update}: likelihood parameter `{expr}` is not constant on target slices \
                 (mentions `{comp_var}`)"
            ),
            LowerError::UnalignedDiscrete { target } => write!(
                f,
                "discrete variable `{target}` has a conditional that cannot be aligned to its \
                 comprehensions"
            ),
            LowerError::UnsupportedAd { expr } => {
                write!(f, "expression `{expr}` is outside the differentiable fragment")
            }
            LowerError::UnsupportedTransform { update, var, support } => write!(
                f,
                "{update}: no unconstraining transform for `{var}` with support {support}"
            ),
            LowerError::MissingStrategy { update, var } => write!(
                f,
                "{update}: Gibbs update for `{var}` has no full-conditional strategy \
                 (was the plan built for a different model?)"
            ),
            LowerError::MissingPrior { var } => {
                write!(f, "`{var}` has no prior factor in the model")
            }
        }
    }
}

impl std::error::Error for LowerError {}
