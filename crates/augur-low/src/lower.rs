//! Lowering the Kernel IL into Low++/Low-- procedures (paper §4.3–4.4).
//!
//! Each base update becomes the procedures its MCMC primitive needs
//! (Fig. 7): likelihood evaluation, closed-form conditional code, and/or a
//! gradient procedure from the AD pass. The rest of each update — leapfrog
//! integration, slice bracketing, acceptance ratios — is runtime *library
//! code* in `augur-backend`, parameterized by these procedures, exactly as
//! the paper splits responsibilities.

use augur_density::{DensityModel, Factor};
use augur_dist::Support;
use augur_kernel::{FcStrategy, KernelPlan, UpdateKind};

use crate::from_density::{factors_ll_body, lower_expr};
use crate::gibbs::{gen_conjugate, gen_finite_sum};
use crate::grad::{adj_name, gen_grad_proc};
use crate::il::{AssignOp, Expr, LValue, LoopKind, ProcDecl, Stmt};
use crate::shape::{AllocDecl, ShapeSpec};
use crate::LowerError;

/// A support-driven reparameterization for unconstrained samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Sample the variable directly.
    Identity,
    /// Sample `u = log x` (positive supports), with the Jacobian term
    /// `+u` added to the log-density by the runtime library.
    Log,
    /// Sample `u = logit x` (unit-interval supports), with the Jacobian
    /// term `+ log σ(u) + log σ(−u)`.
    Logit,
}

/// One executable step of the compiled MCMC algorithm — the Kernel IL with
/// `α` instantiated by Low-- procedure names.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Run a Gibbs procedure; it resamples `target` in place and is always
    /// accepted.
    Gibbs {
        /// Procedure to execute.
        proc_: String,
        /// The variable it resamples.
        target: String,
    },
    /// Hamiltonian Monte Carlo over a block of variables.
    Hmc {
        /// Targets with their transforms.
        targets: Vec<(String, Transform)>,
        /// Conditional log-likelihood procedure.
        ll_proc: String,
        /// Gradient procedure (writes the adjoint buffers).
        grad_proc: String,
        /// Adjoint buffer per target, aligned with `targets`.
        adj_bufs: Vec<String>,
        /// Whether to use the No-U-Turn variant.
        nuts: bool,
    },
    /// Reflective slice sampling over a block.
    SliceRefl {
        /// Targets with their transforms.
        targets: Vec<(String, Transform)>,
        /// Conditional log-likelihood procedure.
        ll_proc: String,
        /// Gradient procedure.
        grad_proc: String,
        /// Adjoint buffer per target.
        adj_bufs: Vec<String>,
    },
    /// Elliptical slice sampling of one Gaussian-prior variable.
    ESlice {
        /// The variable.
        target: String,
        /// Likelihood-only procedure (prior excluded).
        lik_proc: String,
        /// Procedure drawing the auxiliary prior sample into `aux_buf`.
        prior_sample_proc: String,
        /// Auxiliary buffer (shaped like the target).
        aux_buf: String,
        /// Procedure writing the prior mean into `mean_buf`.
        prior_mean_proc: String,
        /// Prior-mean buffer (shaped like the target).
        mean_buf: String,
    },
    /// Metropolis-adjusted Langevin over a block (the §7.1 extensibility
    /// exercise: a new base update assembled from the existing ll/grad
    /// primitives).
    Mala {
        /// Targets with their transforms.
        targets: Vec<(String, Transform)>,
        /// Conditional log-likelihood procedure.
        ll_proc: String,
        /// Gradient procedure.
        grad_proc: String,
        /// Adjoint buffer per target.
        adj_bufs: Vec<String>,
    },
    /// Random-walk Metropolis–Hastings over a block.
    RwMh {
        /// Targets with their transforms.
        targets: Vec<(String, Transform)>,
        /// Conditional log-likelihood procedure.
        ll_proc: String,
    },
}

impl Step {
    /// The variables this step resamples.
    pub fn targets(&self) -> Vec<&str> {
        match self {
            Step::Gibbs { target, .. } | Step::ESlice { target, .. } => vec![target],
            Step::Hmc { targets, .. }
            | Step::SliceRefl { targets, .. }
            | Step::Mala { targets, .. }
            | Step::RwMh { targets, .. } => targets.iter().map(|(t, _)| t.as_str()).collect(),
        }
    }
}

/// The fully lowered model: planned allocations, procedures, the sweep
/// steps, and the prior-sampling initializer.
#[derive(Debug, Clone)]
pub struct LoweredModel {
    /// Buffers to allocate up front (size inference, §5.2).
    pub allocs: Vec<AllocDecl>,
    /// All generated procedures.
    pub procs: Vec<ProcDecl>,
    /// The sweep, in order.
    pub steps: Vec<Step>,
    /// Initializes every parameter by ancestral sampling from its prior.
    pub init_proc: String,
    /// Evaluates the full model log-joint (diagnostics / log-predictive).
    pub model_ll_proc: String,
}

/// Lowers a validated kernel plan into executable Low-- form.
///
/// # Errors
///
/// Returns a [`LowerError`] for constructs outside the supported fragment
/// (non-slice-constant likelihood parameters, non-differentiable target
/// expressions, unsupported constraint transforms).
pub fn lower(model: &DensityModel, plan: &KernelPlan) -> Result<LoweredModel, LowerError> {
    let mut allocs = Vec::new();
    let mut procs = Vec::new();
    let mut steps = Vec::new();

    for (i, pu) in plan.updates.iter().enumerate() {
        let cond = &pu.base.cond;
        let prefix = format!("u{i}");
        match pu.base.kind {
            UpdateKind::Gibbs => {
                let target = cond.targets[0].clone();
                let strategy = pu.fc.as_ref().ok_or_else(|| LowerError::MissingStrategy {
                    update: prefix.clone(),
                    var: target.clone(),
                })?;
                let code = match strategy {
                    FcStrategy::Conjugate(m) => gen_conjugate(i, cond, m)?,
                    FcStrategy::FiniteSum(sz) => gen_finite_sum(i, cond, sz)?,
                };
                allocs.extend(code.allocs);
                steps.push(Step::Gibbs { proc_: code.proc_.name.clone(), target });
                procs.push(code.proc_);
            }
            UpdateKind::Hmc | UpdateKind::Nuts | UpdateKind::Mala | UpdateKind::ReflectiveSlice => {
                let targets = transforms_for(model, cond.targets.clone(), &prefix)?;
                let ll_name = format!("{prefix}_ll");
                let factors: Vec<&Factor> = cond.factors.iter().map(|cf| &cf.factor).collect();
                procs.push(ProcDecl {
                    name: ll_name.clone(),
                    body: factors_ll_body(&factors, &format!("{prefix}_llacc")),
                    ret: Some(Expr::var(format!("{prefix}_llacc"))),
                });
                allocs.push(AllocDecl::shared(format!("{prefix}_llacc"), ShapeSpec::Scalar));
                let grad_name = format!("{prefix}_grad");
                let (grad_allocs, grad_proc) =
                    gen_grad_proc(&prefix, &grad_name, cond, &cond.targets)?;
                let adj_bufs: Vec<String> =
                    cond.targets.iter().map(|t| adj_name(&prefix, t)).collect();
                allocs.extend(grad_allocs);
                procs.push(grad_proc);
                let step = match pu.base.kind {
                    UpdateKind::ReflectiveSlice => Step::SliceRefl {
                        targets,
                        ll_proc: ll_name,
                        grad_proc: grad_name,
                        adj_bufs,
                    },
                    UpdateKind::Mala => Step::Mala {
                        targets,
                        ll_proc: ll_name,
                        grad_proc: grad_name,
                        adj_bufs,
                    },
                    kind => Step::Hmc {
                        targets,
                        ll_proc: ll_name,
                        grad_proc: grad_name,
                        adj_bufs,
                        nuts: kind == UpdateKind::Nuts,
                    },
                };
                steps.push(step);
            }
            UpdateKind::EllipticalSlice => {
                let target = cond.targets[0].clone();
                let lik_name = format!("{prefix}_lik");
                let lik_factors: Vec<&Factor> =
                    cond.likelihoods().map(|cf| &cf.factor).collect();
                procs.push(ProcDecl {
                    name: lik_name.clone(),
                    body: factors_ll_body(&lik_factors, &format!("{prefix}_llacc")),
                    ret: Some(Expr::var(format!("{prefix}_llacc"))),
                });
                allocs.push(AllocDecl::shared(format!("{prefix}_llacc"), ShapeSpec::Scalar));

                let prior = cond
                    .prior()
                    .ok_or_else(|| LowerError::MissingPrior { var: target.clone() })?
                    .factor
                    .clone();
                let aux_buf = format!("{prefix}_nu");
                let mean_buf = format!("{prefix}_pm");
                allocs.push(AllocDecl::shared(&aux_buf, ShapeSpec::LikeVar(target.clone())));
                allocs.push(AllocDecl::shared(&mean_buf, ShapeSpec::LikeVar(target.clone())));

                let psamp_name = format!("{prefix}_prior_sample");
                procs.push(sample_into_proc(&psamp_name, &prior, &aux_buf));
                let pmean_name = format!("{prefix}_prior_mean");
                procs.push(store_arg_proc(&pmean_name, &prior, 0, &mean_buf));
                steps.push(Step::ESlice {
                    target,
                    lik_proc: lik_name,
                    prior_sample_proc: psamp_name,
                    aux_buf,
                    prior_mean_proc: pmean_name,
                    mean_buf,
                });
            }
            UpdateKind::MetropolisHastings => {
                let targets = transforms_for(model, cond.targets.clone(), &prefix)?;
                let ll_name = format!("{prefix}_ll");
                let factors: Vec<&Factor> = cond.factors.iter().map(|cf| &cf.factor).collect();
                procs.push(ProcDecl {
                    name: ll_name.clone(),
                    body: factors_ll_body(&factors, &format!("{prefix}_llacc")),
                    ret: Some(Expr::var(format!("{prefix}_llacc"))),
                });
                allocs.push(AllocDecl::shared(format!("{prefix}_llacc"), ShapeSpec::Scalar));
                steps.push(Step::RwMh { targets, ll_proc: ll_name });
            }
        }
    }

    // Initializer: ancestral sampling of every parameter from its prior.
    let init_proc = "init_params".to_owned();
    procs.push(init_params_proc(model, &init_proc)?);

    // Full-model joint log-density.
    let model_ll_proc = "model_ll".to_owned();
    let all_factors: Vec<&Factor> = model.factors.iter().collect();
    allocs.push(AllocDecl::shared("model_llacc", ShapeSpec::Scalar));
    procs.push(ProcDecl {
        name: model_ll_proc.clone(),
        body: factors_ll_body(&all_factors, "model_llacc"),
        ret: Some(Expr::var("model_llacc")),
    });

    Ok(LoweredModel { allocs, procs, steps, init_proc, model_ll_proc })
}

/// Chooses the constraint transform for each target from its prior
/// support.
fn transforms_for(
    model: &DensityModel,
    targets: Vec<String>,
    prefix: &str,
) -> Result<Vec<(String, Transform)>, LowerError> {
    targets
        .into_iter()
        .map(|t| {
            let support = model
                .prior_factor(&t)
                .map(|(_, f)| f.dist.support())
                .ok_or_else(|| LowerError::MissingPrior { var: t.clone() })?;
            let tr = match support {
                Support::RealPos => Transform::Log,
                Support::UnitInterval => Transform::Logit,
                Support::RealLine | Support::RealVector | Support::Interval => {
                    Transform::Identity
                }
                other => {
                    return Err(LowerError::UnsupportedTransform {
                        update: prefix.to_owned(),
                        var: t.clone(),
                        support: format!("{other:?}"),
                    })
                }
            };
            Ok((t, tr))
        })
        .collect()
}

/// `loop Par (comps) { buf[idx…] = dist(args).samp }`.
fn sample_into_proc(name: &str, prior: &Factor, buf: &str) -> ProcDecl {
    let lhs = LValue {
        var: buf.to_owned(),
        indices: prior.comps.iter().map(|c| Expr::var(&c.var)).collect(),
    };
    let body = crate::from_density::wrap_comps(
        &prior.comps,
        LoopKind::Par,
        Stmt::Sample {
            lhs,
            dist: prior.dist,
            args: prior.args.iter().map(lower_expr).collect(),
        },
    );
    ProcDecl { name: name.to_owned(), body, ret: None }
}

/// `loop Par (comps) { buf[idx…] = args[pos] }` — e.g. materializing the
/// prior mean for elliptical slice rotation.
fn store_arg_proc(name: &str, prior: &Factor, pos: usize, buf: &str) -> ProcDecl {
    let lhs = LValue {
        var: buf.to_owned(),
        indices: prior.comps.iter().map(|c| Expr::var(&c.var)).collect(),
    };
    let body = crate::from_density::wrap_comps(
        &prior.comps,
        LoopKind::Par,
        Stmt::Assign { lhs, op: AssignOp::Set, rhs: lower_expr(&prior.args[pos]) },
    );
    ProcDecl { name: name.to_owned(), body, ret: None }
}

/// Ancestral prior sampling of all parameters, in declaration order.
fn init_params_proc(model: &DensityModel, name: &str) -> Result<ProcDecl, LowerError> {
    let mut stmts = Vec::new();
    for p in model.params() {
        let (_, prior) = model
            .prior_factor(&p.name)
            .ok_or_else(|| LowerError::MissingPrior { var: p.name.clone() })?;
        let lhs = LValue {
            var: p.name.clone(),
            indices: prior.comps.iter().map(|c| Expr::var(&c.var)).collect(),
        };
        stmts.push(crate::from_density::wrap_comps(
            &prior.comps,
            LoopKind::Par,
            Stmt::Sample {
                lhs,
                dist: prior.dist,
                args: prior.args.iter().map(lower_expr).collect(),
            },
        ));
    }
    Ok(ProcDecl { name: name.to_owned(), body: Stmt::seq(stmts), ret: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_kernel::{heuristic_schedule, parse_schedule, plan};
    use augur_lang::{parse, typecheck};

    fn build(src: &str) -> DensityModel {
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    const HGMM: &str = r#"(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
        param pi ~ Dirichlet(alpha) ;
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param Sigma[k] ~ InvWishart(nu, Psi) for k <- 0 until K ;
        param z[n] ~ Categorical(pi) for n <- 0 until N ;
        data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]]) for n <- 0 until N ;
    }"#;

    const HLR: &str = r#"(lambda, N, D, x) => {
        param sigma2 ~ Exponential(lambda) ;
        param b ~ Normal(0.0, sigma2) ;
        param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
        data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta) + b)) for n <- 0 until N ;
    }"#;

    #[test]
    fn hgmm_heuristic_lowers_to_four_gibbs_steps() {
        let dm = build(HGMM);
        let sched = heuristic_schedule(&dm).unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        assert_eq!(lm.steps.len(), 4);
        assert!(lm.steps.iter().all(|s| matches!(s, Step::Gibbs { .. })));
        // init + model_ll + 4 gibbs procs
        assert_eq!(lm.procs.len(), 6);
    }

    #[test]
    fn hlr_heuristic_lowers_to_one_hmc_step_with_log_transform() {
        let dm = build(HLR);
        let sched = heuristic_schedule(&dm).unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        assert_eq!(lm.steps.len(), 1);
        match &lm.steps[0] {
            Step::Hmc { targets, adj_bufs, nuts, .. } => {
                assert!(!nuts);
                assert_eq!(targets.len(), 3);
                assert_eq!(targets[0], ("sigma2".to_owned(), Transform::Log));
                assert_eq!(targets[1].1, Transform::Identity);
                assert_eq!(adj_bufs.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mismatched_plan_and_model_is_a_typed_error() {
        // Plan built for HLR, lowered against HGMM: the plan's HMC targets
        // (`sigma2`, `b`, `theta`) have no priors in HGMM, so lowering must
        // fail with a typed error rather than panic.
        let hlr = build(HLR);
        let sched = heuristic_schedule(&hlr).unwrap();
        let kp = plan(&hlr, &sched).unwrap();
        let hgmm = build(HGMM);
        match lower(&hgmm, &kp) {
            Err(LowerError::MissingPrior { var }) => assert_eq!(var, "sigma2"),
            other => panic!("expected MissingPrior, got {other:?}"),
        }
    }

    #[test]
    fn fig2_schedule_lowers_eslice_and_finite_gibbs() {
        let dm = build(
            r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
            param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
            param z[n] ~ Categorical(pis) for n <- 0 until N ;
            data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
        }"#,
        );
        let sched = parse_schedule("ESlice mu (*) Gibbs z").unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        assert_eq!(lm.steps.len(), 2);
        match &lm.steps[0] {
            Step::ESlice { target, lik_proc, .. } => {
                assert_eq!(target, "mu");
                let lik = lm.procs.iter().find(|p| &p.name == lik_proc).unwrap();
                let s = crate::il::pretty_proc(lik);
                // prior excluded: only the data factor appears
                assert!(s.contains("MvNormal(mu[z[n]], Sigma).ll(x[n])"), "{s}");
                assert!(!s.contains("MvNormal(mu_0, Sigma_0)"), "{s}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&lm.steps[1], Step::Gibbs { .. }));
    }

    #[test]
    fn init_proc_samples_every_param_in_order() {
        let dm = build(HGMM);
        let sched = heuristic_schedule(&dm).unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        let init = lm.procs.iter().find(|p| p.name == lm.init_proc).unwrap();
        let s = crate::il::pretty_proc(init);
        let pi_pos = s.find("pi = Dirichlet(alpha).samp").unwrap();
        let z_pos = s.find("z[n] = Categorical(pi).samp").unwrap();
        assert!(pi_pos < z_pos, "{s}");
        assert!(s.contains("Sigma[k] = InvWishart(nu, Psi).samp;"), "{s}");
    }

    #[test]
    fn model_ll_covers_all_factors() {
        let dm = build(HLR);
        let sched = heuristic_schedule(&dm).unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        let ll = lm.procs.iter().find(|p| p.name == lm.model_ll_proc).unwrap();
        let s = crate::il::pretty_proc(ll);
        assert!(s.contains("Exponential(lambda).ll(sigma2)"), "{s}");
        assert!(s.contains("BernoulliLogit((dot(x[n], theta) + b)).ll(y[n])"), "{s}");
        assert!(s.contains("ret model_llacc;"), "{s}");
    }

    #[test]
    fn reflective_slice_step_lowered() {
        let dm = build(
            r#"(N, s2) => {
            param m ~ Normal(0.0, 10.0) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }"#,
        );
        let sched = parse_schedule("Slice m").unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        assert!(matches!(&lm.steps[0], Step::SliceRefl { .. }));
    }

    #[test]
    fn mh_step_lowered_with_ll_only() {
        let dm = build(HLR);
        let sched = parse_schedule("MH sigma2 (*) HMC b theta").unwrap();
        let kp = plan(&dm, &sched).unwrap();
        let lm = lower(&dm, &kp).unwrap();
        match &lm.steps[0] {
            Step::RwMh { targets, .. } => {
                assert_eq!(targets[0], ("sigma2".to_owned(), Transform::Log));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
