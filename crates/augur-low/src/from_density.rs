//! Translation helpers from the Density IL into Low++ code.

use augur_density::{Comp, DExpr, Factor};
use augur_dist::DistKind;
use augur_lang::ast::Builtin;

use crate::il::{AssignOp, Cond, Expr, LValue, LoopKind, Stmt};

/// Converts a Density-IL expression into a Low++ expression (they share
/// structure; this is the `α`-instantiation boundary).
pub fn lower_expr(e: &DExpr) -> Expr {
    match e {
        DExpr::Var(n) => Expr::Var(n.clone()),
        DExpr::Int(v) => Expr::Int(*v),
        DExpr::Real(v) => Expr::Real(*v),
        DExpr::Index(a, b) => Expr::index(lower_expr(a), lower_expr(b)),
        DExpr::Call(f, args) => Expr::Call(*f, args.iter().map(lower_expr).collect()),
        DExpr::Binop(op, a, b) => {
            Expr::Binop(*op, Box::new(lower_expr(a)), Box::new(lower_expr(b)))
        }
        DExpr::Neg(a) => Expr::Neg(Box::new(lower_expr(a))),
    }
}

/// The stabilized view of a factor's atom: `Bernoulli(sigmoid(e))` is
/// rewritten to `BernoulliLogit(e)` so log-densities and gradients are
/// computed in the logit domain (the standard trick Stan users apply by
/// hand; here it is a peephole of the lowering).
pub fn stabilized_atom(f: &Factor) -> (DistKind, Vec<DExpr>) {
    if f.dist == DistKind::Bernoulli {
        if let [DExpr::Call(Builtin::Sigmoid, inner)] = f.args.as_slice() {
            return (DistKind::BernoulliLogit, vec![inner[0].clone()]);
        }
    }
    (f.dist, f.args.clone())
}

/// Builds the `ll` expression of a factor's atom.
pub fn atom_ll(f: &Factor) -> Expr {
    let (dist, args) = stabilized_atom(f);
    Expr::DistLl {
        dist,
        args: args.iter().map(lower_expr).collect(),
        point: Box::new(lower_expr(&f.point)),
    }
}

/// Wraps a statement in the factor's indicator conditions (innermost
/// last).
pub fn wrap_inds(f: &Factor, body: Stmt) -> Stmt {
    let mut out = body;
    for (l, r) in f.inds.iter().rev() {
        out = Stmt::If {
            cond: Cond::Eq(lower_expr(l), lower_expr(r)),
            then: Box::new(out),
            els: None,
        };
    }
    out
}

/// Wraps a statement in the given comprehensions (outermost first) with
/// the given loop annotation.
pub fn wrap_comps(comps: &[Comp], kind: LoopKind, body: Stmt) -> Stmt {
    let mut out = body;
    for c in comps.iter().rev() {
        out = Stmt::Loop {
            kind,
            var: c.var.clone(),
            lo: lower_expr(&c.lo),
            hi: lower_expr(&c.hi),
            body: Box::new(out),
        };
    }
    out
}

/// Builds the statement that accumulates a factor's log-likelihood into
/// `acc`: the paper's map-reduce reification of a likelihood (§4.4),
/// annotated `AtmPar` because the increments must be atomic when
/// parallelized.
pub fn factor_ll_stmt(f: &Factor, acc: &str) -> Stmt {
    let body = wrap_inds(
        f,
        Stmt::Assign { lhs: LValue::name(acc), op: AssignOp::Inc, rhs: atom_ll(f) },
    );
    wrap_comps(&f.comps, LoopKind::AtmPar, body)
}

/// Builds a whole log-likelihood procedure body over several factors,
/// accumulating into `acc` (which is reset first).
pub fn factors_ll_body(factors: &[&Factor], acc: &str) -> Stmt {
    let mut stmts =
        vec![Stmt::Assign { lhs: LValue::name(acc), op: AssignOp::Set, rhs: Expr::Real(0.0) }];
    for f in factors {
        stmts.push(factor_ll_stmt(f, acc));
    }
    Stmt::seq(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_density::DensityModel;
    use augur_lang::{parse, typecheck};

    fn gmm() -> DensityModel {
        let src = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
            param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
            param z[n] ~ Categorical(pis) for n <- 0 until N ;
            data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
        }"#;
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn factor_ll_reifies_comprehension_as_atmpar_loop() {
        let dm = gmm();
        let s = factor_ll_stmt(&dm.factors[2], "__ll");
        let p = crate::il::pretty_stmt(&s, 0);
        assert!(p.contains("loop AtmPar (n <- 0 until N)"), "{p}");
        assert!(p.contains("__ll += MvNormal(mu[z[n]], Sigma).ll(x[n]);"), "{p}");
    }

    #[test]
    fn indicators_become_guards() {
        let dm = gmm();
        let cond = augur_density::conditional(&dm, &["mu"]);
        let lik = cond.likelihoods().next().unwrap();
        let s = factor_ll_stmt(&lik.factor, "__ll");
        let p = crate::il::pretty_stmt(&s, 0);
        assert!(p.contains("if (k == z[n])"), "{p}");
        assert!(p.contains("loop AtmPar (k <- 0 until K)"), "{p}");
    }

    #[test]
    fn bernoulli_sigmoid_is_stabilized() {
        let src = r#"(lambda, N, D, x) => {
            param theta[j] ~ Normal(0.0, lambda) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta))) for n <- 0 until N ;
        }"#;
        let dm =
            DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap();
        let (dist, args) = stabilized_atom(&dm.factors[1]);
        assert_eq!(dist, DistKind::BernoulliLogit);
        assert_eq!(format!("{}", args[0]), "dot(x[n], theta)");
    }

    #[test]
    fn ll_body_resets_accumulator() {
        let dm = gmm();
        let refs: Vec<&augur_density::Factor> = dm.factors.iter().collect();
        let body = factors_ll_body(&refs, "__ll");
        let p = crate::il::pretty_stmt(&body, 0);
        assert!(p.starts_with("__ll = 0.0;"), "{p}");
        assert_eq!(p.matches("loop AtmPar").count(), 3);
    }
}
