//! The Low-- memory-explication pass (paper §5.2).
//!
//! "Primitives such as vector addition that produce a result that requires
//! allocation will be converted into a side-effecting primitive that
//! updates an explicitly allocated location. These functional primitives
//! made the initial lowering step from model and query into algorithm
//! tractable and can be removed at this step."
//!
//! This pass hoists every compound-valued [`OpN`] expression out of the
//! statement that contains it into a `tmp = op(...)` assignment targeting
//! a planned buffer, leaving only variable references behind. Temporaries
//! hoisted inside parallel loops are planned [`AllocKind::ThreadLocal`].
//! Size inference derives each temporary's shape from its operands.

use augur_density::DExpr;
use augur_dist::DistKind;
use augur_lang::ast::Builtin;

use crate::il::{AssignOp, Expr, LValue, OpN, Stmt};
use crate::shape::{AllocDecl, ShapeSpec, SizeExpr};
use crate::{LowerError, LoweredModel};

/// Applies the pass to a whole lowered model, planning the temporaries it
/// introduces.
///
/// Results are unchanged (the engine evaluates the hoisted assignments in
/// the same order the functional expressions evaluated); what changes is
/// that every allocation is now a named, planned buffer — the Low-- form
/// proper.
///
/// # Errors
///
/// Returns [`LowerError::UnsupportedAd`]-style errors only for operand
/// shapes the size inference cannot express (not reachable from the
/// generators in this crate).
pub fn make_memory_explicit(lowered: &mut LoweredModel) -> Result<usize, LowerError> {
    let mut hoisted_total = 0;
    let mut new_allocs = Vec::new();
    for p in &mut lowered.procs {
        let mut ctx = Hoister {
            proc_name: p.name.clone(),
            counter: 0,
            allocs: Vec::new(),
            in_loop: 0,
        };
        let body = std::mem::replace(&mut p.body, Stmt::nop());
        p.body = ctx.stmt(body)?;
        // `ret` expressions are scalar; ops cannot appear there.
        hoisted_total += ctx.counter;
        new_allocs.extend(ctx.allocs);
    }
    lowered.allocs.extend(new_allocs);
    Ok(hoisted_total)
}

struct Hoister {
    proc_name: String,
    counter: usize,
    allocs: Vec<AllocDecl>,
    in_loop: usize,
}

impl Hoister {
    fn stmt(&mut self, s: Stmt) -> Result<Stmt, LowerError> {
        Ok(match s {
            Stmt::Seq(ss) => {
                let mut out = Vec::with_capacity(ss.len());
                for t in ss {
                    out.push(self.stmt(t)?);
                }
                Stmt::Seq(out)
            }
            Stmt::Assign { lhs, op, rhs } => {
                let mut pre = Vec::new();
                let rhs = self.expr(rhs, &mut pre)?;
                wrap(pre, Stmt::Assign { lhs, op, rhs })
            }
            Stmt::If { cond, then, els } => Stmt::If {
                cond,
                then: Box::new(self.stmt(*then)?),
                els: match els {
                    Some(e) => Some(Box::new(self.stmt(*e)?)),
                    None => None,
                },
            },
            Stmt::Loop { kind, var, lo, hi, body } => {
                self.in_loop += 1;
                let body = self.stmt(*body)?;
                self.in_loop -= 1;
                Stmt::Loop { kind, var, lo, hi, body: Box::new(body) }
            }
            Stmt::Sample { lhs, dist, args } => {
                let mut pre = Vec::new();
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    new_args.push(self.expr(a, &mut pre)?);
                }
                wrap(pre, Stmt::Sample { lhs, dist, args: new_args })
            }
            Stmt::SampleLogits { lhs, weights } => {
                let mut pre = Vec::new();
                let weights = self.expr(weights, &mut pre)?;
                wrap(pre, Stmt::SampleLogits { lhs, weights })
            }
        })
    }

    /// Rewrites an expression, hoisting compound-valued ops into `pre`.
    fn expr(&mut self, e: Expr, pre: &mut Vec<Stmt>) -> Result<Expr, LowerError> {
        Ok(match e {
            Expr::Op(op, args) => {
                let mut new_args = Vec::with_capacity(args.len());
                for a in args {
                    new_args.push(self.expr(a, pre)?);
                }
                let shape = op_shape(op, &new_args)?;
                let name = format!("{}_tmp{}", self.proc_name, self.counter);
                self.counter += 1;
                let alloc = if self.in_loop > 0 {
                    AllocDecl::thread_local(&name, shape)
                } else {
                    AllocDecl::shared(&name, shape)
                };
                self.allocs.push(alloc);
                // tmp = op(args) — the side-effecting primitive
                pre.push(Stmt::Assign {
                    lhs: LValue::name(&name),
                    op: AssignOp::Set,
                    rhs: Expr::Op(op, new_args),
                });
                Expr::var(name)
            }
            Expr::Index(a, b) => Expr::Index(
                Box::new(self.expr(*a, pre)?),
                Box::new(self.expr(*b, pre)?),
            ),
            Expr::Binop(op, a, b) => Expr::Binop(
                op,
                Box::new(self.expr(*a, pre)?),
                Box::new(self.expr(*b, pre)?),
            ),
            Expr::Neg(a) => Expr::Neg(Box::new(self.expr(*a, pre)?)),
            Expr::Call(f, args) => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.expr(a, pre)?);
                }
                Expr::Call(f, out)
            }
            Expr::DistLl { dist, args, point } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.expr(a, pre)?);
                }
                let point = Box::new(self.expr(*point, pre)?);
                Expr::DistLl { dist, args: out, point }
            }
            Expr::DistGradParam { dist, i, args, point } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.expr(a, pre)?);
                }
                let point = Box::new(self.expr(*point, pre)?);
                Expr::DistGradParam { dist, i, args: out, point }
            }
            Expr::DistGradPoint { dist, args, point } => {
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    out.push(self.expr(a, pre)?);
                }
                let point = Box::new(self.expr(*point, pre)?);
                Expr::DistGradPoint { dist, args: out, point }
            }
            leaf => leaf,
        })
    }
}

fn wrap(mut pre: Vec<Stmt>, last: Stmt) -> Stmt {
    if pre.is_empty() {
        last
    } else {
        pre.push(last);
        Stmt::Seq(pre)
    }
}

/// Shape of an op's result, in terms of its (already-hoisted) operands.
fn op_shape(op: OpN, args: &[Expr]) -> Result<ShapeSpec, LowerError> {
    let vec_of = |e: &Expr| -> Result<ShapeSpec, LowerError> {
        Ok(ShapeSpec::Vec(SizeExpr::LenOf(to_dexpr(e)?)))
    };
    let mat_of = |e: &Expr| -> Result<ShapeSpec, LowerError> {
        Ok(ShapeSpec::Mat(SizeExpr::DimOf(to_dexpr(e)?)))
    };
    Ok(match op {
        OpN::VecAdd | OpN::VecSub => vec_of(&args[0])?,
        OpN::VecScale => vec_of(&args[1])?,
        OpN::MatAdd | OpN::MatInv => mat_of(&args[0])?,
        OpN::MatScale => mat_of(&args[1])?,
        OpN::MatVec => {
            // result length = matrix dimension
            ShapeSpec::Vec(SizeExpr::DimOf(to_dexpr(&args[0])?))
        }
        OpN::OuterSub => {
            // (a − b)(a − b)ᵀ: square in len(a)
            let d = to_dexpr(&args[0])?;
            ShapeSpec::Mat(SizeExpr::LenOf(d))
        }
    })
}

/// Converts the shape-relevant fragment of a Low expression back into a
/// model expression so size inference can evaluate it at setup time.
fn to_dexpr(e: &Expr) -> Result<DExpr, LowerError> {
    Ok(match e {
        Expr::Var(n) => DExpr::var(n),
        Expr::Int(v) => DExpr::Int(*v),
        Expr::Real(v) => DExpr::Real(*v),
        Expr::Index(a, b) => DExpr::index(to_dexpr(a)?, to_dexpr(b)?),
        Expr::Binop(op, a, b) => {
            DExpr::Binop(*op, Box::new(to_dexpr(a)?), Box::new(to_dexpr(b)?))
        }
        Expr::Neg(a) => DExpr::Neg(Box::new(to_dexpr(a)?)),
        Expr::Call(f, args) => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(to_dexpr(a)?);
            }
            DExpr::Call(*f, out)
        }
        other => {
            return Err(LowerError::UnsupportedAd {
                expr: format!("size inference over {other:?}"),
            })
        }
    })
}

// Re-exported for the doc comment above; silences the unused-import lint
// when the crate is built without this pass engaged.
const _: Option<(DistKind, Builtin)> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use augur_kernel::{heuristic_schedule, plan};
    use augur_lang::{parse, typecheck};

    const HGMM: &str = r#"(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
        param pi ~ Dirichlet(alpha) ;
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param Sigma[k] ~ InvWishart(nu, Psi) for k <- 0 until K ;
        param z[n] ~ Categorical(pi) for n <- 0 until N ;
        data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]]) for n <- 0 until N ;
    }"#;

    fn lower_hgmm() -> LoweredModel {
        let dm = augur_density::DensityModel::from_typed(
            &typecheck(&parse(HGMM).unwrap()).unwrap(),
        )
        .unwrap();
        let sched = heuristic_schedule(&dm).unwrap();
        crate::lower(&dm, &plan(&dm, &sched).unwrap()).unwrap()
    }

    #[test]
    fn pass_hoists_every_functional_primitive() {
        let mut lm = lower_hgmm();
        let before_allocs = lm.allocs.len();
        let hoisted = make_memory_explicit(&mut lm).unwrap();
        assert!(hoisted > 0, "the MvNormal posterior uses mat_inv/mat_vec");
        assert_eq!(lm.allocs.len(), before_allocs + hoisted);
        // no Op expression survives in any statement's value position
        // except as the top-level rhs of its own temp assignment
        fn check_expr(e: &Expr, at_top: bool) {
            match e {
                Expr::Op(_, args) => {
                    assert!(at_top, "nested functional primitive survived: {e:?}");
                    for a in args {
                        check_expr(a, false);
                    }
                }
                Expr::Index(a, b) | Expr::Binop(_, a, b) => {
                    check_expr(a, false);
                    check_expr(b, false);
                }
                Expr::Neg(a) | Expr::Len(a) => check_expr(a, false),
                Expr::Call(_, args) => args.iter().for_each(|a| check_expr(a, false)),
                Expr::DistLl { args, point, .. }
                | Expr::DistGradParam { args, point, .. }
                | Expr::DistGradPoint { args, point, .. } => {
                    args.iter().for_each(|a| check_expr(a, false));
                    check_expr(point, false);
                }
                _ => {}
            }
        }
        fn check_stmt(s: &Stmt) {
            match s {
                Stmt::Seq(ss) => ss.iter().for_each(check_stmt),
                Stmt::Assign { rhs, .. } => check_expr(rhs, true),
                Stmt::If { then, els, .. } => {
                    check_stmt(then);
                    if let Some(e) = els {
                        check_stmt(e);
                    }
                }
                Stmt::Loop { body, .. } => check_stmt(body),
                Stmt::Sample { args, .. } => args.iter().for_each(|a| check_expr(a, false)),
                Stmt::SampleLogits { weights, .. } => check_expr(weights, false),
            }
        }
        for p in &lm.procs {
            check_stmt(&p.body);
        }
    }

    #[test]
    fn temporaries_in_loops_are_thread_local() {
        let mut lm = lower_hgmm();
        let before = lm.allocs.len();
        make_memory_explicit(&mut lm).unwrap();
        // the posterior-sampling loop hoists per-slice matrix temps
        let loop_temps: Vec<_> = lm.allocs[before..]
            .iter()
            .filter(|a| a.kind == crate::shape::AllocKind::ThreadLocal)
            .collect();
        assert!(!loop_temps.is_empty(), "per-slice temporaries should be thread-local");
    }

    #[test]
    fn emitted_code_shows_explicit_temporaries() {
        let mut lm = lower_hgmm();
        make_memory_explicit(&mut lm).unwrap();
        let gibbs_mu = lm.procs.iter().find(|p| p.name == "u1_gibbs").unwrap();
        let s = crate::il::pretty_proc(gibbs_mu);
        // mat_inv now lands in a named temporary before the sample
        assert!(s.contains("u1_gibbs_tmp"), "{s}");
        assert!(s.contains("= mat_inv(Sigma_0);") || s.contains("= mat_inv(Sigma[k]);"), "{s}");
    }
}
