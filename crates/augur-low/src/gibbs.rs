//! Gibbs (`FC`) update code generation (paper §4.4).
//!
//! Two flavours:
//!
//! * **conjugate** — one generator per conjugacy relation: reset the
//!   sufficient statistics, accumulate them with an `AtmPar` loop over the
//!   likelihood (this is the "traversing the involved variables and
//!   computing some simple statistic"), then sample every target slice
//!   from the closed-form posterior in a `Par` loop;
//! * **finite-sum** — for discrete variables: enumerate the support,
//!   score each candidate against the conditional's factors, and draw from
//!   the normalized weights (§4.4's "directly sums over the support").

use augur_density::conjugacy::{ConjugacyMatch, SupportSize};
use augur_density::{Comp, Conditional, DExpr};
use augur_dist::conjugacy::Relation;
use augur_dist::DistKind;

use crate::from_density::{lower_expr, stabilized_atom, wrap_comps};
use crate::il::{AssignOp, Expr, LValue, LoopKind, OpN, ProcDecl, Stmt};
use crate::shape::{AllocDecl, ShapeSpec, SizeExpr};
use crate::LowerError;

/// The code generated for one Gibbs update.
#[derive(Debug, Clone)]
pub struct GibbsCode {
    /// Buffers the update needs (sufficient statistics or weight vectors).
    pub allocs: Vec<AllocDecl>,
    /// The update procedure; running it resamples the target in place.
    pub proc_: ProcDecl,
}

/// Generates a conjugate Gibbs update for `cond` matched by `m`.
///
/// # Errors
///
/// Returns [`LowerError`] when a likelihood's fixed parameters are not
/// constant on target slices (a precision loss the structural analysis
/// cannot repair).
pub fn gen_conjugate(
    uidx: usize,
    cond: &Conditional,
    m: &ConjugacyMatch,
) -> Result<GibbsCode, LowerError> {
    let target = &cond.targets[0];
    assert!(
        cond.target_comps.len() <= 1,
        "conjugate targets have at most one comprehension level"
    );
    let slice = cond.target_comps.first();
    let prefix = format!("u{uidx}");
    let mut allocs = Vec::new();
    let mut stmts = Vec::new();

    // Prior parameters, lowered once.
    let prior_args: Vec<Expr> = m.prior_args.iter().map(lower_expr).collect();

    // --- 1. declare + reset sufficient statistics (one set per term) ---
    let stats = stat_layout(m);
    for (t, term_stats) in stats.iter().enumerate() {
        for st in term_stats {
            let name = stat_name(&prefix, t, st.tag);
            allocs.push(AllocDecl::shared(&name, wrap_table(slice, st.shape.clone())));
            stmts.push(reset_stat(&name, slice, &st.shape));
        }
    }

    // --- 2. accumulate statistics over each likelihood term ---
    for (t, lik) in m.likelihoods.iter().enumerate() {
        let cf = &cond.factors[lik.cond_factor_index];
        let f = &cf.factor;
        // Iteration space and slice index:
        //  * indicator form (categorical indexing): iterate the inner
        //    comps only; the slice index is the indicator's right side.
        //  * direct alignment: iterate all comps; the slice index is the
        //    target's own comprehension variable.
        let (iter_comps, idx): (&[Comp], Option<DExpr>) = if let Some((_, rhs)) = f.inds.first() {
            (&f.comps[1..], Some(rhs.clone()))
        } else if slice.is_some() {
            (&f.comps[..], Some(DExpr::var(&f.comps[0].var)))
        } else {
            (&f.comps[..], None)
        };
        let body = accumulate_stats(&prefix, t, m.relation, lik.target_pos, f, idx.as_ref())?;
        stmts.push(wrap_comps(iter_comps, LoopKind::AtmPar, body));
    }

    // --- 3. sample each target slice from the closed-form posterior ---
    let sample = posterior_sample(&prefix, m, cond, &prior_args, slice)?;
    match slice {
        Some(c) => stmts.push(Stmt::Loop {
            kind: LoopKind::Par,
            var: c.var.clone(),
            lo: lower_expr(&c.lo),
            hi: lower_expr(&c.hi),
            body: Box::new(sample),
        }),
        None => stmts.push(sample),
    }

    let _ = target;
    Ok(GibbsCode {
        allocs,
        proc_: ProcDecl { name: format!("{prefix}_gibbs"), body: Stmt::seq(stmts), ret: None },
    })
}

/// One sufficient statistic of a relation term.
struct StatSpec {
    tag: &'static str,
    shape: ShapeSpec,
}

/// Per-term sufficient statistics of each relation. Shapes are *per
/// slice*; [`wrap_table`] adds the slice dimension.
fn stat_layout(m: &ConjugacyMatch) -> Vec<Vec<StatSpec>> {
    m.likelihoods
        .iter()
        .map(|_| match m.relation {
            Relation::DirichletCategorical => vec![StatSpec {
                tag: "cnt",
                shape: ShapeSpec::Vec(SizeExpr::LenOf(m.prior_args[0].clone())),
            }],
            Relation::BetaBernoulli => vec![
                StatSpec { tag: "n1", shape: ShapeSpec::Scalar },
                StatSpec { tag: "n0", shape: ShapeSpec::Scalar },
            ],
            Relation::NormalNormalMean
            | Relation::GammaPoisson
            | Relation::GammaExponential => vec![
                StatSpec { tag: "cnt", shape: ShapeSpec::Scalar },
                StatSpec { tag: "sum", shape: ShapeSpec::Scalar },
            ],
            Relation::MvNormalMvNormalMean => vec![
                StatSpec { tag: "cnt", shape: ShapeSpec::Scalar },
                StatSpec {
                    tag: "sum",
                    shape: ShapeSpec::Vec(SizeExpr::LenOf(m.prior_args[0].clone())),
                },
            ],
            Relation::InvGammaNormalVar => vec![
                StatSpec { tag: "cnt", shape: ShapeSpec::Scalar },
                StatSpec { tag: "ssd", shape: ShapeSpec::Scalar },
            ],
            Relation::InvWishartMvNormalCov => vec![
                StatSpec { tag: "cnt", shape: ShapeSpec::Scalar },
                StatSpec {
                    tag: "scatter",
                    shape: ShapeSpec::Mat(SizeExpr::DimOf(m.prior_args[1].clone())),
                },
            ],
        })
        .collect()
}

fn stat_name(prefix: &str, term: usize, tag: &str) -> String {
    format!("{prefix}_t{term}_{tag}")
}

fn wrap_table(slice: Option<&Comp>, inner: ShapeSpec) -> ShapeSpec {
    match slice {
        Some(c) => {
            ShapeSpec::Table { rows: SizeExpr::Expr(c.hi.clone()), inner: Box::new(inner) }
        }
        None => inner,
    }
}

fn reset_stat(name: &str, slice: Option<&Comp>, _inner: &ShapeSpec) -> Stmt {
    // Broadcast store of 0.0 over the whole buffer (or the slice row).
    let zero = Stmt::Assign {
        lhs: LValue::name(name),
        op: AssignOp::Set,
        rhs: Expr::Real(0.0),
    };
    // Whole-buffer broadcast works regardless of slicing.
    let _ = slice;
    zero
}

/// Builds the per-datum statistic increments for one likelihood term.
fn accumulate_stats(
    prefix: &str,
    term: usize,
    relation: Relation,
    target_pos: usize,
    f: &augur_density::Factor,
    idx: Option<&DExpr>,
) -> Result<Stmt, LowerError> {
    let stat_lv = |tag: &str, extra: Option<Expr>| {
        let mut indices = Vec::new();
        if let Some(i) = idx {
            indices.push(lower_expr(i));
        }
        if let Some(e) = extra {
            indices.push(e);
        }
        LValue { var: stat_name(prefix, term, tag), indices }
    };
    let inc = |lhs: LValue, rhs: Expr| Stmt::Assign { lhs, op: AssignOp::Inc, rhs };
    let pt = lower_expr(&f.point);
    let one = Expr::Real(1.0);

    // The "other" likelihood parameter (mean for variance updates, …),
    // used inside deviation statistics.
    let other_arg = |pos: usize| -> Expr { lower_expr(&f.args[pos]) };

    let stmt = match relation {
        Relation::DirichletCategorical => {
            // cnt[idx][point] += 1
            inc(stat_lv("cnt", Some(pt)), one)
        }
        Relation::BetaBernoulli => Stmt::seq(vec![
            inc(stat_lv("n1", None), pt.clone()),
            inc(stat_lv("n0", None), Expr::Binop(
                crate::il::BinOp::Sub,
                Box::new(one),
                Box::new(pt),
            )),
        ]),
        Relation::NormalNormalMean
        | Relation::MvNormalMvNormalMean
        | Relation::GammaPoisson
        | Relation::GammaExponential => Stmt::seq(vec![
            inc(stat_lv("cnt", None), one),
            inc(stat_lv("sum", None), pt),
        ]),
        Relation::InvGammaNormalVar => {
            let mean = other_arg(1 - target_pos);
            let dev = Expr::Binop(crate::il::BinOp::Sub, Box::new(pt), Box::new(mean));
            Stmt::seq(vec![
                inc(stat_lv("cnt", None), one),
                inc(
                    stat_lv("ssd", None),
                    Expr::Binop(crate::il::BinOp::Mul, Box::new(dev.clone()), Box::new(dev)),
                ),
            ])
        }
        Relation::InvWishartMvNormalCov => {
            let mean = other_arg(1 - target_pos);
            Stmt::seq(vec![
                inc(stat_lv("cnt", None), one),
                inc(stat_lv("scatter", None), Expr::Op(OpN::OuterSub, vec![pt, mean])),
            ])
        }
    };
    Ok(stmt)
}

/// Builds the posterior sampling statement for one target slice.
fn posterior_sample(
    prefix: &str,
    m: &ConjugacyMatch,
    cond: &Conditional,
    prior_args: &[Expr],
    slice: Option<&Comp>,
) -> Result<Stmt, LowerError> {
    let target = &cond.targets[0];
    let slice_var = slice.map(|c| c.var.clone());
    let stat = |term: usize, tag: &str| -> Expr {
        let base = Expr::var(stat_name(prefix, term, tag));
        match &slice_var {
            Some(v) => Expr::index(base, Expr::var(v)),
            None => base,
        }
    };
    let lhs = LValue {
        var: target.clone(),
        indices: slice_var.iter().map(|v| Expr::var(v.clone())).collect(),
    };
    // Fold helper: sums an expression over all likelihood terms.
    let terms = m.likelihoods.len();
    let sum_terms = |mk: &dyn Fn(usize) -> Expr| -> Expr {
        let mut acc = mk(0);
        for t in 1..terms {
            acc = add(acc, mk(t));
        }
        acc
    };

    // The fixed likelihood parameter (e.g. the known variance), evaluated
    // on the current slice: inside an indicator factor the index
    // expression equals the slice variable, so substitute it.
    let fixed_arg = |term: usize, pos: usize| -> Result<Expr, LowerError> {
        let cf = &cond.factors[m.likelihoods[term].cond_factor_index];
        let f = &cf.factor;
        let mut e = f.args[pos].clone();
        if let (Some((lhs_ind, rhs_ind)), Some(sv)) = (f.inds.first(), &slice_var) {
            let _ = lhs_ind;
            e = e.subst_expr(rhs_ind, &DExpr::var(sv));
        }
        // After substitution the expression must be slice-constant: free of
        // the factor's inner comprehension variables.
        for c in f.comps.iter().skip(if f.inds.is_empty() { 0 } else { 1 }) {
            let is_target_comp = slice.is_some_and(|tc| tc.var == c.var);
            if !is_target_comp && e.mentions(&c.var) {
                return Err(LowerError::NotSliceConstant {
                    update: prefix.to_owned(),
                    expr: format!("{e}"),
                    comp_var: c.var.clone(),
                });
            }
        }
        Ok(lower_expr(&e))
    };

    let stmt = match m.relation {
        Relation::DirichletCategorical => Stmt::Sample {
            lhs,
            dist: DistKind::Dirichlet,
            args: vec![sum_terms(&|t| {
                if t == 0 {
                    Expr::Op(OpN::VecAdd, vec![prior_args[0].clone(), stat(0, "cnt")])
                } else {
                    stat(t, "cnt")
                }
            })],
        },
        Relation::BetaBernoulli => Stmt::Sample {
            lhs,
            dist: DistKind::Beta,
            args: vec![
                add(prior_args[0].clone(), sum_terms(&|t| stat(t, "n1"))),
                add(prior_args[1].clone(), sum_terms(&|t| stat(t, "n0"))),
            ],
        },
        Relation::NormalNormalMean => {
            // prec = 1/var0 + Σ_t cnt_t / var_t ; post_var = 1/prec ;
            // post_mu = post_var * (mu0/var0 + Σ_t sum_t / var_t)
            let mut prec = div(Expr::Real(1.0), prior_args[1].clone());
            let mut num = div(prior_args[0].clone(), prior_args[1].clone());
            for t in 0..terms {
                let var_t = fixed_arg(t, 1 - m.likelihoods[t].target_pos)?;
                prec = add(prec, div(stat(t, "cnt"), var_t.clone()));
                num = add(num, div(stat(t, "sum"), var_t));
            }
            let post_var = div(Expr::Real(1.0), prec);
            let post_mu = mul(post_var.clone(), num);
            Stmt::Sample { lhs, dist: DistKind::Normal, args: vec![post_mu, post_var] }
        }
        Relation::MvNormalMvNormalMean => {
            // Λ = Σ0⁻¹ + Σ_t cnt_t Σ_t⁻¹ ; post_cov = Λ⁻¹ ;
            // post_mu = post_cov (Σ0⁻¹ mu0 + Σ_t Σ_t⁻¹ sum_t)
            let prior_prec = Expr::Op(OpN::MatInv, vec![prior_args[1].clone()]);
            let mut lam = prior_prec.clone();
            let mut rhs = Expr::Op(OpN::MatVec, vec![prior_prec, prior_args[0].clone()]);
            for t in 0..terms {
                let cov_t = fixed_arg(t, 1 - m.likelihoods[t].target_pos)?;
                let prec_t = Expr::Op(OpN::MatInv, vec![cov_t]);
                lam = Expr::Op(OpN::MatAdd, vec![
                    lam,
                    Expr::Op(OpN::MatScale, vec![stat(t, "cnt"), prec_t.clone()]),
                ]);
                rhs = Expr::Op(OpN::VecAdd, vec![
                    rhs,
                    Expr::Op(OpN::MatVec, vec![prec_t, stat(t, "sum")]),
                ]);
            }
            let post_cov = Expr::Op(OpN::MatInv, vec![lam]);
            let post_mu = Expr::Op(OpN::MatVec, vec![post_cov.clone(), rhs]);
            Stmt::Sample { lhs, dist: DistKind::MvNormal, args: vec![post_mu, post_cov] }
        }
        Relation::InvGammaNormalVar => Stmt::Sample {
            lhs,
            dist: DistKind::InvGamma,
            args: vec![
                add(prior_args[0].clone(), mul(Expr::Real(0.5), sum_terms(&|t| stat(t, "cnt")))),
                add(prior_args[1].clone(), mul(Expr::Real(0.5), sum_terms(&|t| stat(t, "ssd")))),
            ],
        },
        Relation::InvWishartMvNormalCov => {
            let mut psi = prior_args[1].clone();
            for t in 0..terms {
                psi = Expr::Op(OpN::MatAdd, vec![psi, stat(t, "scatter")]);
            }
            Stmt::Sample {
                lhs,
                dist: DistKind::InvWishart,
                args: vec![add(prior_args[0].clone(), sum_terms(&|t| stat(t, "cnt"))), psi],
            }
        }
        Relation::GammaPoisson => Stmt::Sample {
            lhs,
            dist: DistKind::Gamma,
            args: vec![
                add(prior_args[0].clone(), sum_terms(&|t| stat(t, "sum"))),
                add(prior_args[1].clone(), sum_terms(&|t| stat(t, "cnt"))),
            ],
        },
        Relation::GammaExponential => Stmt::Sample {
            lhs,
            dist: DistKind::Gamma,
            args: vec![
                add(prior_args[0].clone(), sum_terms(&|t| stat(t, "cnt"))),
                add(prior_args[1].clone(), sum_terms(&|t| stat(t, "sum"))),
            ],
        },
    };
    Ok(stmt)
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::Binop(crate::il::BinOp::Add, Box::new(a), Box::new(b))
}
fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Binop(crate::il::BinOp::Mul, Box::new(a), Box::new(b))
}
fn div(a: Expr, b: Expr) -> Expr {
    Expr::Binop(crate::il::BinOp::Div, Box::new(a), Box::new(b))
}

/// Generates a finite-sum Gibbs update for a discrete variable.
///
/// Two lowerings:
///
/// * **aligned** (mixture pattern) — every conditional factor decomposes
///   over the target's slices, so candidates are scored with the slice
///   substituted symbolically and all slices resample in parallel;
/// * **mutate-and-score** — some factor uses the variable whole (e.g. the
///   binary hidden units of a sigmoid belief network flowing through
///   `dot`), so slices are *not* conditionally independent: the generated
///   code walks slices sequentially, writes each candidate into the state,
///   scores the full conditional, and draws from the log weights. This is
///   single-site Gibbs — more expensive, still exact.
pub fn gen_finite_sum(
    uidx: usize,
    cond: &Conditional,
    support: &SupportSize,
) -> Result<GibbsCode, LowerError> {
    let target = &cond.targets[0];
    let prefix = format!("u{uidx}");
    let cand = format!("{prefix}_c");
    let wname = format!("{prefix}_w");

    let support_expr = match support {
        SupportSize::VecLen(e) => Expr::Len(Box::new(lower_expr(e))),
        SupportSize::Fixed(n) => Expr::Int(*n),
    };
    let support_size = match support {
        SupportSize::VecLen(e) => SizeExpr::LenOf(e.clone()),
        SupportSize::Fixed(n) => SizeExpr::Const(*n),
    };
    let allocs = vec![AllocDecl::thread_local(&wname, ShapeSpec::Vec(support_size))];

    // The target slice expression, e.g. `z[n]` or `z[d][j]`.
    let mut chain = DExpr::var(target);
    for c in &cond.target_comps {
        chain = DExpr::index(chain, DExpr::var(&c.var));
    }

    if cond.fully_aligned() {
        gen_finite_sum_aligned(cond, &prefix, &cand, &wname, support_expr, allocs, &chain)
    } else {
        gen_finite_sum_sequential(cond, &prefix, &cand, &wname, support_expr, allocs)
    }
}

/// The parallel, substitution-based lowering (mixture models).
#[allow(clippy::too_many_arguments)]
fn gen_finite_sum_aligned(
    cond: &Conditional,
    prefix: &str,
    cand: &str,
    wname: &str,
    support_expr: Expr,
    allocs: Vec<AllocDecl>,
    chain: &DExpr,
) -> Result<GibbsCode, LowerError> {
    let target = &cond.targets[0];
    // Candidate scoring: w[c] = Σ_factors ll(factor with chain := c).
    let mut score = vec![Stmt::Assign {
        lhs: LValue { var: wname.to_owned(), indices: vec![Expr::var(cand)] },
        op: AssignOp::Set,
        rhs: Expr::Real(0.0),
    }];
    for cf in &cond.factors {
        let f = &cf.factor;
        // Substitute the candidate for the target slice throughout.
        let subst = |e: &DExpr| e.subst_expr(chain, &DExpr::var(cand));
        let sf = augur_density::Factor {
            comps: f.comps.clone(),
            inds: f.inds.iter().map(|(l, r)| (subst(l), subst(r))).collect(),
            dist: f.dist,
            args: f.args.iter().map(&subst).collect(),
            point: subst(&f.point),
        };
        let atom = {
            let (dist, args) = stabilized_atom(&sf);
            Expr::DistLl {
                dist,
                args: args.iter().map(lower_expr).collect(),
                point: Box::new(lower_expr(&sf.point)),
            }
        };
        let body = crate::from_density::wrap_inds(
            &sf,
            Stmt::Assign {
                lhs: LValue { var: wname.to_owned(), indices: vec![Expr::var(cand)] },
                op: AssignOp::Inc,
                rhs: atom,
            },
        );
        // Inner comprehensions beyond the target's own (rare) run
        // sequentially inside the candidate loop.
        let inner = &f.comps[cond.target_comps.len()..];
        score.push(wrap_comps(inner, LoopKind::Seq, body));
    }

    let candidate_loop = Stmt::Loop {
        kind: LoopKind::Seq,
        var: cand.to_owned(),
        lo: Expr::Int(0),
        hi: support_expr,
        body: Box::new(Stmt::seq(score)),
    };
    let draw = Stmt::SampleLogits {
        lhs: LValue {
            var: target.clone(),
            indices: cond.target_comps.iter().map(|c| Expr::var(&c.var)).collect(),
        },
        weights: Expr::var(wname),
    };
    let body = wrap_comps(
        &cond.target_comps,
        LoopKind::Par,
        Stmt::seq(vec![candidate_loop, draw]),
    );
    Ok(GibbsCode {
        allocs,
        proc_: ProcDecl { name: format!("{prefix}_gibbs"), body, ret: None },
    })
}

/// The sequential mutate-and-score lowering (whole-variable likelihood
/// dependence, e.g. sigmoid belief networks).
fn gen_finite_sum_sequential(
    cond: &Conditional,
    prefix: &str,
    cand: &str,
    wname: &str,
    support_expr: Expr,
    allocs: Vec<AllocDecl>,
) -> Result<GibbsCode, LowerError> {
    let target = &cond.targets[0];
    let slice_lv = LValue {
        var: target.clone(),
        indices: cond.target_comps.iter().map(|c| Expr::var(&c.var)).collect(),
    };
    // Candidate loop body: write the candidate into the state, then score
    // every conditional factor *whole*.
    let mut score = vec![
        Stmt::Assign { lhs: slice_lv.clone(), op: AssignOp::Set, rhs: Expr::var(cand) },
        Stmt::Assign {
            lhs: LValue { var: wname.to_owned(), indices: vec![Expr::var(cand)] },
            op: AssignOp::Set,
            rhs: Expr::Real(0.0),
        },
    ];
    for cf in &cond.factors {
        let f = &cf.factor;
        let atom = {
            let (dist, args) = stabilized_atom(f);
            Expr::DistLl {
                dist,
                args: args.iter().map(lower_expr).collect(),
                point: Box::new(lower_expr(&f.point)),
            }
        };
        let body = crate::from_density::wrap_inds(
            f,
            Stmt::Assign {
                lhs: LValue { var: wname.to_owned(), indices: vec![Expr::var(cand)] },
                op: AssignOp::Inc,
                rhs: atom,
            },
        );
        score.push(wrap_comps(&f.comps, LoopKind::Seq, body));
    }
    let candidate_loop = Stmt::Loop {
        kind: LoopKind::Seq,
        var: cand.to_owned(),
        lo: Expr::Int(0),
        hi: support_expr,
        body: Box::new(Stmt::seq(score)),
    };
    let draw = Stmt::SampleLogits { lhs: slice_lv, weights: Expr::var(wname) };
    // Slices are coupled through the whole-variable use: strictly
    // sequential single-site Gibbs.
    let body = wrap_comps(
        &cond.target_comps,
        LoopKind::Seq,
        Stmt::seq(vec![candidate_loop, draw]),
    );
    Ok(GibbsCode {
        allocs,
        proc_: ProcDecl { name: format!("{prefix}_gibbs"), body, ret: None },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_density::conjugacy::{detect, discrete_support};
    use augur_density::{conditional, DensityModel};
    use augur_lang::{parse, typecheck};

    fn build(src: &str) -> DensityModel {
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    const HGMM: &str = r#"(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
        param pi ~ Dirichlet(alpha) ;
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param Sigma[k] ~ InvWishart(nu, Psi) for k <- 0 until K ;
        param z[n] ~ Categorical(pi) for n <- 0 until N ;
        data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]]) for n <- 0 until N ;
    }"#;

    #[test]
    fn mu_gibbs_has_reset_accumulate_sample_structure() {
        let dm = build(HGMM);
        let cond = conditional(&dm, &["mu"]);
        let m = detect(&dm, &cond).unwrap();
        let code = gen_conjugate(1, &cond, &m).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        // stats reset
        assert!(p.contains("u1_t0_cnt = 0.0;"), "{p}");
        // atomic accumulation indexed by z[n]
        assert!(p.contains("loop AtmPar (n <- 0 until N)"), "{p}");
        assert!(p.contains("u1_t0_cnt[z[n]] += 1.0;"), "{p}");
        assert!(p.contains("u1_t0_sum[z[n]] += y[n];"), "{p}");
        // per-slice posterior sampling
        assert!(p.contains("loop Par (k <- 0 until K)"), "{p}");
        assert!(p.contains("mu[k] = MvNormal("), "{p}");
        // the slice covariance Sigma[z[n]] became Sigma[k]
        assert!(p.contains("mat_inv(Sigma[k])"), "{p}");
        assert_eq!(code.allocs.len(), 2);
    }

    #[test]
    fn sigma_gibbs_accumulates_scatter() {
        let dm = build(HGMM);
        let cond = conditional(&dm, &["Sigma"]);
        let m = detect(&dm, &cond).unwrap();
        let code = gen_conjugate(2, &cond, &m).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        assert!(p.contains("u2_t0_scatter[z[n]] += outer_sub(y[n], mu[z[n]]);"), "{p}");
        assert!(p.contains("Sigma[k] = InvWishart("), "{p}");
        assert!(p.contains("mat_add(Psi, u2_t0_scatter[k])"), "{p}");
    }

    #[test]
    fn pi_gibbs_is_unsliced_dirichlet() {
        let dm = build(HGMM);
        let cond = conditional(&dm, &["pi"]);
        let m = detect(&dm, &cond).unwrap();
        let code = gen_conjugate(0, &cond, &m).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        assert!(p.contains("u0_t0_cnt[z[n]] += 1.0;"), "{p}");
        assert!(p.contains("pi = Dirichlet(vec_add(alpha, u0_t0_cnt)).samp;"), "{p}");
        // no Par loop around the sample — scalar simplex target
        assert!(!p.contains("pi[k]"), "{p}");
    }

    #[test]
    fn z_finite_sum_enumerates_support() {
        let dm = build(HGMM);
        let cond = conditional(&dm, &["z"]);
        let sz = discrete_support(&dm, "z").unwrap();
        let code = gen_finite_sum(3, &cond, &sz).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        assert!(p.contains("loop Par (n <- 0 until N)"), "{p}");
        assert!(p.contains("loop Seq (u3_c <- 0 until len(pi))"), "{p}");
        // prior scored at the candidate
        assert!(p.contains("u3_w[u3_c] += Categorical(pi).ll(u3_c);"), "{p}");
        // likelihood scored with z[n] := candidate
        assert!(p.contains("MvNormal(mu[u3_c], Sigma[u3_c]).ll(y[n])"), "{p}");
        assert!(p.contains("z[n] = CategoricalLogits(u3_w).samp;"), "{p}");
        assert_eq!(code.allocs.len(), 1);
        assert_eq!(code.allocs[0].kind, crate::shape::AllocKind::ThreadLocal);
    }

    #[test]
    fn lda_theta_gibbs_uses_doc_slices() {
        let dm = build(
            r#"(K, D, alpha, beta, len) => {
            param theta[d] ~ Dirichlet(alpha) for d <- 0 until D ;
            param phi[k] ~ Dirichlet(beta) for k <- 0 until K ;
            param z[d][j] ~ Categorical(theta[d]) for d <- 0 until D, j <- 0 until len[d] ;
            data w[d][j] ~ Categorical(phi[z[d][j]]) for d <- 0 until D, j <- 0 until len[d] ;
        }"#,
        );
        let cond = conditional(&dm, &["theta"]);
        let m = detect(&dm, &cond).unwrap();
        let code = gen_conjugate(0, &cond, &m).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        // direct alignment: iterate d and j, counts indexed by d and z[d][j]
        assert!(p.contains("loop AtmPar (d <- 0 until D)"), "{p}");
        assert!(p.contains("loop AtmPar (j <- 0 until len[d])"), "{p}");
        assert!(p.contains("u0_t0_cnt[d][z[d][j]] += 1.0;"), "{p}");
        assert!(p.contains("theta[d] = Dirichlet(vec_add(alpha, u0_t0_cnt[d])).samp;"), "{p}");
    }

    #[test]
    fn lda_z_finite_sum_scores_both_factors() {
        let dm = build(
            r#"(K, D, alpha, beta, len) => {
            param theta[d] ~ Dirichlet(alpha) for d <- 0 until D ;
            param phi[k] ~ Dirichlet(beta) for k <- 0 until K ;
            param z[d][j] ~ Categorical(theta[d]) for d <- 0 until D, j <- 0 until len[d] ;
            data w[d][j] ~ Categorical(phi[z[d][j]]) for d <- 0 until D, j <- 0 until len[d] ;
        }"#,
        );
        let cond = conditional(&dm, &["z"]);
        let sz = discrete_support(&dm, "z").unwrap();
        let code = gen_finite_sum(2, &cond, &sz).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        assert!(p.contains("u2_w[u2_c] += Categorical(theta[d]).ll(u2_c);"), "{p}");
        assert!(p.contains("u2_w[u2_c] += Categorical(phi[u2_c]).ll(w[d][j]);"), "{p}");
        assert!(p.contains("z[d][j] = CategoricalLogits(u2_w).samp;"), "{p}");
    }

    #[test]
    fn scalar_normal_mean_posterior_formula() {
        let dm = build(
            r#"(N, tau2, s2) => {
            param m ~ Normal(5.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["m"]);
        let mt = detect(&dm, &cond).unwrap();
        let code = gen_conjugate(0, &cond, &mt).unwrap();
        let p = crate::il::pretty_proc(&code.proc_);
        assert!(p.contains("m = Normal("), "{p}");
        assert!(p.contains("(u0_t0_cnt / s2)"), "{p}");
        assert!(p.contains("(5.0 / tau2)"), "{p}");
    }
}
