//! Source-to-source reverse-mode automatic differentiation (paper §4.4,
//! Fig. 8).
//!
//! The adjoint of a density function is built directly from the Density IL:
//! every comprehension product becomes an `AtmPar` loop (parallel
//! comprehensions are order-independent, so no reversal stack is needed —
//! the optimization the paper highlights), and every atom contributes
//! `adj += adj_ll * dist.grad_i(...)` increments through the chain rule of
//! its argument expressions. Gradient accumulations are *atomic
//! increments*; whether they stay atomic or become a summation block is
//! decided later by the Blk-IL optimizer (§5.4).

use augur_density::{CondFactor, Conditional, DExpr};
use augur_lang::ast::{BinOp, Builtin};

use crate::from_density::{lower_expr, stabilized_atom, wrap_comps, wrap_inds};
use crate::il::{AssignOp, Expr, LValue, LoopKind, OpN, ProcDecl, Stmt};
use crate::shape::{AllocDecl, ShapeSpec};
use crate::LowerError;

/// The adjoint buffer name for a target variable.
pub fn adj_name(prefix: &str, var: &str) -> String {
    format!("{prefix}_adj_{var}")
}

/// Generates the gradient procedure for a conditional with respect to
/// `targets`, together with the adjoint buffers it writes (one per target,
/// shaped like the target).
///
/// # Errors
///
/// Returns [`LowerError::UnsupportedAd`] when an expression mentioning a
/// target falls outside the differentiable fragment.
pub fn gen_grad_proc(
    prefix: &str,
    proc_name: &str,
    cond: &Conditional,
    targets: &[String],
) -> Result<(Vec<AllocDecl>, ProcDecl), LowerError> {
    let mut allocs = Vec::new();
    let mut stmts = Vec::new();
    for t in targets {
        let name = adj_name(prefix, t);
        allocs.push(AllocDecl::shared(&name, ShapeSpec::LikeVar(t.clone())));
        // Reset: broadcast store of 0.0 over the whole adjoint buffer.
        stmts.push(Stmt::Assign {
            lhs: LValue::name(&name),
            op: AssignOp::Set,
            rhs: Expr::Real(0.0),
        });
    }
    for cf in &cond.factors {
        stmts.push(factor_adjoint(prefix, cf, targets)?);
    }
    Ok((
        allocs,
        ProcDecl { name: proc_name.to_owned(), body: Stmt::seq(stmts), ret: None },
    ))
}

/// The adjoint of one factor: loops, guards, and per-atom chain-rule
/// increments (Fig. 8b's `Π` rule composed with Fig. 8a's expression
/// rules).
fn factor_adjoint(
    prefix: &str,
    cf: &CondFactor,
    targets: &[String],
) -> Result<Stmt, LowerError> {
    let f = &cf.factor;
    let (dist, args) = stabilized_atom(f);
    let largs: Vec<Expr> = args.iter().map(lower_expr).collect();
    let lpoint = lower_expr(&f.point);

    let mut body = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if !mentions_any(arg, targets) {
            continue;
        }
        let seed = Expr::DistGradParam {
            dist,
            i,
            args: largs.clone(),
            point: Box::new(lpoint.clone()),
        };
        adj_expr(prefix, arg, seed, targets, &mut body)?;
    }
    if mentions_any(&f.point, targets) {
        let seed =
            Expr::DistGradPoint { dist, args: largs.clone(), point: Box::new(lpoint.clone()) };
        adj_expr(prefix, &f.point, seed, targets, &mut body)?;
    }
    let guarded = wrap_inds(f, Stmt::seq(body));
    Ok(wrap_comps(&f.comps, LoopKind::AtmPar, guarded))
}

fn mentions_any(e: &DExpr, targets: &[String]) -> bool {
    targets.iter().any(|t| e.mentions(t))
}

/// Root variable of an index chain, if the expression is one.
fn chain_root(e: &DExpr) -> Option<&str> {
    match e {
        DExpr::Var(n) => Some(n),
        DExpr::Index(base, _) => chain_root(base),
        _ => None,
    }
}

/// The Fig. 8a adjoint translation: pushes `seed` (the partial derivative
/// flowing into `e`) down to target leaves, emitting atomic increments.
fn adj_expr(
    prefix: &str,
    e: &DExpr,
    seed: Expr,
    targets: &[String],
    out: &mut Vec<Stmt>,
) -> Result<(), LowerError> {
    if !mentions_any(e, targets) {
        return Ok(()); // ∂e/∂target = 0 — nothing flows
    }
    // Leaf: an index chain rooted at a target → adj_t[idx…] += seed.
    if let Some(root) = chain_root(e) {
        if targets.iter().any(|t| t == root) {
            let mut indices = Vec::new();
            collect_chain_indices(e, &mut indices);
            out.push(Stmt::Assign {
                lhs: LValue { var: adj_name(prefix, root), indices },
                op: AssignOp::Inc,
                rhs: seed,
            });
            return Ok(());
        }
        // A chain rooted at a non-target that nevertheless mentions a
        // target can only do so through its *indices* (e.g. `mu[z[n]]`
        // when differentiating w.r.t. z) — discrete, no gradient flows.
        return Ok(());
    }
    match e {
        DExpr::Binop(BinOp::Add, a, b) => {
            adj_expr(prefix, a, seed.clone(), targets, out)?;
            adj_expr(prefix, b, seed, targets, out)
        }
        DExpr::Binop(BinOp::Sub, a, b) => {
            adj_expr(prefix, a, seed.clone(), targets, out)?;
            adj_expr(prefix, b, Expr::Neg(Box::new(seed)), targets, out)
        }
        DExpr::Binop(BinOp::Mul, a, b) => {
            adj_expr(prefix, a, mul(seed.clone(), lower_expr(b)), targets, out)?;
            adj_expr(prefix, b, mul(seed, lower_expr(a)), targets, out)
        }
        DExpr::Binop(BinOp::Div, a, b) => {
            adj_expr(prefix, a, div(seed.clone(), lower_expr(b)), targets, out)?;
            let lb = lower_expr(b);
            adj_expr(
                prefix,
                b,
                Expr::Neg(Box::new(div(mul(seed, lower_expr(a)), mul(lb.clone(), lb)))),
                targets,
                out,
            )
        }
        DExpr::Neg(a) => adj_expr(prefix, a, Expr::Neg(Box::new(seed)), targets, out),
        DExpr::Call(Builtin::Sigmoid, args) => {
            // σ'(x) = σ(x)(1 − σ(x))
            let s = Expr::Call(Builtin::Sigmoid, vec![lower_expr(&args[0])]);
            let deriv = mul(
                s.clone(),
                Expr::Binop(BinOp::Sub, Box::new(Expr::Real(1.0)), Box::new(s)),
            );
            adj_expr(prefix, &args[0], mul(seed, deriv), targets, out)
        }
        DExpr::Call(Builtin::Exp, args) => {
            let deriv = Expr::Call(Builtin::Exp, vec![lower_expr(&args[0])]);
            adj_expr(prefix, &args[0], mul(seed, deriv), targets, out)
        }
        DExpr::Call(Builtin::Log, args) => {
            adj_expr(prefix, &args[0], div(seed, lower_expr(&args[0])), targets, out)
        }
        DExpr::Call(Builtin::Sqrt, args) => {
            let deriv = div(
                Expr::Real(0.5),
                Expr::Call(Builtin::Sqrt, vec![lower_expr(&args[0])]),
            );
            adj_expr(prefix, &args[0], mul(seed, deriv), targets, out)
        }
        DExpr::Call(Builtin::Dot, args) => {
            // ∂(u·v)/∂u = v (and symmetrically): seed scales the other side.
            for (this, other) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                if !mentions_any(this, targets) {
                    continue;
                }
                let root = chain_root(this).ok_or_else(|| LowerError::UnsupportedAd {
                    expr: format!("{this}"),
                })?;
                if !targets.iter().any(|t| t == root) {
                    continue;
                }
                let mut indices = Vec::new();
                collect_chain_indices(this, &mut indices);
                out.push(Stmt::Assign {
                    lhs: LValue { var: adj_name(prefix, root), indices },
                    op: AssignOp::Inc,
                    rhs: Expr::Op(OpN::VecScale, vec![seed.clone(), lower_expr(other)]),
                });
            }
            Ok(())
        }
        other => Err(LowerError::UnsupportedAd { expr: format!("{other}") }),
    }
}

fn collect_chain_indices(e: &DExpr, out: &mut Vec<Expr>) {
    if let DExpr::Index(base, idx) = e {
        collect_chain_indices(base, out);
        out.push(lower_expr(idx));
    }
}

fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Binop(BinOp::Mul, Box::new(a), Box::new(b))
}
fn div(a: Expr, b: Expr) -> Expr {
    Expr::Binop(BinOp::Div, Box::new(a), Box::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_density::{conditional, DensityModel};
    use augur_lang::{parse, typecheck};

    fn build(src: &str) -> DensityModel {
        DensityModel::from_typed(&typecheck(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn gmm_mu_gradient_matches_paper_excerpt() {
        let dm = build(
            r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
            param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
            param z[n] ~ Categorical(pis) for n <- 0 until N ;
            data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["mu"]);
        let (allocs, p) =
            gen_grad_proc("g0", "g0_grad", &cond, &["mu".to_owned()]).unwrap();
        let s = crate::il::pretty_proc(&p);
        // the paper's §4.4 excerpt: an AtmPar loop over n incrementing
        // adj_mu[z[n]] with the mean-gradient of the likelihood
        assert!(s.contains("loop AtmPar (n <- 0 until N)"), "{s}");
        assert!(
            s.contains("g0_adj_mu[z[n]] += MvNormal(mu[z[n]], Sigma).grad2(x[n]);"),
            "{s}"
        );
        // prior contributes through its point
        assert!(
            s.contains("g0_adj_mu[k] += MvNormal(mu_0, Sigma_0).grad1(mu[k]);"),
            "{s}"
        );
        assert_eq!(allocs.len(), 1);
        assert!(matches!(allocs[0].shape, ShapeSpec::LikeVar(_)));
    }

    #[test]
    fn hlr_block_gradient_covers_all_targets() {
        let dm = build(
            r#"(lambda, N, D, x) => {
            param sigma2 ~ Exponential(lambda) ;
            param b ~ Normal(0.0, sigma2) ;
            param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
            data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta) + b)) for n <- 0 until N ;
        }"#,
        );
        let targets = vec!["sigma2".to_owned(), "b".to_owned(), "theta".to_owned()];
        let cond = conditional(&dm, &["sigma2", "b", "theta"]);
        let (allocs, p) = gen_grad_proc("g1", "g1_grad", &cond, &targets).unwrap();
        let s = crate::il::pretty_proc(&p);
        // the likelihood lowered to the stable logit form
        assert!(!s.contains("BernoulliLogit(dot(x[n], theta)).grad2(y[n])"), "{s}");
        assert!(s.contains("BernoulliLogit((dot(x[n], theta) + b)).grad2(y[n])"), "{s}");
        // chain rule into theta via the dot product
        assert!(s.contains("g1_adj_theta += vec_scale("), "{s}");
        // chain rule into b
        assert!(s.contains("g1_adj_b += "), "{s}");
        // variance gradient from both priors — the contended increment of
        // the paper's summation-block example (§5.4)
        assert!(s.contains("g1_adj_sigma2 += Normal(0.0, sigma2).grad3(theta[j]);"), "{s}");
        assert_eq!(allocs.len(), 3);
    }

    #[test]
    fn discrete_index_does_not_leak_gradient() {
        let dm = build(
            r#"(K, N, mu_0, s0, pis, s) => {
            param mu[k] ~ Normal(mu_0, s0) for k <- 0 until K ;
            param z[n] ~ Categorical(pis) for n <- 0 until N ;
            data x[n] ~ Normal(mu[z[n]], s) for n <- 0 until N ;
        }"#,
        );
        // Differentiate w.r.t. z (nonsensical but must be *silent*, not
        // wrong): no increments should be produced for the z adjoint from
        // the likelihood's mean (z enters only through an index).
        let cond = conditional(&dm, &["mu"]);
        let (_, p) = gen_grad_proc("g2", "g2_grad", &cond, &["mu".to_owned()]).unwrap();
        let s = crate::il::pretty_proc(&p);
        assert!(!s.contains("adj_z"), "{s}");
    }

    #[test]
    fn exp_and_log_chain_rules() {
        let dm = build(
            r#"(N, s2) => {
            param a ~ Normal(0.0, 1.0) ;
            data y[n] ~ Normal(exp(a), s2) for n <- 0 until N ;
        }"#,
        );
        let cond = conditional(&dm, &["a"]);
        let (_, p) = gen_grad_proc("g3", "g3_grad", &cond, &["a".to_owned()]).unwrap();
        let s = crate::il::pretty_proc(&p);
        assert!(
            s.contains("g3_adj_a += (Normal(exp(a), s2).grad2(y[n]) * exp(a));"),
            "{s}"
        );
    }
}
