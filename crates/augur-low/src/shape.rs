//! Size inference (paper §5.2).
//!
//! AugurV2 programs express fixed-structure models, so every buffer an
//! inference algorithm touches can be bounded — and, because compilation
//! happens at runtime with data sizes in hand, *resolved to a concrete
//! size* — before the first sweep. This is a hard requirement for GPU
//! execution (no dynamic allocation in kernels). This module describes the
//! shapes symbolically; the backend evaluates them against the bound model
//! arguments and allocates everything up front.

use augur_density::DExpr;

/// A symbolic size, resolved by the backend at setup time.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeExpr {
    /// A compile-time constant.
    Const(i64),
    /// An integer-valued model expression (e.g. the meta-parameter `K`),
    /// evaluated with all comprehension variables set to their lower
    /// bound.
    Expr(DExpr),
    /// The length of a vector-valued model expression (e.g. `len(alpha)`).
    LenOf(DExpr),
    /// The dimension of a (square) matrix-valued model expression.
    DimOf(DExpr),
}

/// The shape of one planned buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeSpec {
    /// A scalar cell.
    Scalar,
    /// A flat vector.
    Vec(SizeExpr),
    /// A square matrix (stored row-major).
    Mat(SizeExpr),
    /// A rectangular table: `rows` copies of `inner` (e.g. per-cluster
    /// sufficient statistics).
    Table {
        /// Number of rows.
        rows: SizeExpr,
        /// Per-row shape.
        inner: Box<ShapeSpec>,
    },
    /// The same shape as an existing model variable (adjoints, proposal
    /// copies, elliptical-slice auxiliaries).
    LikeVar(String),
}

impl SizeExpr {
    /// Stable symbolic rendering for explain plans (e.g. `len(alpha)`).
    pub fn pretty(&self) -> String {
        match self {
            SizeExpr::Const(v) => v.to_string(),
            SizeExpr::Expr(e) => format!("{e}"),
            SizeExpr::LenOf(e) => format!("len({e})"),
            SizeExpr::DimOf(e) => format!("dim({e})"),
        }
    }
}

impl ShapeSpec {
    /// Stable symbolic rendering for explain plans (e.g. `vec[len(alpha)]`).
    pub fn pretty(&self) -> String {
        match self {
            ShapeSpec::Scalar => "scalar".to_owned(),
            ShapeSpec::Vec(n) => format!("vec[{}]", n.pretty()),
            ShapeSpec::Mat(n) => format!("mat[{n}x{n}]", n = n.pretty()),
            ShapeSpec::Table { rows, inner } => {
                format!("table[{}]({})", rows.pretty(), inner.pretty())
            }
            ShapeSpec::LikeVar(v) => format!("like({v})"),
        }
    }
}

/// Whether a buffer is shared or logically per-thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// One shared buffer.
    Shared,
    /// One logical copy per parallel iteration (GPU local memory); the
    /// sequential executor reuses a single copy.
    ThreadLocal,
}

/// A planned allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocDecl {
    /// Buffer name (referenced by the IL).
    pub name: String,
    /// Symbolic shape.
    pub shape: ShapeSpec,
    /// Sharing discipline.
    pub kind: AllocKind,
}

impl AllocDecl {
    /// A shared allocation.
    pub fn shared(name: impl Into<String>, shape: ShapeSpec) -> AllocDecl {
        AllocDecl { name: name.into(), shape, kind: AllocKind::Shared }
    }

    /// A thread-local allocation.
    pub fn thread_local(name: impl Into<String>, shape: ShapeSpec) -> AllocDecl {
        AllocDecl { name: name.into(), shape, kind: AllocKind::ThreadLocal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = AllocDecl::shared("cnt", ShapeSpec::Vec(SizeExpr::Expr(DExpr::var("K"))));
        assert_eq!(a.kind, AllocKind::Shared);
        let b = AllocDecl::thread_local("w", ShapeSpec::Vec(SizeExpr::LenOf(DExpr::var("pi"))));
        assert_eq!(b.kind, AllocKind::ThreadLocal);
    }

    #[test]
    fn table_shape_nests() {
        let t = ShapeSpec::Table {
            rows: SizeExpr::Expr(DExpr::var("K")),
            inner: Box::new(ShapeSpec::Mat(SizeExpr::DimOf(DExpr::var("Psi")))),
        };
        match t {
            ShapeSpec::Table { inner, .. } => assert!(matches!(*inner, ShapeSpec::Mat(_))),
            _ => unreachable!(),
        }
    }
}
