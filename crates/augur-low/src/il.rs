//! The **Low++ / Low--** imperative ILs (paper §4.3, Fig. 6).
//!
//! Low++ makes *parallelism* explicit — every loop carries a `Seq`, `Par`,
//! or `AtmPar` annotation decided when the base update was generated, so
//! parallelism never has to be rediscovered — while memory stays abstract
//! (functional vector/matrix primitives that "allocate" their result).
//! Low-- is structurally the same language with memory made explicit; in
//! this reproduction the [`crate::shape`] pass plays that role by planning
//! every named buffer up front, and the backend's arena supplies the
//! temporaries of functional primitives.

use std::fmt;

use augur_dist::DistKind;
pub use augur_lang::ast::{BinOp, Builtin};

/// Loop annotations (Fig. 6 `lk`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Must execute sequentially.
    Seq,
    /// Iterations are independent.
    Par,
    /// Iterations are independent given that `+=` runs atomically.
    AtmPar,
}

impl fmt::Display for LoopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoopKind::Seq => "Seq",
            LoopKind::Par => "Par",
            LoopKind::AtmPar => "AtmPar",
        })
    }
}

/// Assignment operators. `+=` has its own category (Fig. 6 `sk`) because
/// the backend must execute it atomically inside `AtmPar` loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// Plain store.
    Set,
    /// Increment-and-store; atomic under `AtmPar`.
    Inc,
}

/// Functional vector/matrix primitives of Low++. Each produces a fresh
/// value; the Low-- step accounts for their storage (see
/// [`crate::shape`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpN {
    /// Element-wise vector addition.
    VecAdd,
    /// Element-wise vector subtraction.
    VecSub,
    /// `scale(s, v)`.
    VecScale,
    /// Matrix addition.
    MatAdd,
    /// `scale(s, M)`.
    MatScale,
    /// SPD matrix inverse (via Cholesky).
    MatInv,
    /// Matrix–vector product.
    MatVec,
    /// `outer(a − b)`: the scatter increment `(a−b)(a−b)ᵀ`.
    OuterSub,
}

impl OpN {
    /// Surface name for pretty-printing.
    pub fn name(self) -> &'static str {
        match self {
            OpN::VecAdd => "vec_add",
            OpN::VecSub => "vec_sub",
            OpN::VecScale => "vec_scale",
            OpN::MatAdd => "mat_add",
            OpN::MatScale => "mat_scale",
            OpN::MatInv => "mat_inv",
            OpN::MatVec => "mat_vec",
            OpN::OuterSub => "outer_sub",
        }
    }
}

/// Distribution operations (Fig. 6 `dop`), beyond the implicit density of
/// the Density IL: log-likelihood, sampling, and gradients. Sampling is a
/// statement ([`Stmt::Sample`]) since it consumes randomness and writes a
/// location; `ll`/`grad` are expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named buffer or loop variable.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Indexing.
    Index(Box<Expr>, Box<Expr>),
    /// Binary arithmetic.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Builtin scalar/vector function.
    Call(Builtin, Vec<Expr>),
    /// `dist(args).ll(point)` — log-density evaluation.
    DistLl {
        /// The distribution.
        dist: DistKind,
        /// Parameters.
        args: Vec<Expr>,
        /// Evaluation point.
        point: Box<Expr>,
    },
    /// `dist(args).grad_{i+2}(point)` — gradient of the log-density with
    /// respect to parameter `i` (the paper's 1-based `grad` counts the
    /// point as argument 1).
    DistGradParam {
        /// The distribution.
        dist: DistKind,
        /// Which parameter.
        i: usize,
        /// Parameters.
        args: Vec<Expr>,
        /// Evaluation point.
        point: Box<Expr>,
    },
    /// `dist(args).grad_1(point)` — gradient with respect to the point.
    DistGradPoint {
        /// The distribution.
        dist: DistKind,
        /// Parameters.
        args: Vec<Expr>,
        /// Evaluation point.
        point: Box<Expr>,
    },
    /// A functional vector/matrix primitive.
    Op(OpN, Vec<Expr>),
    /// Length of a vector value.
    Len(Box<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand for `base[idx]`.
    pub fn index(base: Expr, idx: Expr) -> Expr {
        Expr::Index(Box::new(base), Box::new(idx))
    }
}

/// A store destination: `var[idx]...[idx]`. Fewer indices than the
/// variable's depth denote a whole-slice store (broadcast for scalars).
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// The buffer name.
    pub var: String,
    /// Index expressions, outermost first.
    pub indices: Vec<Expr>,
}

impl LValue {
    /// An unindexed lvalue.
    pub fn name(var: impl Into<String>) -> LValue {
        LValue { var: var.into(), indices: Vec::new() }
    }
}

/// Boolean guards for `if` (indicator conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Equality of two scalar expressions.
    Eq(Expr, Expr),
}

/// Statements (Fig. 6 `s`).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// `lhs = rhs` or `lhs += rhs`. Vector-valued right-hand sides store
    /// element-wise; a scalar stored to a slice lvalue broadcasts.
    Assign {
        /// Destination.
        lhs: LValue,
        /// Set or atomic increment.
        op: AssignOp,
        /// Value.
        rhs: Expr,
    },
    /// Conditional.
    If {
        /// Guard.
        cond: Cond,
        /// Then-branch.
        then: Box<Stmt>,
        /// Optional else-branch.
        els: Option<Box<Stmt>>,
    },
    /// Annotated loop `loop lk (var ← lo until hi) { body }`.
    Loop {
        /// Parallelism annotation.
        kind: LoopKind,
        /// Loop variable.
        var: String,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `lhs = dist(args).samp`.
    Sample {
        /// Destination.
        lhs: LValue,
        /// Distribution to draw from.
        dist: DistKind,
        /// Parameters.
        args: Vec<Expr>,
    },
    /// `lhs = CategoricalLogits(weights).samp` — draw an index from a
    /// buffer of *log* weights (the finite-sum Gibbs primitive).
    SampleLogits {
        /// Destination (an integer-valued slot).
        lhs: LValue,
        /// The log-weight vector expression.
        weights: Expr,
    },
}

impl Stmt {
    /// An empty statement.
    pub fn nop() -> Stmt {
        Stmt::Seq(Vec::new())
    }

    /// Wraps statements in a sequence, flattening singletons.
    pub fn seq(mut stmts: Vec<Stmt>) -> Stmt {
        if stmts.len() == 1 {
            stmts.pop().expect("one element")
        } else {
            Stmt::Seq(stmts)
        }
    }
}

/// A procedure (Fig. 6 `decl`): a body plus an optional returned scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDecl {
    /// The procedure name.
    pub name: String,
    /// The body.
    pub body: Stmt,
    /// An optional scalar result (e.g. the accumulated log-likelihood).
    pub ret: Option<Expr>,
}

/// Pretty-prints an expression in C-like syntax (the `CodegenC` view).
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Var(n) => n.clone(),
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Index(a, b) => format!("{}[{}]", pretty_expr(a), pretty_expr(b)),
        Expr::Binop(op, a, b) => {
            format!("({} {} {})", pretty_expr(a), op.symbol(), pretty_expr(b))
        }
        Expr::Neg(a) => format!("(-{})", pretty_expr(a)),
        Expr::Call(b, args) => format!("{}({})", b.name(), join(args)),
        Expr::DistLl { dist, args, point } => {
            format!("{dist}({}).ll({})", join(args), pretty_expr(point))
        }
        Expr::DistGradParam { dist, i, args, point } => {
            format!("{dist}({}).grad{}({})", join(args), i + 2, pretty_expr(point))
        }
        Expr::DistGradPoint { dist, args, point } => {
            format!("{dist}({}).grad1({})", join(args), pretty_expr(point))
        }
        Expr::Op(op, args) => format!("{}({})", op.name(), join(args)),
        Expr::Len(a) => format!("len({})", pretty_expr(a)),
    }
}

fn join(args: &[Expr]) -> String {
    args.iter().map(pretty_expr).collect::<Vec<_>>().join(", ")
}

/// Pretty-prints a statement with indentation.
pub fn pretty_stmt(s: &Stmt, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Seq(stmts) => stmts.iter().map(|t| pretty_stmt(t, indent)).collect::<Vec<_>>().join(""),
        Stmt::Assign { lhs, op, rhs } => {
            let sym = match op {
                AssignOp::Set => "=",
                AssignOp::Inc => "+=",
            };
            format!("{pad}{} {sym} {};\n", pretty_lvalue(lhs), pretty_expr(rhs))
        }
        Stmt::If { cond, then, els } => {
            let Cond::Eq(a, b) = cond;
            let mut out = format!(
                "{pad}if ({} == {}) {{\n{}{pad}}}",
                pretty_expr(a),
                pretty_expr(b),
                pretty_stmt(then, indent + 1)
            );
            if let Some(e) = els {
                out.push_str(&format!(" else {{\n{}{pad}}}", pretty_stmt(e, indent + 1)));
            }
            out.push('\n');
            out
        }
        Stmt::Loop { kind, var, lo, hi, body } => format!(
            "{pad}loop {kind} ({var} <- {} until {}) {{\n{}{pad}}}\n",
            pretty_expr(lo),
            pretty_expr(hi),
            pretty_stmt(body, indent + 1)
        ),
        Stmt::Sample { lhs, dist, args } => {
            format!("{pad}{} = {dist}({}).samp;\n", pretty_lvalue(lhs), join(args))
        }
        Stmt::SampleLogits { lhs, weights } => format!(
            "{pad}{} = CategoricalLogits({}).samp;\n",
            pretty_lvalue(lhs),
            pretty_expr(weights)
        ),
    }
}

fn pretty_lvalue(l: &LValue) -> String {
    let mut s = l.var.clone();
    for i in &l.indices {
        s.push_str(&format!("[{}]", pretty_expr(i)));
    }
    s
}

/// Pretty-prints a whole procedure.
pub fn pretty_proc(p: &ProcDecl) -> String {
    let mut out = format!("{}() {{\n{}", p.name, pretty_stmt(&p.body, 1));
    if let Some(r) = &p.ret {
        out.push_str(&format!("  ret {};\n", pretty_expr(r)));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_grad_matches_paper_excerpt_shape() {
        // adj_mu[t0] += adj_ll * MvNormal(mu[t0], Sigma).grad2(y[n]);
        let s = Stmt::Assign {
            lhs: LValue { var: "adj_mu".into(), indices: vec![Expr::var("t0")] },
            op: AssignOp::Inc,
            rhs: Expr::DistGradParam {
                dist: DistKind::MvNormal,
                i: 0,
                args: vec![
                    Expr::index(Expr::var("mu"), Expr::var("t0")),
                    Expr::var("Sigma"),
                ],
                point: Box::new(Expr::index(Expr::var("y"), Expr::var("n"))),
            },
        };
        let p = pretty_stmt(&s, 0);
        assert_eq!(p, "adj_mu[t0] += MvNormal(mu[t0], Sigma).grad2(y[n]);\n");
    }

    #[test]
    fn pretty_loop_annotations() {
        let s = Stmt::Loop {
            kind: LoopKind::AtmPar,
            var: "n".into(),
            lo: Expr::Int(0),
            hi: Expr::var("N"),
            body: Box::new(Stmt::Assign {
                lhs: LValue::name("acc"),
                op: AssignOp::Inc,
                rhs: Expr::Real(1.0),
            }),
        };
        let p = pretty_stmt(&s, 0);
        assert!(p.starts_with("loop AtmPar (n <- 0 until N) {"));
        assert!(p.contains("acc += 1.0;"));
    }

    #[test]
    fn seq_flattens_singleton() {
        let s = Stmt::seq(vec![Stmt::nop()]);
        assert_eq!(s, Stmt::nop());
    }

    #[test]
    fn pretty_proc_with_ret() {
        let p = ProcDecl {
            name: "ll".into(),
            body: Stmt::Assign {
                lhs: LValue::name("acc"),
                op: AssignOp::Set,
                rhs: Expr::Real(0.0),
            },
            ret: Some(Expr::var("acc")),
        };
        let s = pretty_proc(&p);
        assert!(s.contains("ret acc;"));
        assert!(s.starts_with("ll() {"));
    }
}
