//! The crate-wide error type.
//!
//! Everything a user-facing entry point can fail with funnels into
//! [`Error`]: compile-time failures arrive as [`BuildError`]s from the
//! pipeline, and runtime accessor failures (asking for a trace that was
//! never recorded, indexing past a parameter's length) get their own
//! typed variants so callers can match on them instead of parsing panic
//! strings.
//!
//! `Error` is `#[non_exhaustive]`: new failure modes may gain variants
//! without a breaking release. Callers that only need a coarse response
//! code — the serving layer foremost — should branch on
//! [`Error::kind`], which maps every variant (present and future) onto
//! the small, stable [`ErrorKind`] taxonomy instead of the concrete
//! enums.

use std::fmt;

use augur_backend::checkpoint::CheckpointError;
use augur_backend::driver::{BuildError, RunError, UnknownParam};

/// Any failure from the user-facing API: compilation, building, running
/// chains, or accessing results.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A pipeline failure (parse, typecheck, density, schedule, lowering,
    /// or state setup), with the failing phase named inside.
    Build(BuildError),
    /// A parameter was looked up on a sampler but no buffer has that name.
    UnknownParam {
        /// The name that failed to resolve.
        name: String,
    },
    /// Prior initialization produced NaN/infinite cells for a parameter
    /// (typically improper hyperparameters).
    NonFiniteInit {
        /// The offending parameter.
        param: String,
    },
    /// A parameter trace was requested from a [`crate::chains::Chains`]
    /// result, but that parameter was not in the recorded set.
    NotRecorded {
        /// The parameter that was not recorded.
        param: String,
    },
    /// A component index was out of range for a recorded parameter.
    OutOfRange {
        /// The recorded parameter.
        param: String,
        /// The requested component index.
        index: usize,
        /// The parameter's actual length.
        len: usize,
    },
    /// A convergence diagnostic was requested over an empty chain set.
    NoChains,
    /// A chain was too short for the requested diagnostic (split-R̂ needs
    /// at least 4 draws per chain).
    ShortChain {
        /// The offending chain's length.
        len: usize,
        /// The minimum the diagnostic requires.
        min: usize,
    },
    /// A kernel update indexed outside a buffer; the sweep failed with a
    /// typed error instead of aborting the process.
    OutOfBounds {
        /// The Kernel-IL label of the failing step.
        kernel: String,
        /// The underlying bounds-check message.
        detail: String,
    },
    /// A kernel update or chain worker panicked; the failure was isolated
    /// to its sweep/chain and surfaced here.
    WorkerPanic {
        /// The Kernel-IL label of the failing step (or a chain label).
        kernel: String,
        /// The panic payload, rendered.
        detail: String,
    },
    /// A checkpoint could not be written, read, or applied.
    Checkpoint(CheckpointError),
}

/// The coarse, stable classification of an [`Error`] — what a service
/// maps to a response code without matching on internal enums.
///
/// Both this enum and [`Error`] are `#[non_exhaustive]`; match with a
/// wildcard arm. The [`str` form](ErrorKind::as_str) is stable and is
/// what the serving layer's JSONL trace records and error responses
/// carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The model source or schedule was rejected at compile time
    /// (parse, typecheck, density translation, schedule planning, or
    /// lowering). The request itself is at fault: re-sending it cannot
    /// succeed.
    Compile,
    /// Model arguments or data bindings did not match the model
    /// (binding/allocation failures, unknown parameter names) — also a
    /// caller-side fault.
    Binding,
    /// The sampler hit a numerical failure at run time (non-finite
    /// initialization from improper hyperparameters).
    Numerical,
    /// A kernel or worker failed mid-run (out-of-bounds access, panic)
    /// — the fault was isolated, the rest of the system is intact.
    Fault,
    /// A checkpoint could not be written, read, or applied.
    Checkpoint,
    /// A results accessor was misused (parameter not recorded, index
    /// out of range, empty or too-short chain set).
    Query,
    /// An auxiliary I/O channel failed (e.g. the JSONL trace sink).
    Io,
    /// A request exceeded its deadline (serving layer). Transient: the
    /// same request may succeed on a less loaded service.
    Timeout,
    /// A request was shed at admission because every shard queue was at
    /// its bound (serving layer). Transient by definition.
    Overloaded,
}

impl ErrorKind {
    /// The stable string form, e.g. `"compile"` — what response codes
    /// and trace records carry.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Compile => "compile",
            ErrorKind::Binding => "binding",
            ErrorKind::Numerical => "numerical",
            ErrorKind::Fault => "fault",
            ErrorKind::Checkpoint => "checkpoint",
            ErrorKind::Query => "query",
            ErrorKind::Io => "io",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
        }
    }

    /// Whether the failure is the caller's (bad model, bad bindings,
    /// bad accessor use) rather than the runtime's — a 4xx/5xx-style
    /// split for response mapping.
    pub fn is_caller_fault(self) -> bool {
        matches!(self, ErrorKind::Compile | ErrorKind::Binding | ErrorKind::Query)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Error {
    /// The coarse classification of this error (see [`ErrorKind`]).
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Build(BuildError::Setup(_)) => ErrorKind::Binding,
            Error::Build(BuildError::Trace(_)) => ErrorKind::Io,
            Error::Build(_) => ErrorKind::Compile,
            Error::UnknownParam { .. } => ErrorKind::Binding,
            Error::NonFiniteInit { .. } => ErrorKind::Numerical,
            Error::NotRecorded { .. }
            | Error::OutOfRange { .. }
            | Error::NoChains
            | Error::ShortChain { .. } => ErrorKind::Query,
            Error::OutOfBounds { .. } | Error::WorkerPanic { .. } => ErrorKind::Fault,
            Error::Checkpoint(_) => ErrorKind::Checkpoint,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Build(e) => write!(f, "{e}"),
            Error::UnknownParam { name } => write!(f, "no parameter named `{name}`"),
            Error::NonFiniteInit { param } => {
                write!(f, "initialization produced non-finite values for `{param}`")
            }
            Error::NotRecorded { param } => write!(f, "`{param}` was not recorded"),
            Error::OutOfRange { param, index, len } => {
                write!(f, "`{param}[{index}]` out of range (length {len})")
            }
            Error::NoChains => write!(f, "diagnostics need at least one chain"),
            Error::ShortChain { len, min } => {
                write!(f, "chain of {len} draws is too short (diagnostic needs ≥ {min})")
            }
            Error::OutOfBounds { kernel, detail } => {
                write!(f, "out-of-bounds access in `{kernel}`: {detail}")
            }
            Error::WorkerPanic { kernel, detail } => {
                write!(f, "`{kernel}` panicked: {detail}")
            }
            Error::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl From<UnknownParam> for Error {
    fn from(e: UnknownParam) -> Self {
        Error::UnknownParam { name: e.name }
    }
}

impl From<RunError> for Error {
    fn from(e: RunError) -> Self {
        match e {
            RunError::UnknownParam(u) => Error::UnknownParam { name: u.name },
            RunError::NonFiniteInit { param } => Error::NonFiniteInit { param },
            RunError::OutOfBounds { kernel, detail } => Error::OutOfBounds { kernel, detail },
            RunError::WorkerPanic { kernel, detail } => Error::WorkerPanic { kernel, detail },
            RunError::Checkpoint(e) => Error::Checkpoint(e),
        }
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}
