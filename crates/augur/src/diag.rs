//! Chain diagnostics: effective sample size, autocorrelation, and split-R̂.
//!
//! The paper compares samplers by wall-clock to a log-predictive plateau
//! (Fig. 10); a downstream user additionally wants per-chain health
//! numbers. These are the standard estimators (Geyer initial positive
//! sequence for ESS; Gelman–Rubin split-R̂), surfaced through
//! [`crate::prelude`] and folded into [`crate::chains::Chains::report`].

use crate::Error;

/// Autocovariance at lag `k` (biased, as used by the ESS estimator).
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if k >= n {
        return 0.0;
    }
    let m = augur_math::vecops::mean(xs);
    xs[..n - k]
        .iter()
        .zip(&xs[k..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum::<f64>()
        / n as f64
}

/// Effective sample size via Geyer's initial-positive-sequence estimator:
/// sum paired autocorrelations `ρ(2t) + ρ(2t+1)` while the pair sum stays
/// positive.
///
/// The trace is centered once up front, so each lag costs one
/// multiply-add pass — not a fresh mean computation per lag.
///
/// Degenerate traces get a defined answer instead of NaN: a constant
/// (zero-variance) chain and a chain containing non-finite values both
/// return `n` — every draw carries the same information, so the estimator
/// has nothing to discount. (`NaN <= 0.0` is false, so without the
/// explicit finiteness guards a poisoned `c0` would propagate through the
/// ratio and survive the final clamp.)
pub fn ess(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return n as f64;
    }
    let m = augur_math::vecops::mean(xs);
    let centered: Vec<f64> = xs.iter().map(|x| x - m).collect();
    let acov = |k: usize| -> f64 {
        centered[..n - k].iter().zip(&centered[k..]).map(|(a, b)| a * b).sum::<f64>() / n as f64
    };
    let c0 = acov(0);
    if c0 <= 0.0 || !c0.is_finite() {
        return n as f64;
    }
    let mut sum_rho = 0.0;
    let mut t = 1;
    while t + 1 < n {
        let pair = (acov(t) + acov(t + 1)) / c0;
        if pair <= 0.0 {
            break;
        }
        sum_rho += pair;
        t += 2;
    }
    let ess = n as f64 / (1.0 + 2.0 * sum_rho);
    if !ess.is_finite() {
        return n as f64;
    }
    ess.clamp(1.0, n as f64)
}

/// Split-R̂ (Gelman–Rubin with each chain halved). Values near 1 indicate
/// the chains agree; > 1.05 is conventionally suspicious.
///
/// # Errors
///
/// Returns [`Error::NoChains`] for an empty chain set and
/// [`Error::ShortChain`] for any chain with fewer than 4 draws.
pub fn split_rhat(chains: &[Vec<f64>]) -> Result<f64, Error> {
    if chains.is_empty() {
        return Err(Error::NoChains);
    }
    let mut halves: Vec<&[f64]> = Vec::new();
    for c in chains {
        if c.len() < 4 {
            return Err(Error::ShortChain { len: c.len(), min: 4 });
        }
        let mid = c.len() / 2;
        halves.push(&c[..mid]);
        halves.push(&c[mid..]);
    }
    let m = halves.len() as f64;
    let n = halves.iter().map(|h| h.len()).min().expect("non-empty") as f64;
    let means: Vec<f64> = halves.iter().map(|h| augur_math::vecops::mean(h)).collect();
    let grand = augur_math::vecops::mean(&means);
    let b = n / (m - 1.0)
        * means.iter().map(|mu| (mu - grand) * (mu - grand)).sum::<f64>();
    let w = halves
        .iter()
        .map(|h| augur_math::vecops::variance(h))
        .sum::<f64>()
        / m;
    if w <= 0.0 {
        return Ok(1.0);
    }
    let var_plus = (n - 1.0) / n * w + b / n;
    Ok((var_plus / w).sqrt())
}

/// A Welford (single-pass) mean/variance accumulator.
///
/// `sample_variance` matches [`augur_math::vecops::variance`]'s
/// definition — unbiased `/(n-1)`, and `0.0` for fewer than two
/// observations — so an accumulator fed a slice agrees with the batch
/// function to floating-point reassociation error (≪ 1e-9 at the
/// magnitudes chains produce), which is the contract the streaming
/// split-R̂ below is tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean (0.0 when empty, matching
    /// [`augur_math::vecops::mean`]).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance (0.0 below two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.m2 / (self.n - 1) as f64
    }
}

/// A streaming per-parameter convergence estimator over a fixed set of
/// chains: push scalar draws as they arrive (per chain, in sweep
/// order), snapshot [`ess_sum`](OnlineParamDiag::ess_sum) /
/// [`split_rhat`](OnlineParamDiag::split_rhat) at any point — the
/// serving layer does so at slice boundaries and exports the result as
/// gauges.
///
/// The split point of split-R̂ is `len/2` *of the current trace*, so it
/// moves as draws arrive; the estimator therefore keeps the raw traces
/// (the O(n) memory is the same the service already pays to return the
/// draws) and re-runs Welford accumulators over the current halves at
/// snapshot time. ESS reuses [`ess`] per chain unchanged. Snapshots
/// match the batch functions on the same prefix: exactly for ESS, to
/// well under 1e-9 for split-R̂ (single-pass vs. two-pass variance),
/// including the degenerate guards — constant chains give
/// `ess_sum == total draws` and `R̂ == 1.0`, NaN-poisoned chains give
/// `ess_sum == total draws` and a NaN R̂, exactly as the batch path
/// does.
#[derive(Debug, Clone)]
pub struct OnlineParamDiag {
    chains: Vec<Vec<f64>>,
}

impl OnlineParamDiag {
    /// An estimator over `chains` chains with no draws yet.
    pub fn new(chains: usize) -> OnlineParamDiag {
        OnlineParamDiag { chains: vec![Vec::new(); chains] }
    }

    /// Appends one draw to chain `chain` (in sweep order).
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    pub fn push(&mut self, chain: usize, x: f64) {
        self.chains[chain].push(x);
    }

    /// Number of chains tracked.
    pub fn chains(&self) -> usize {
        self.chains.len()
    }

    /// Draws recorded so far in the shortest chain.
    pub fn min_len(&self) -> usize {
        self.chains.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// ESS summed across chains — the same aggregation
    /// [`crate::chains::Chains::report`] uses for its per-parameter
    /// diagnostics, computed with the identical per-chain [`ess`].
    pub fn ess_sum(&self) -> f64 {
        self.chains.iter().map(|c| ess(c)).sum()
    }

    /// Streaming split-R̂ over the draws recorded so far: each chain's
    /// current trace is halved at `len/2` and a [`Welford`] accumulator
    /// runs over each half, then the halves enter the Gelman–Rubin
    /// B/W formula exactly as [`split_rhat`] computes it.
    ///
    /// # Errors
    ///
    /// [`Error::NoChains`] with zero chains, [`Error::ShortChain`] while
    /// any chain still has fewer than 4 draws.
    pub fn split_rhat(&self) -> Result<f64, Error> {
        if self.chains.is_empty() {
            return Err(Error::NoChains);
        }
        let mut halves: Vec<Welford> = Vec::with_capacity(self.chains.len() * 2);
        let mut min_half = usize::MAX;
        for c in &self.chains {
            if c.len() < 4 {
                return Err(Error::ShortChain { len: c.len(), min: 4 });
            }
            let mid = c.len() / 2;
            for half in [&c[..mid], &c[mid..]] {
                let mut acc = Welford::new();
                for &x in half {
                    acc.push(x);
                }
                min_half = min_half.min(half.len());
                halves.push(acc);
            }
        }
        let m = halves.len() as f64;
        let n = min_half as f64;
        let mut grand = Welford::new();
        for h in &halves {
            grand.push(h.mean());
        }
        let grand = grand.mean();
        let b = n / (m - 1.0)
            * halves.iter().map(|h| (h.mean() - grand) * (h.mean() - grand)).sum::<f64>();
        let w = halves.iter().map(Welford::sample_variance).sum::<f64>() / m;
        if w <= 0.0 {
            return Ok(1.0);
        }
        let var_plus = (n - 1.0) / n * w + b / n;
        Ok((var_plus / w).sqrt())
    }
}

/// Per-second effective sampling rate: `ess / seconds` — the quantity the
/// Fig. 10 comparison is really about.
pub fn ess_per_sec(xs: &[f64], seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    ess(xs) / seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_dist::Prng;

    #[test]
    fn iid_draws_have_full_ess() {
        let mut rng = Prng::seed_from_u64(1);
        let xs: Vec<f64> = (0..4000).map(|_| rng.std_normal()).collect();
        let e = ess(&xs);
        assert!(e > 2500.0, "iid ESS {e} of 4000");
    }

    #[test]
    fn ar1_ess_matches_closed_form() {
        // x_t = ρ x_{t-1} + ε has asymptotic ESS n·(1-ρ)/(1+ρ).
        for (rho, seed) in [(0.5, 2u64), (0.9, 7)] {
            let n = 8000;
            let mut rng = Prng::seed_from_u64(seed);
            let mut x = 0.0;
            let xs: Vec<f64> = (0..n)
                .map(|_| {
                    x = rho * x + rng.std_normal();
                    x
                })
                .collect();
            let e = ess(&xs);
            let expect = n as f64 * (1.0 - rho) / (1.0 + rho);
            assert!(
                e < expect * 2.5 && e > expect / 2.5,
                "AR(1) ρ={rho}: ESS {e}, closed form ≈ {expect}"
            );
        }
    }

    #[test]
    fn centered_ess_equals_per_lag_mean_recomputation() {
        // The hoisted centering must not change the estimate: the biased
        // per-lag autocovariance uses the full-trace mean either way.
        let mut rng = Prng::seed_from_u64(11);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..500)
            .map(|_| {
                x = 0.7 * x + rng.std_normal();
                x
            })
            .collect();
        let c0 = autocovariance(&xs, 0);
        let mut sum_rho = 0.0;
        let mut t = 1;
        while t + 1 < xs.len() {
            let pair = (autocovariance(&xs, t) + autocovariance(&xs, t + 1)) / c0;
            if pair <= 0.0 {
                break;
            }
            sum_rho += pair;
            t += 2;
        }
        let slow = (xs.len() as f64 / (1.0 + 2.0 * sum_rho)).clamp(1.0, xs.len() as f64);
        assert!((ess(&xs) - slow).abs() < 1e-9);
    }

    #[test]
    fn rhat_near_one_for_same_distribution() {
        let mut rng = Prng::seed_from_u64(3);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..1000).map(|_| rng.std_normal()).collect())
            .collect();
        let r = split_rhat(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.03, "R̂ {r}");
    }

    #[test]
    fn rhat_flags_disagreeing_chains() {
        let mut rng = Prng::seed_from_u64(4);
        let a: Vec<f64> = (0..1000).map(|_| rng.std_normal()).collect();
        let b: Vec<f64> = (0..1000).map(|_| 5.0 + rng.std_normal()).collect();
        let r = split_rhat(&[a, b]).unwrap();
        assert!(r > 1.2, "R̂ {r} should flag separated chains");
    }

    #[test]
    fn rhat_errors_are_typed() {
        match split_rhat(&[]) {
            Err(Error::NoChains) => {}
            other => panic!("expected NoChains, got {other:?}"),
        }
        match split_rhat(&[vec![1.0, 2.0, 3.0]]) {
            Err(Error::ShortChain { len: 3, min: 4 }) => {}
            other => panic!("expected ShortChain, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_chains_get_a_defined_ess() {
        // constant chain: zero variance, full information per draw
        let constant = vec![2.5; 100];
        assert_eq!(ess(&constant), 100.0);
        // a NaN draw must not poison the estimate (NaN c0 compares false
        // against <= 0.0, so only an explicit guard catches it)
        let mut poisoned: Vec<f64> = (0..50).map(|i| i as f64).collect();
        poisoned[7] = f64::NAN;
        let e = ess(&poisoned);
        assert!(e.is_finite(), "poisoned-chain ESS {e}");
        assert_eq!(e, 50.0);
        let mut inf: Vec<f64> = (0..50).map(|i| i as f64).collect();
        inf[3] = f64::INFINITY;
        assert!(ess(&inf).is_finite());
    }

    #[test]
    fn autocovariance_lag_zero_is_variance_scale() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let c0 = autocovariance(&xs, 0);
        assert!((c0 - 1.25).abs() < 1e-12); // biased (/n) variance
        assert_eq!(autocovariance(&xs, 10), 0.0);
    }

    #[test]
    fn ess_per_sec_handles_degenerate_time() {
        assert!(ess_per_sec(&[1.0, 2.0, 3.0, 4.0], 0.0).is_infinite());
    }

    #[test]
    fn welford_matches_vecops_variance() {
        let mut rng = Prng::seed_from_u64(21);
        let xs: Vec<f64> = (0..257).map(|_| 3.0 + 2.0 * rng.std_normal()).collect();
        let mut acc = Welford::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 257);
        assert!((acc.mean() - augur_math::vecops::mean(&xs)).abs() < 1e-12);
        assert!((acc.sample_variance() - augur_math::vecops::variance(&xs)).abs() < 1e-12);
        // Degenerate counts follow the batch definitions.
        let mut one = Welford::new();
        one.push(5.0);
        assert_eq!(one.sample_variance(), 0.0);
        assert_eq!(Welford::new().mean(), 0.0);
    }

    #[test]
    fn online_diag_matches_batch_at_every_prefix() {
        let mut rng = Prng::seed_from_u64(33);
        let chains: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                let mut x = 0.0;
                (0..120)
                    .map(|_| {
                        x = 0.6 * x + rng.std_normal();
                        x
                    })
                    .collect()
            })
            .collect();
        let mut online = OnlineParamDiag::new(3);
        for sweep in 0..120 {
            for (c, chain) in chains.iter().enumerate() {
                online.push(c, chain[sweep]);
            }
            if sweep + 1 < 4 {
                assert!(matches!(online.split_rhat(), Err(Error::ShortChain { min: 4, .. })));
                continue;
            }
            let prefix: Vec<Vec<f64>> =
                chains.iter().map(|c| c[..=sweep].to_vec()).collect();
            let batch_ess: f64 = prefix.iter().map(|c| ess(c)).sum();
            assert!(
                (online.ess_sum() - batch_ess).abs() <= 1e-9,
                "sweep {sweep}: ess {} vs {batch_ess}",
                online.ess_sum()
            );
            let batch_rhat = split_rhat(&prefix).unwrap();
            let online_rhat = online.split_rhat().unwrap();
            assert!(
                (online_rhat - batch_rhat).abs() <= 1e-9,
                "sweep {sweep}: rhat {online_rhat} vs {batch_rhat}"
            );
        }
    }

    #[test]
    fn online_diag_guards_match_batch() {
        // Constant chains: zero within-half variance → R̂ defined as 1,
        // ESS as n per chain.
        let mut constant = OnlineParamDiag::new(2);
        for _ in 0..10 {
            constant.push(0, 2.5);
            constant.push(1, 2.5);
        }
        assert_eq!(constant.ess_sum(), 20.0);
        assert_eq!(constant.split_rhat().unwrap(), 1.0);
        // A NaN draw: ESS falls back to n (the batch guard), R̂ goes NaN
        // on both paths.
        let mut poisoned = OnlineParamDiag::new(1);
        for i in 0..10 {
            poisoned.push(0, if i == 3 { f64::NAN } else { i as f64 });
        }
        assert_eq!(poisoned.ess_sum(), 10.0);
        let batch: Vec<f64> =
            (0..10).map(|i| if i == 3 { f64::NAN } else { i as f64 }).collect();
        assert!(poisoned.split_rhat().unwrap().is_nan());
        assert!(split_rhat(&[batch]).unwrap().is_nan());
        // Typed errors mirror the batch surface.
        assert!(matches!(OnlineParamDiag::new(0).split_rhat(), Err(Error::NoChains)));
    }
}
