//! Cuda/C code emission — re-exported from the backend crate.
//!
//! The emitter moved to `augur_backend::codegen` so the executable
//! native pipeline, the simulated-GPU cost model, and the facade all
//! share one API: [`emit`] returns a [`CodegenUnit`] (source text plus a
//! symbol manifest), and `Plan::emit` renders the shape-specialized
//! translation units — including the exact C the native backend
//! compiles and `dlopen`s. [`Model::emit_native`](crate::Model::emit_native)
//! keeps returning the plain source string.

pub use augur_backend::codegen::{emit, CodegenTarget, CodegenUnit, SymbolInfo, SymbolKind};
