//! Multi-chain execution.
//!
//! The paper contrasts two parallelism strategies: "Jags and Stan support
//! parallel MCMC by running multiple copies of a chain in parallel. In
//! contrast, AugurV2 supports parallel MCMC by parallelizing the
//! computations within a single chain" (§7.2). Both are useful; this
//! module adds the across-chains mode to the compiled sampler — each
//! chain is an independently seeded build of the same compiled model, so
//! chains can also feed convergence diagnostics (split-R̂).
//!
//! The entry point is [`ChainPlan`]: all chains fan out over **one**
//! shared [`Plan`](crate::Plan) — one compile, N sessions — so adding
//! chains costs sessions (cheap copy-on-write state clones), never
//! recompiles:
//!
//! ```no_run
//! # use augur::{Model, HostValue, chains::ChainPlan};
//! # let model = Model::compile("(N) => {
//! #     param p ~ Beta(1.0, 1.0) ;
//! #     data y[n] ~ Bernoulli(p) for n <- 0 until N ;
//! # }")?;
//! let plan = model.plan(
//!     vec![HostValue::Int(2)],
//!     vec![("y", HostValue::VecF(vec![1.0, 0.0]))],
//! )?;
//! let chains = ChainPlan::new(&plan)
//!     .chains(4)
//!     .sweeps(1500)
//!     .record(&["p"])
//!     .run()?;
//! let pooled = chains.pooled_mean("p", 0)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use augur_backend::checkpoint::CheckpointError;
use augur_backend::par::Pool;
use augur_backend::Plan;

use crate::{Error, SessionConfig};

/// The result of a multi-chain run.
#[derive(Debug, Clone)]
pub struct Chains {
    /// Per-chain, per-sweep recordings: `chains[c][s][param]`.
    pub draws: Vec<Vec<HashMap<String, Vec<f64>>>>,
    /// Per-chain execution profiles, in chain order (one per chain; see
    /// [`augur_backend::Profile`]). Work counters are populated only when
    /// the run's `SessionConfig::timers` was on.
    pub profiles: Vec<augur_backend::Profile>,
}

impl Chains {
    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.draws.len()
    }

    /// Extracts one scalar trace per chain: component `index` of `param`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotRecorded`] if the parameter was not in the
    /// recorded set, or [`Error::OutOfRange`] if `index` exceeds its
    /// length.
    pub fn traces(&self, param: &str, index: usize) -> Result<Vec<Vec<f64>>, Error> {
        self.draws
            .iter()
            .map(|chain| {
                chain
                    .iter()
                    .map(|snap| {
                        let vals = snap
                            .get(param)
                            .ok_or_else(|| Error::NotRecorded { param: param.to_owned() })?;
                        vals.get(index).copied().ok_or_else(|| Error::OutOfRange {
                            param: param.to_owned(),
                            index,
                            len: vals.len(),
                        })
                    })
                    .collect()
            })
            .collect()
    }

    /// Pooled posterior mean of one scalar component across all chains.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Chains::traces`].
    pub fn pooled_mean(&self, param: &str, index: usize) -> Result<f64, Error> {
        let traces = self.traces(param, index)?;
        let total: f64 = traces.iter().flatten().sum();
        let count: usize = traces.iter().map(Vec::len).sum();
        Ok(total / count.max(1) as f64)
    }

    /// Convergence diagnostics for every recorded scalar component:
    /// effective sample size (summed across chains) and split-R̂, in
    /// parameter-name order. The diagnostics-first companion to the
    /// per-session run report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoChains`] when nothing was run or recorded, and
    /// [`Error::ShortChain`] when chains are too short for split-R̂
    /// (fewer than 4 draws).
    pub fn report(&self) -> Result<ChainsReport, Error> {
        let first = self
            .draws
            .first()
            .and_then(|chain| chain.first())
            .ok_or(Error::NoChains)?;
        let mut names: Vec<(String, usize)> =
            first.iter().map(|(name, vals)| (name.clone(), vals.len())).collect();
        names.sort();
        let mut params = Vec::new();
        for (name, len) in names {
            for index in 0..len {
                let traces = self.traces(&name, index)?;
                let ess = traces.iter().map(|t| crate::diag::ess(t)).sum();
                let split_rhat = crate::diag::split_rhat(&traces)?;
                params.push(ParamDiag { name: name.clone(), index, ess, split_rhat });
            }
        }
        Ok(ChainsReport { params })
    }

    /// Aggregated execution profile across all chains: per-step work and
    /// wall time summed element-wise (chains share one schedule, so step
    /// labels line up), metadata taken from chain 0. Returns `None` when
    /// nothing was run.
    ///
    /// Because each chain's work counters are deterministic, the work
    /// portion of the aggregate's [`augur_backend::Profile::digest`] is
    /// reproducible at any [`ChainPlan::threads`] count.
    pub fn profile(&self) -> Option<augur_backend::Profile> {
        let mut it = self.profiles.iter();
        let mut total = it.next()?.clone();
        for p in it {
            total.absorb(p);
        }
        Some(total)
    }
}

/// Per-component convergence diagnostics of one recorded parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDiag {
    /// The recorded parameter.
    pub name: String,
    /// The flat component index within the parameter.
    pub index: usize,
    /// Effective sample size, summed across chains.
    pub ess: f64,
    /// Gelman–Rubin split-R̂ across all chains (near 1 = converged).
    pub split_rhat: f64,
}

/// Diagnostics for every recorded scalar component of a multi-chain run
/// (see [`Chains::report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainsReport {
    /// One entry per recorded scalar component, ordered by parameter
    /// name, then component index.
    pub params: Vec<ParamDiag>,
}

impl ChainsReport {
    /// The diagnostics of component `index` of `param`, if recorded.
    pub fn param(&self, param: &str, index: usize) -> Option<&ParamDiag> {
        self.params.iter().find(|p| p.name == param && p.index == index)
    }

    /// The largest split-R̂ across all components — the single number to
    /// check first (near 1 = every recorded component converged).
    pub fn max_split_rhat(&self) -> Option<f64> {
        self.params.iter().map(|p| p.split_rhat).fold(None, |acc, r| {
            Some(match acc {
                Some(a) if a >= r => a,
                _ => r,
            })
        })
    }
}

impl fmt::Display for ChainsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<24} {:>10} {:>10}", "parameter", "ess", "split-Rhat")?;
        for p in &self.params {
            writeln!(f, "{:<24} {:>10.1} {:>10.4}", format!("{}[{}]", p.name, p.index), p.ess, p.split_rhat)?;
        }
        Ok(())
    }
}

/// Builder for a multi-chain run over one shared, already-specialized
/// [`Plan`] — the lifecycle-native fan-out: one compile, N sessions.
///
/// Chains are embarrassingly parallel by construction: each is an
/// independently seeded [`crate::Session`] bound to the same plan, with
/// its seed derived from the base config's seed, so a run is
/// reproducible end to end — at any [`ChainPlan::threads`] count, since
/// results are collected in chain order regardless of completion order.
#[derive(Debug)]
pub struct ChainPlan<'a> {
    plan: &'a Plan,
    config: Option<SessionConfig>,
    n_chains: usize,
    sweeps: usize,
    record: Vec<&'a str>,
    threads: usize,
    checkpoint_dir: Option<PathBuf>,
}

impl<'a> ChainPlan<'a> {
    /// Starts a run over the given plan. Defaults: 4 chains, 1000
    /// sweeps, nothing recorded, one thread, default session config.
    pub fn new(plan: &'a Plan) -> ChainPlan<'a> {
        ChainPlan {
            plan,
            config: None,
            n_chains: 4,
            sweeps: 1000,
            record: Vec::new(),
            threads: 1,
            checkpoint_dir: None,
        }
    }

    /// Overrides the session configuration for every chain (per-chain
    /// seeds are still derived from its seed).
    #[must_use]
    pub fn config(mut self, config: SessionConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Number of independently seeded chains (default 4).
    #[must_use]
    pub fn chains(mut self, n: usize) -> Self {
        self.n_chains = n;
        self
    }

    /// Sweeps per chain (default 1000).
    #[must_use]
    pub fn sweeps(mut self, n: usize) -> Self {
        self.sweeps = n;
        self
    }

    /// Parameters to record after each sweep.
    #[must_use]
    pub fn record(mut self, params: &[&'a str]) -> Self {
        self.record = params.to_vec();
        self
    }

    /// Number of worker threads chains are fanned across (default 1;
    /// `0` = one per available core). Results are identical at every
    /// thread count: chain seeds depend only on the chain index, and
    /// draws are collected in chain order.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = resolve_threads(n);
        self
    }

    /// Periodically checkpoints every chain into `dir` (one
    /// `chain-<c>.ckpt` file per chain, cadence from the config's
    /// `checkpoint_every`). A killed run restarts from those files with
    /// [`ChainPlan::resume_dir`].
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Binds and runs every chain as a session over the shared plan,
    /// fanned across the configured worker threads. A chain that panics
    /// is isolated to a typed error rather than unwinding through the
    /// caller.
    ///
    /// # Errors
    ///
    /// Returns the first (by chain index) build or run error.
    pub fn run(self) -> Result<Chains, Error> {
        let base = self.config.unwrap_or_default();
        fan_chains(FanSpec {
            plan: self.plan,
            base: &base,
            n_chains: self.n_chains,
            sweeps: self.sweeps,
            record: &self.record,
            threads: self.threads,
            checkpoint_dir: self.checkpoint_dir.as_deref(),
            resume: false,
        })
    }

    /// Resumes every chain from `dir/chain-<c>.ckpt` (written by a prior
    /// run with [`ChainPlan::checkpoint_dir`]) and continues each to the
    /// configured total sweep count. The returned draws cover only the
    /// post-resume sweeps, and are byte-identical to the same sweeps of
    /// an uninterrupted run at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Checkpoint`] if a chain's file is missing or does
    /// not match, plus the usual build/run errors.
    pub fn resume_dir(mut self, dir: impl Into<PathBuf>) -> Result<Chains, Error> {
        self.checkpoint_dir = Some(dir.into());
        let base = self.config.unwrap_or_default();
        fan_chains(FanSpec {
            plan: self.plan,
            base: &base,
            n_chains: self.n_chains,
            sweeps: self.sweeps,
            record: &self.record,
            threads: self.threads,
            checkpoint_dir: self.checkpoint_dir.as_deref(),
            resume: true,
        })
    }
}

/// The seed of chain `chain` in a fan-out whose base config seed is
/// `base`: a golden-ratio stride keeps per-chain RNG streams distinct
/// while remaining a pure function of `(base, chain)`. Exported so other
/// fan-out surfaces (e.g. the serving layer) reproduce [`ChainPlan`]
/// runs byte-for-byte.
pub fn chain_seed(base: u64, chain: usize) -> u64 {
    base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chain as u64 + 1))
}

/// `0` = one thread per available core.
fn resolve_threads(n: usize) -> usize {
    match n {
        0 => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        n => n,
    }
}

/// Everything one multi-chain fan-out needs, borrowed from the builder.
struct FanSpec<'a> {
    plan: &'a Plan,
    base: &'a SessionConfig,
    n_chains: usize,
    sweeps: usize,
    record: &'a [&'a str],
    threads: usize,
    checkpoint_dir: Option<&'a Path>,
    resume: bool,
}

/// The shared fan-out: N sessions over one plan, each independently
/// seeded, fanned across worker threads, collected in chain order.
fn fan_chains(spec: FanSpec<'_>) -> Result<Chains, Error> {
    let FanSpec { plan, base, n_chains, sweeps, record, threads, checkpoint_dir, resume } = spec;
    if let (Some(dir), false) = (checkpoint_dir, resume) {
        std::fs::create_dir_all(dir).map_err(|e| {
            Error::Checkpoint(CheckpointError::Io {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })
        })?;
    }
    // Sessions hold non-`Send` trait objects, so each chain's session is
    // bound, initialized (or resumed), and run entirely inside its
    // worker job; the shared `Plan` crosses threads by reference (its
    // artifact is immutable) and only the recorded draws come back.
    type ChainOut = (Vec<HashMap<String, Vec<f64>>>, augur_backend::Profile);
    let run_one = |c: usize| -> Result<ChainOut, Error> {
        let mut chain_cfg = base.clone();
        chain_cfg.seed = chain_seed(base.seed, c);
        let ckpt: Option<PathBuf> = checkpoint_dir.map(|d| chain_file(d, c));
        chain_cfg.checkpoint_path = ckpt.clone();
        let mut session = plan.session(chain_cfg)?;
        let done = if resume {
            let path = ckpt.as_ref().expect("resume_dir sets the directory");
            session.resume(path)? as usize
        } else {
            session.init()?;
            0
        };
        let remaining = sweeps.saturating_sub(done);
        let draws = session.sample(remaining, record)?;
        Ok((draws, session.profile()))
    };
    let results: Vec<Result<_, Error>> = if threads > 1 && n_chains > 1 {
        let pool = Pool::new(threads);
        let jobs = (0..n_chains)
            .map(|c| {
                let run_one = &run_one;
                Box::new(move || run_one(c)) as Box<dyn FnOnce() -> _ + Send + '_>
            })
            .collect();
        pool.try_scatter(jobs)
            .into_iter()
            .enumerate()
            .map(|(c, r)| {
                r.unwrap_or_else(|detail| {
                    Err(Error::WorkerPanic { kernel: format!("chain {c}"), detail })
                })
            })
            .collect()
    } else {
        (0..n_chains).map(run_one).collect()
    };
    let mut draws = Vec::with_capacity(n_chains);
    let mut profiles = Vec::with_capacity(n_chains);
    for r in results {
        let (d, p) = r?;
        draws.push(d);
        profiles.push(p);
    }
    Ok(Chains { draws, profiles })
}

/// The checkpoint file of chain `c` inside `dir`.
fn chain_file(dir: &Path, c: usize) -> PathBuf {
    dir.join(format!("chain-{c}.ckpt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostValue;

    #[test]
    fn chains_differ_but_agree_in_distribution() {
        let model = crate::Model::compile(
            "(N, tau2, s2) => {
                param m ~ Normal(0.0, tau2) ;
                data y[n] ~ Normal(m, s2) for n <- 0 until N ;
            }",
        )
        .unwrap();
        let data = vec![1.2, 0.8, 1.0, 1.4, 0.6];
        let plan = model
            .plan(
                vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
                vec![("y", HostValue::VecF(data.clone()))],
            )
            .unwrap();
        let chains = ChainPlan::new(&plan)
            .chains(4)
            .sweeps(1500)
            .record(&["m"])
            .run()
            .unwrap();
        assert_eq!(chains.num_chains(), 4);
        // all four chains bound sessions off the one specialization
        assert_eq!(model.cache_stats().misses, 1);
        let traces = chains.traces("m", 0).unwrap();
        // distinct seeds ⇒ distinct paths
        assert_ne!(traces[0][..20], traces[1][..20]);
        // pooled mean matches the analytic posterior mean
        let sum: f64 = data.iter().sum();
        let (post_mu, _) = augur_dist::conjugacy::normal_normal_mean(0.0, 4.0, 1.0, sum, 5.0);
        assert!((chains.pooled_mean("m", 0).unwrap() - post_mu).abs() < 0.05);
    }

    #[test]
    fn threaded_chains_match_sequential() {
        let model = crate::Model::compile(
            "(N) => {
                param p ~ Beta(1.0, 1.0) ;
                data y[n] ~ Bernoulli(p) for n <- 0 until N ;
            }",
        )
        .unwrap();
        let plan = model
            .plan(vec![HostValue::Int(2)], vec![("y", HostValue::VecF(vec![1.0, 0.0]))])
            .unwrap();
        let run = |threads: usize| {
            ChainPlan::new(&plan)
                .chains(3)
                .sweeps(5)
                .record(&["p"])
                .threads(threads)
                .run()
                .unwrap()
        };
        let seq = run(1);
        assert_eq!(seq.draws, run(2).draws);
        assert_eq!(seq.draws, run(8).draws);
    }

}
