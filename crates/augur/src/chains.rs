//! Multi-chain execution.
//!
//! The paper contrasts two parallelism strategies: "Jags and Stan support
//! parallel MCMC by running multiple copies of a chain in parallel. In
//! contrast, AugurV2 supports parallel MCMC by parallelizing the
//! computations within a single chain" (§7.2). Both are useful; this
//! module adds the across-chains mode to the compiled sampler — each
//! chain is an independently seeded build of the same compiled model, so
//! chains can also feed convergence diagnostics (split-R̂).

use std::collections::HashMap;

use augur_backend::driver::BuildError;

use crate::{HostValue, Infer, SamplerConfig};

/// The result of a multi-chain run.
#[derive(Debug, Clone)]
pub struct Chains {
    /// Per-chain, per-sweep recordings: `chains[c][s][param]`.
    pub draws: Vec<Vec<HashMap<String, Vec<f64>>>>,
}

impl Chains {
    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.draws.len()
    }

    /// Extracts one scalar trace per chain: component `index` of `param`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter was not recorded or the index is out of
    /// range.
    pub fn traces(&self, param: &str, index: usize) -> Vec<Vec<f64>> {
        self.draws
            .iter()
            .map(|chain| {
                chain
                    .iter()
                    .map(|snap| {
                        *snap
                            .get(param)
                            .unwrap_or_else(|| panic!("`{param}` was not recorded"))
                            .get(index)
                            .unwrap_or_else(|| panic!("`{param}[{index}]` out of range"))
                    })
                    .collect()
            })
            .collect()
    }

    /// Pooled posterior mean of one scalar component across all chains.
    pub fn pooled_mean(&self, param: &str, index: usize) -> f64 {
        let traces = self.traces(param, index);
        let total: f64 = traces.iter().flatten().sum();
        let count: usize = traces.iter().map(Vec::len).sum();
        total / count.max(1) as f64
    }
}

/// Runs `n_chains` independently seeded copies of the compiled model for
/// `sweeps` sweeps each, recording the named parameters.
///
/// Chains run sequentially on this host (the evaluation machine has one
/// core); they are embarrassingly parallel by construction.
///
/// # Errors
///
/// Returns the first build error.
pub fn run_chains(
    infer: &Infer,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    config: &SamplerConfig,
    n_chains: usize,
    sweeps: usize,
    record: &[&str],
) -> Result<Chains, BuildError> {
    let mut draws = Vec::with_capacity(n_chains);
    for c in 0..n_chains {
        let mut chain_cfg = config.clone();
        chain_cfg.seed = config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1));
        let mut infer_c = infer.clone();
        infer_c.set_compile_opt(chain_cfg);
        let mut sampler = infer_c.compile(args.clone()).data(data.clone()).build()?;
        sampler.init();
        draws.push(sampler.sample(sweeps, record));
    }
    Ok(Chains { draws })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_differ_but_agree_in_distribution() {
        let aug = Infer::from_source(
            "(N, tau2, s2) => {
                param m ~ Normal(0.0, tau2) ;
                data y[n] ~ Normal(m, s2) for n <- 0 until N ;
            }",
        )
        .unwrap();
        let data = vec![1.2, 0.8, 1.0, 1.4, 0.6];
        let chains = run_chains(
            &aug,
            vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
            vec![("y", HostValue::VecF(data.clone()))],
            &SamplerConfig::default(),
            4,
            1500,
            &["m"],
        )
        .unwrap();
        assert_eq!(chains.num_chains(), 4);
        let traces = chains.traces("m", 0);
        // distinct seeds ⇒ distinct paths
        assert_ne!(traces[0][..20], traces[1][..20]);
        // pooled mean matches the analytic posterior mean
        let sum: f64 = data.iter().sum();
        let (post_mu, _) = augur_dist::conjugacy::normal_normal_mean(0.0, 4.0, 1.0, sum, 5.0);
        assert!((chains.pooled_mean("m", 0) - post_mu).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "was not recorded")]
    fn missing_param_panics_clearly() {
        let aug = Infer::from_source(
            "(N) => {
                param p ~ Beta(1.0, 1.0) ;
                data y[n] ~ Bernoulli(p) for n <- 0 until N ;
            }",
        )
        .unwrap();
        let chains = run_chains(
            &aug,
            vec![HostValue::Int(2)],
            vec![("y", HostValue::VecF(vec![1.0, 0.0]))],
            &SamplerConfig::default(),
            2,
            5,
            &["p"],
        )
        .unwrap();
        let _ = chains.traces("ghost", 0);
    }
}
