//! **AugurV2-rs** — a Rust reproduction of *"Compiling Markov Chain Monte
//! Carlo Algorithms for Probabilistic Modeling"* (Huang, Tristan &
//! Morrisett, PLDI 2017).
//!
//! AugurV2 is a compiler from a `(model, query)` pair to a *composable
//! MCMC inference algorithm*: models are written in a small first-order
//! language for fixed-structure Bayesian networks, the query asks for
//! posterior samples given observed data, and the compiler derives —
//! through a sequence of intermediate languages — an executable sampler
//! for a CPU or (simulated) GPU target.
//!
//! ```text
//! surface model ──augur_lang──▶ typed AST
//!   ──augur_density──▶ Density IL + symbolic conditionals (§3)
//!   ──augur_kernel───▶ Kernel IL: (κ ku) ⊗ … with conditionals (§4.1–4.2)
//!   ──augur_low──────▶ Low++/Low--: parallel loops, AD, size inference (§4.3–5.2)
//!   ──augur_blk──────▶ Blk IL: parBlk/sumBlk + §5.4 optimizations
//!   ──augur_backend──▶ slot-resolved programs + MCMC runtime library
//! ```
//!
//! This crate is the user-facing entry point. The paper's Python
//! interface (Fig. 2) maps onto a three-stage **plan lifecycle**
//! (`Model` → `Plan` → `Session`) that mirrors how the compiler actually
//! specializes: the shape-generic phases run once per model, the
//! size-dependent phases once per data shape (memoized in a plan cache),
//! and a cheap executable session binds per chain:
//!
//! ```
//! use augur::{Model, SessionConfig, HostValue};
//!
//! // Part 1: data (Fig. 2 loads a file; here: inline observations)
//! let y = vec![1.2, 0.8, 1.0, 1.4, 0.6];
//!
//! // Part 2: invoke AugurV2 — compile once, specialize to the data,
//! // bind an executable session ("Gibbs m" is the user schedule;
//! // `Model::compile` picks the heuristic one).
//! let model = Model::with_schedule("(N, tau2, s2) => {
//!     param m ~ Normal(0.0, tau2) ;
//!     data y[n] ~ Normal(m, s2) for n <- 0 until N ;
//! }", "Gibbs m")?;
//! let plan = model.plan(
//!     vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
//!     vec![("y", HostValue::VecF(y))],
//! )?;
//! let mut session = plan.session(SessionConfig::default())?;
//! session.init()?;
//! let samples = session.sample(100, &["m"])?;
//! assert_eq!(samples.len(), 100);
//!
//! // Part 3: observability — what did every kernel of the sweep do?
//! let report = session.report();
//! assert_eq!(report.sweeps, 100);
//! assert_eq!(report.acceptance_rate("Gibbs Single(m)"), Some(1.0));
//!
//! // Planning the same data shape again is a cache hit: only state
//! // binding re-runs, the compiled tapes are shared.
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod chains;
pub mod codegen;
pub mod diag;
pub mod error;

use augur_backend::driver::BuildError;
use augur_density::DensityModel;

pub use augur_backend::driver::{Session, SessionConfig, Target};
pub use augur_backend::mcmc::McmcConfig;
pub use augur_backend::{
    BackendAvailability, CompiledModel, NativeBreaker, Plan, PlanCacheStats, PlanEvent,
    NATIVE_BREAKER_THRESHOLD,
};
pub use augur_backend::state::HostValue;
pub use augur_backend::{ExecBackend, ExecStrategy};
pub use augur_backend::{Checkpoint, CheckpointError, FaultPlan};
pub use augur_backend::{ExecReport, KernelReport, KernelStats, RunReport};
pub use augur_backend::{ExplainPlan, MemWatermark, Profile, Span, StepProfile};
pub use augur_blk::OptFlags;
pub use chains::{ChainPlan, ChainsReport};
pub use error::{Error, ErrorKind};
pub use gpu_sim::DeviceConfig;

/// One-stop import of the user-facing surface:
///
/// ```
/// use augur::prelude::*;
/// ```
///
/// Everything a typical inference script touches — the plan lifecycle
/// ([`Model`], [`CompiledModel`], [`Plan`], [`Session`],
/// [`SessionConfig`], [`HostValue`], [`Target`], [`ExecBackend`],
/// [`OptFlags`], [`McmcConfig`]), multi-chain runs ([`ChainPlan`]),
/// observing ([`RunReport`], [`KernelStats`], [`ChainsReport`], the
/// [`diag`] estimators), and failing ([`Error`], [`ErrorKind`]). The
/// pre-lifecycle names (`Infer`, `Sampler`, `SamplerConfig`,
/// `ChainRunner`) are gone: `Model` → [`Plan`] → [`Session`] and
/// [`ChainPlan`] are the only entrypoints.
pub mod prelude {
    pub use crate::chains::{ChainPlan, Chains, ChainsReport, ParamDiag};
    pub use crate::diag::{
        autocovariance, ess, ess_per_sec, split_rhat, OnlineParamDiag, Welford,
    };
    pub use crate::{
        BackendAvailability, CompiledModel, Error, ErrorKind, ExecBackend, ExecStrategy,
        ExplainPlan, HostValue, KernelStats, McmcConfig, Model, OptFlags, Plan, PlanCacheStats,
        PlanEvent, Profile, RunReport, Session, SessionConfig, Target,
    };
}

/// Compiler diagnostics produced alongside a build (what the paper's
/// verbose mode prints).
#[derive(Debug, Clone)]
pub struct CompileInfo {
    /// The schedule in Kernel-IL notation, e.g.
    /// `Gibbs Single(pi) (*) Gibbs Single(mu) (*) …`.
    pub kernel: String,
    /// The density factorization, pretty-printed in the paper's notation.
    pub density: String,
    /// Generated procedures rendered as C-like code.
    pub code: String,
}

/// The entry point of the plan lifecycle: compile model source once
/// into a shape-generic [`CompiledModel`], then specialize it to data
/// shapes with [`Model::plan`] (cached), and bind executable
/// [`Session`]s from each plan.
///
/// ```
/// use augur::{Model, SessionConfig, HostValue};
///
/// let model = Model::compile("(N) => {
///     param p ~ Beta(1.0, 1.0) ;
///     data y[n] ~ Bernoulli(p) for n <- 0 until N ;
/// }")?;
/// let plan = model.plan(
///     vec![HostValue::Int(2)],
///     vec![("y", HostValue::VecF(vec![1.0, 0.0]))],
/// )?;
/// let mut session = plan.session(SessionConfig::default())?;
/// session.init()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Model {
    inner: CompiledModel,
}

impl Model {
    /// Runs the shape-generic phases (parse, typecheck, Density IL,
    /// heuristic schedule, Low-- lowering). The result is reusable
    /// across data shapes; see [`Model::plan`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the failing phase.
    pub fn compile(src: &str) -> Result<Model, BuildError> {
        Ok(Model { inner: CompiledModel::compile(src, None)? })
    }

    /// [`Model::compile`] with a user MCMC schedule — the paper's
    /// `setUserSched`, e.g. `"ESlice mu (*) Gibbs z"`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for frontend or schedule failures.
    pub fn with_schedule(src: &str, schedule: &str) -> Result<Model, BuildError> {
        Ok(Model { inner: CompiledModel::compile(src, Some(schedule))? })
    }

    /// Specializes the model to concrete data (the paper's
    /// `aug.compile(args)(data)`), reusing the cached specialization
    /// when the data *shape* has been planned before.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for binding/allocation problems.
    pub fn plan(
        &self,
        args: Vec<HostValue>,
        data: Vec<(&str, HostValue)>,
    ) -> Result<Plan, BuildError> {
        self.inner.plan(args, data)
    }

    /// [`Model::plan`] with explicit Blk-IL optimization flags (they
    /// participate in the plan-cache key).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for binding/allocation problems.
    pub fn plan_opt(
        &self,
        args: Vec<HostValue>,
        data: Vec<(&str, HostValue)>,
        opt_flags: OptFlags,
    ) -> Result<Plan, BuildError> {
        self.inner.plan_opt(args, data, opt_flags)
    }

    /// Plan-cache counters: hits, misses, respecializes, entries.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.inner.cache_stats()
    }

    /// The schedule in Kernel-IL notation, e.g.
    /// `Gibbs Single(mu) (*) Gibbs Single(z)`.
    pub fn kernel(&self) -> String {
        self.inner.labels().join(" (*) ")
    }

    /// The underlying shape-generic artifact.
    pub fn compiled(&self) -> &CompiledModel {
        &self.inner
    }

    /// The density model (for analyses and baselines).
    pub fn density_model(&self) -> &DensityModel {
        self.inner.density_model()
    }

    /// Compiler diagnostics: the schedule in Kernel-IL notation, the
    /// pretty-printed density factorization, and the generated
    /// procedures as C-like code (what the paper's verbose mode prints).
    pub fn compile_info(&self) -> CompileInfo {
        let kernel = self.kernel();
        let density = augur_density::pretty_density(self.inner.density_model());
        let mut code = String::new();
        for p in &self.inner.lowered().procs {
            code.push_str(&augur_low::il::pretty_proc(p));
            code.push('\n');
        }
        CompileInfo { kernel, density, code }
    }

    /// Renders the compiled inference program as the Cuda/C a native
    /// build would compile (the paper's backend output; see [`codegen`]).
    ///
    /// # Errors
    ///
    /// Returns lowering errors from memory explication.
    pub fn emit_native(&self, target: codegen::CodegenTarget) -> Result<String, BuildError> {
        Ok(self.emit_unit(target)?.source)
    }

    /// Like [`emit_native`](Model::emit_native), but returns the full
    /// [`codegen::CodegenUnit`] — source text plus the symbol manifest —
    /// so consumers read kernel/launcher structure from data instead of
    /// re-parsing the text.
    ///
    /// # Errors
    ///
    /// Returns lowering errors from memory explication.
    pub fn emit_unit(
        &self,
        target: codegen::CodegenTarget,
    ) -> Result<codegen::CodegenUnit, BuildError> {
        let mut lowered = self.inner.lowered().clone();
        // Low-- proper: functional primitives become side-effecting
        // stores into planned temporaries (§5.2) before native emission.
        augur_low::memory::make_memory_explicit(&mut lowered)?;
        Ok(codegen::emit(&lowered, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GMM: &str = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param z[n] ~ Categorical(pis) for n <- 0 until N ;
        data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
    }"#;

    #[test]
    fn fig2_workflow_compiles() {
        let model = Model::with_schedule(GMM, "ESlice mu (*) Gibbs z").unwrap();
        let info = model.compile_info();
        assert_eq!(info.kernel, "ESlice Single(mu) (*) Gibbs Single(z)");
        assert!(info.density.contains("Π_{k←0 until K}"));
        assert!(info.code.contains("u1_gibbs() {"));
    }

    #[test]
    fn heuristic_is_used_without_user_schedule() {
        let model = Model::compile(GMM).unwrap();
        // mu conjugate ⇒ Gibbs; z discrete ⇒ Gibbs
        assert_eq!(model.kernel(), "Gibbs Single(mu) (*) Gibbs Single(z)");
    }

    #[test]
    fn bad_schedule_is_rejected_at_compile_time() {
        assert!(Model::with_schedule(GMM, "HMC z (*) Gibbs mu").is_err());
    }

    #[test]
    fn end_to_end_build_and_sample() {
        let model = Model::compile(
            "(N) => {
                param p ~ Beta(1.0, 1.0) ;
                data y[n] ~ Bernoulli(p) for n <- 0 until N ;
            }",
        )
        .unwrap();
        let mut s = model
            .plan(
                vec![HostValue::Int(4)],
                vec![("y", HostValue::VecF(vec![1.0, 1.0, 1.0, 0.0]))],
            )
            .unwrap()
            .session(SessionConfig::default())
            .unwrap();
        s.init().unwrap();
        let samples = s.sample(50, &["p"]).unwrap();
        assert_eq!(samples.len(), 50);
        assert!(samples.iter().all(|m| (0.0..=1.0).contains(&m["p"][0])));
    }
}
