//! **AugurV2-rs** — a Rust reproduction of *"Compiling Markov Chain Monte
//! Carlo Algorithms for Probabilistic Modeling"* (Huang, Tristan &
//! Morrisett, PLDI 2017).
//!
//! AugurV2 is a compiler from a `(model, query)` pair to a *composable
//! MCMC inference algorithm*: models are written in a small first-order
//! language for fixed-structure Bayesian networks, the query asks for
//! posterior samples given observed data, and the compiler derives —
//! through a sequence of intermediate languages — an executable sampler
//! for a CPU or (simulated) GPU target.
//!
//! ```text
//! surface model ──augur_lang──▶ typed AST
//!   ──augur_density──▶ Density IL + symbolic conditionals (§3)
//!   ──augur_kernel───▶ Kernel IL: (κ ku) ⊗ … with conditionals (§4.1–4.2)
//!   ──augur_low──────▶ Low++/Low--: parallel loops, AD, size inference (§4.3–5.2)
//!   ──augur_blk──────▶ Blk IL: parBlk/sumBlk + §5.4 optimizations
//!   ──augur_backend──▶ slot-resolved programs + MCMC runtime library
//! ```
//!
//! This crate is the user-facing entry point. The paper's Python
//! interface (Fig. 2) maps onto a three-stage **plan lifecycle**
//! (`Model` → `Plan` → `Session`) that mirrors how the compiler actually
//! specializes: the shape-generic phases run once per model, the
//! size-dependent phases once per data shape (memoized in a plan cache),
//! and a cheap executable session binds per chain:
//!
//! ```
//! use augur::{Model, SessionConfig, HostValue};
//!
//! // Part 1: data (Fig. 2 loads a file; here: inline observations)
//! let y = vec![1.2, 0.8, 1.0, 1.4, 0.6];
//!
//! // Part 2: invoke AugurV2 — compile once, specialize to the data,
//! // bind an executable session ("Gibbs m" is the user schedule;
//! // `Model::compile` picks the heuristic one).
//! let model = Model::with_schedule("(N, tau2, s2) => {
//!     param m ~ Normal(0.0, tau2) ;
//!     data y[n] ~ Normal(m, s2) for n <- 0 until N ;
//! }", "Gibbs m")?;
//! let plan = model.plan(
//!     vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
//!     vec![("y", HostValue::VecF(y))],
//! )?;
//! let mut session = plan.session(SessionConfig::default())?;
//! session.init()?;
//! let samples = session.sample(100, &["m"])?;
//! assert_eq!(samples.len(), 100);
//!
//! // Part 3: observability — what did every kernel of the sweep do?
//! let report = session.report();
//! assert_eq!(report.sweeps, 100);
//! assert_eq!(report.acceptance_rate("Gibbs Single(m)"), Some(1.0));
//!
//! // Planning the same data shape again is a cache hit: only state
//! // binding re-runs, the compiled tapes are shared.
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod chains;
pub mod codegen;
pub mod diag;
pub mod error;

use augur_backend::driver::BuildError;
use augur_density::DensityModel;
use augur_kernel::{heuristic_schedule, parse_schedule, plan, KernelPlan, Schedule};
use augur_low::LoweredModel;

pub use augur_backend::driver::{Session, SessionConfig, Target};
#[allow(deprecated)]
pub use augur_backend::driver::{Sampler, SamplerConfig};
pub use augur_backend::mcmc::McmcConfig;
pub use augur_backend::{CompiledModel, Plan, PlanCacheStats, PlanEvent};
pub use augur_backend::state::HostValue;
pub use augur_backend::ExecStrategy;
pub use augur_backend::{Checkpoint, CheckpointError, FaultPlan};
pub use augur_backend::{ExecReport, KernelReport, KernelStats, RunReport};
pub use augur_backend::{ExplainPlan, MemWatermark, Profile, Span, StepProfile};
pub use augur_blk::OptFlags;
pub use chains::{ChainPlan, ChainsReport};
#[allow(deprecated)]
pub use chains::ChainRunner;
pub use error::Error;
pub use gpu_sim::DeviceConfig;

/// One-stop import of the user-facing surface:
///
/// ```
/// use augur::prelude::*;
/// ```
///
/// Everything a typical inference script touches — the plan lifecycle
/// ([`Model`], [`CompiledModel`], [`Plan`], [`Session`],
/// [`SessionConfig`], [`HostValue`], [`Target`], [`ExecStrategy`],
/// [`OptFlags`], [`McmcConfig`]), multi-chain runs ([`ChainPlan`]),
/// observing ([`RunReport`], [`KernelStats`], [`ChainsReport`], the
/// [`diag`] estimators), and failing ([`Error`]). The deprecated
/// pre-lifecycle names ([`Infer`], [`Sampler`], [`SamplerConfig`],
/// [`ChainRunner`]) stay importable during migration.
pub mod prelude {
    pub use crate::chains::{ChainPlan, Chains, ChainsReport, ParamDiag};
    #[allow(deprecated)]
    pub use crate::chains::ChainRunner;
    pub use crate::diag::{autocovariance, ess, ess_per_sec, split_rhat};
    pub use crate::{
        CompiledModel, Error, ExecStrategy, ExplainPlan, HostValue, KernelStats, McmcConfig,
        Model, OptFlags, Plan, PlanCacheStats, PlanEvent, Profile, RunReport, Session,
        SessionConfig, Target,
    };
    #[allow(deprecated)]
    pub use crate::{Infer, Sampler, SamplerConfig};
}

/// Compiler diagnostics produced alongside a build (what the paper's
/// verbose mode prints).
#[derive(Debug, Clone)]
pub struct CompileInfo {
    /// The schedule in Kernel-IL notation, e.g.
    /// `Gibbs Single(pi) (*) Gibbs Single(mu) (*) …`.
    pub kernel: String,
    /// The density factorization, pretty-printed in the paper's notation.
    pub density: String,
    /// Generated procedures rendered as C-like code.
    pub code: String,
}

/// The entry point of the plan lifecycle: compile model source once
/// into a shape-generic [`CompiledModel`], then specialize it to data
/// shapes with [`Model::plan`] (cached), and bind executable
/// [`Session`]s from each plan.
///
/// ```
/// use augur::{Model, SessionConfig, HostValue};
///
/// let model = Model::compile("(N) => {
///     param p ~ Beta(1.0, 1.0) ;
///     data y[n] ~ Bernoulli(p) for n <- 0 until N ;
/// }")?;
/// let plan = model.plan(
///     vec![HostValue::Int(2)],
///     vec![("y", HostValue::VecF(vec![1.0, 0.0]))],
/// )?;
/// let mut session = plan.session(SessionConfig::default())?;
/// session.init()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Model {
    inner: CompiledModel,
}

impl Model {
    /// Runs the shape-generic phases (parse, typecheck, Density IL,
    /// heuristic schedule, Low-- lowering). The result is reusable
    /// across data shapes; see [`Model::plan`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the failing phase.
    pub fn compile(src: &str) -> Result<Model, BuildError> {
        Ok(Model { inner: CompiledModel::compile(src, None)? })
    }

    /// [`Model::compile`] with a user MCMC schedule — the paper's
    /// `setUserSched`, e.g. `"ESlice mu (*) Gibbs z"`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for frontend or schedule failures.
    pub fn with_schedule(src: &str, schedule: &str) -> Result<Model, BuildError> {
        Ok(Model { inner: CompiledModel::compile(src, Some(schedule))? })
    }

    /// Specializes the model to concrete data (the paper's
    /// `aug.compile(args)(data)`), reusing the cached specialization
    /// when the data *shape* has been planned before.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for binding/allocation problems.
    pub fn plan(
        &self,
        args: Vec<HostValue>,
        data: Vec<(&str, HostValue)>,
    ) -> Result<Plan, BuildError> {
        self.inner.plan(args, data)
    }

    /// [`Model::plan`] with explicit Blk-IL optimization flags (they
    /// participate in the plan-cache key).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for binding/allocation problems.
    pub fn plan_opt(
        &self,
        args: Vec<HostValue>,
        data: Vec<(&str, HostValue)>,
        opt_flags: OptFlags,
    ) -> Result<Plan, BuildError> {
        self.inner.plan_opt(args, data, opt_flags)
    }

    /// Plan-cache counters: hits, misses, respecializes, entries.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.inner.cache_stats()
    }

    /// The schedule in Kernel-IL notation, e.g.
    /// `Gibbs Single(mu) (*) Gibbs Single(z)` — what
    /// `kernel_plan().kernel()` rendered on the deprecated path.
    pub fn kernel(&self) -> String {
        self.inner.labels().join(" (*) ")
    }

    /// The underlying shape-generic artifact.
    pub fn compiled(&self) -> &CompiledModel {
        &self.inner
    }

    /// The density model (for analyses and baselines).
    pub fn density_model(&self) -> &DensityModel {
        self.inner.density_model()
    }

    /// Compiler diagnostics: the schedule in Kernel-IL notation, the
    /// pretty-printed density factorization, and the generated
    /// procedures as C-like code (what the paper's verbose mode prints).
    pub fn compile_info(&self) -> CompileInfo {
        let kernel = self.kernel();
        let density = augur_density::pretty_density(self.inner.density_model());
        let mut code = String::new();
        for p in &self.inner.lowered().procs {
            code.push_str(&augur_low::il::pretty_proc(p));
            code.push('\n');
        }
        CompileInfo { kernel, density, code }
    }

    /// Renders the compiled inference program as the Cuda/C a native
    /// build would compile (the paper's backend output; see [`codegen`]).
    ///
    /// # Errors
    ///
    /// Returns lowering errors from memory explication.
    pub fn emit_native(&self, target: codegen::CodegenTarget) -> Result<String, BuildError> {
        let mut lowered = self.inner.lowered().clone();
        // Low-- proper: functional primitives become side-effecting
        // stores into planned temporaries (§5.2) before native emission.
        augur_low::memory::make_memory_explicit(&mut lowered)?;
        Ok(codegen::emit(&lowered, target))
    }
}

/// The pre-lifecycle inference object — the paper's `AugurV2Lib.Infer`
/// (Fig. 2). Kept as a thin shim over the [`Model`] → [`Plan`] →
/// [`Session`] lifecycle; prefer [`Model::compile`], which caches
/// specialization work across data shapes instead of recompiling on
/// every build.
#[deprecated(since = "0.6.0", note = "use `Model::compile` → `plan` → `session` instead")]
#[derive(Debug, Clone)]
pub struct Infer {
    model: DensityModel,
    schedule: Option<Schedule>,
    config: SessionConfig,
}

#[allow(deprecated)]
impl Infer {
    /// Parses and type checks a model.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for frontend failures.
    pub fn from_source(src: &str) -> Result<Infer, BuildError> {
        let ast = augur_lang::parse(src)?;
        let typed = augur_lang::typecheck(&ast)?;
        let model = DensityModel::from_typed(&typed)?;
        Ok(Infer { model, schedule: None, config: SessionConfig::default() })
    }

    /// Sets compile options — the paper's `setCompileOpt` (target choice,
    /// seed, MCMC tuning, Blk-IL optimization toggles).
    pub fn set_compile_opt(&mut self, config: SessionConfig) -> &mut Infer {
        self.config = config;
        self
    }

    /// Selects how compiled procedures execute — the flat instruction
    /// tape (the default) or the reference tree-walking interpreter.
    /// Traces are bit-identical either way; `Tree` is the differential
    /// testing oracle.
    pub fn exec_strategy(&mut self, exec: ExecStrategy) -> &mut Infer {
        self.config.exec = exec;
        self
    }

    /// Sets the number of worker threads for within-chain tape execution.
    /// `1` runs sequentially, `0` uses one thread per available core.
    /// Sampled traces are **bit-identical at every thread count**: every
    /// parallel region derives its random streams from counter-based
    /// per-thread RNGs and merges writes in a fixed order (see `DESIGN.md`
    /// § Deterministic parallelism), so threading is purely a throughput
    /// knob, never a reproducibility trade-off.
    pub fn threads(&mut self, n: usize) -> &mut Infer {
        self.config.threads = n;
        self
    }

    /// Sets a user MCMC schedule — the paper's `setUserSched`, e.g.
    /// `"ESlice mu (*) Gibbs z"`. Chainable, consistent with
    /// [`Infer::threads`] and [`Infer::exec_strategy`].
    ///
    /// # Panics
    ///
    /// Panics on unparseable schedules; use [`Infer::try_schedule`] for a
    /// fallible variant.
    pub fn schedule(&mut self, sched: &str) -> &mut Infer {
        self.try_schedule(sched).expect("invalid schedule");
        self
    }

    /// Fallible [`Infer::schedule`].
    ///
    /// # Errors
    ///
    /// Returns the schedule parse error.
    pub fn try_schedule(&mut self, sched: &str) -> Result<&mut Infer, BuildError> {
        self.schedule = Some(parse_schedule(sched)?);
        Ok(self)
    }

    /// Deprecated name for [`Infer::schedule`].
    ///
    /// # Panics
    ///
    /// Panics on unparseable schedules.
    #[deprecated(since = "0.1.0", note = "use `Infer::schedule` instead")]
    pub fn set_user_sched(&mut self, sched: &str) -> &mut Infer {
        self.schedule(sched)
    }

    /// Deprecated name for [`Infer::try_schedule`].
    ///
    /// # Errors
    ///
    /// Returns the schedule parse error.
    #[deprecated(since = "0.1.0", note = "use `Infer::try_schedule` instead")]
    pub fn try_user_sched(&mut self, sched: &str) -> Result<&mut Infer, BuildError> {
        self.try_schedule(sched)
    }

    /// The validated kernel plan (schedule + conditionals) without
    /// building a sampler — useful for inspecting what the compiler chose.
    ///
    /// # Errors
    ///
    /// Returns planning errors (e.g. a `Gibbs` request with no conjugacy).
    pub fn kernel_plan(&self) -> Result<KernelPlan, BuildError> {
        let sched = match &self.schedule {
            Some(s) => s.clone(),
            None => heuristic_schedule(&self.model)?,
        };
        Ok(plan(&self.model, &sched)?)
    }

    /// Lowers the model and returns compiler diagnostics.
    ///
    /// # Errors
    ///
    /// Returns planning or lowering errors.
    pub fn compile_info(&self) -> Result<CompileInfo, BuildError> {
        let kp = self.kernel_plan()?;
        let lowered = augur_low::lower(&self.model, &kp)?;
        let kernel = format!("{}", kp.kernel());
        let density = augur_density::pretty_density(&self.model);
        let mut code = String::new();
        for p in &lowered.procs {
            code.push_str(&augur_low::il::pretty_proc(p));
            code.push('\n');
        }
        Ok(CompileInfo { kernel, density, code })
    }

    /// The density model (for analyses and baselines).
    pub fn model(&self) -> &DensityModel {
        &self.model
    }

    /// Renders the compiled inference program as the Cuda/C a native build
    /// would compile (the paper's backend output; see [`codegen`]).
    ///
    /// # Errors
    ///
    /// Returns planning or lowering errors.
    pub fn emit_native(&self, target: codegen::CodegenTarget) -> Result<String, BuildError> {
        let kp = self.kernel_plan()?;
        let mut lowered = augur_low::lower(&self.model, &kp)?;
        // Low-- proper: functional primitives become side-effecting stores
        // into planned temporaries (§5.2) before native emission.
        augur_low::memory::make_memory_explicit(&mut lowered)?;
        Ok(codegen::emit(&lowered, target))
    }

    /// Starts a compile with positional model arguments, in declaration
    /// order (the paper's `aug.compile(K, N, mu0, S0, pis, S)`).
    pub fn compile(&self, args: Vec<HostValue>) -> CompileBuilder<'_> {
        CompileBuilder { infer: self, args, data: Vec::new() }
    }
}

/// Builder returned by [`Infer::compile`]; supply data and build.
#[deprecated(since = "0.6.0", note = "use `Model::compile` → `plan` → `session` instead")]
#[derive(Debug)]
pub struct CompileBuilder<'a> {
    #[allow(deprecated)]
    infer: &'a Infer,
    args: Vec<HostValue>,
    data: Vec<(&'a str, HostValue)>,
}

#[allow(deprecated)]
impl<'a> CompileBuilder<'a> {
    /// Binds observed data by variable name (the paper's trailing `(x)`).
    pub fn data(mut self, data: Vec<(&'a str, HostValue)>) -> CompileBuilder<'a> {
        self.data.extend(data);
        self
    }

    /// Runs the middle-end and backend, producing a runnable sampler.
    ///
    /// The sampler carries a compile-time explain plan
    /// (`Sampler::explain()`): the kernel-plan and density spans are
    /// derived from the validated plan here, and the backend appends its
    /// size-inference, autodiff, and codegen spans. (The frontend ran at
    /// [`Infer::from_source`] time, so its span carries no wall time on
    /// this path.)
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] naming the failing phase.
    pub fn build(self) -> Result<Session, BuildError> {
        let t0 = std::time::Instant::now();
        let kp = self.infer.kernel_plan()?;
        let (density, mut kernel) = augur_backend::driver::explain_plan_spans(&kp);
        kernel.wall_secs = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let lowered: LoweredModel = augur_low::lower(&self.infer.model, &kp)?;
        let lowering =
            augur_backend::profile::Span::timed("lowering", t0.elapsed().as_secs_f64());
        Session::from_lowered_explained(
            &self.infer.model,
            &lowered,
            self.args,
            self.data,
            self.infer.config.clone(),
            vec![density, kernel, lowering],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GMM: &str = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
        param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
        param z[n] ~ Categorical(pis) for n <- 0 until N ;
        data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
    }"#;

    #[test]
    fn fig2_workflow_compiles() {
        let model = Model::with_schedule(GMM, "ESlice mu (*) Gibbs z").unwrap();
        let info = model.compile_info();
        assert_eq!(info.kernel, "ESlice Single(mu) (*) Gibbs Single(z)");
        assert!(info.density.contains("Π_{k←0 until K}"));
        assert!(info.code.contains("u1_gibbs() {"));
    }

    #[test]
    fn heuristic_is_used_without_user_schedule() {
        let model = Model::compile(GMM).unwrap();
        // mu conjugate ⇒ Gibbs; z discrete ⇒ Gibbs
        assert_eq!(model.kernel(), "Gibbs Single(mu) (*) Gibbs Single(z)");
    }

    #[test]
    fn bad_schedule_is_rejected_at_compile_time() {
        assert!(Model::with_schedule(GMM, "HMC z (*) Gibbs mu").is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_sched_setters_still_work() {
        let mut aug = Infer::from_source(GMM).unwrap();
        aug.set_user_sched("ESlice mu (*) Gibbs z");
        let via_old = format!("{}", aug.kernel_plan().unwrap().kernel());
        let mut aug2 = Infer::from_source(GMM).unwrap();
        aug2.schedule("ESlice mu (*) Gibbs z");
        assert_eq!(via_old, format!("{}", aug2.kernel_plan().unwrap().kernel()));
        assert!(aug.try_user_sched("NotAKernel q").is_err());
    }

    #[test]
    fn end_to_end_build_and_sample() {
        let model = Model::compile(
            "(N) => {
                param p ~ Beta(1.0, 1.0) ;
                data y[n] ~ Bernoulli(p) for n <- 0 until N ;
            }",
        )
        .unwrap();
        let mut s = model
            .plan(
                vec![HostValue::Int(4)],
                vec![("y", HostValue::VecF(vec![1.0, 1.0, 1.0, 0.0]))],
            )
            .unwrap()
            .session(SessionConfig::default())
            .unwrap();
        s.init().unwrap();
        let samples = s.sample(50, &["p"]).unwrap();
        assert_eq!(samples.len(), 50);
        assert!(samples.iter().all(|m| (0.0..=1.0).contains(&m["p"][0])));
    }
}
