//! Deterministic trace/span identifiers for request tracing.
//!
//! Conventional tracing systems mint ids from a wall-clock + random
//! source; this repo's serving layer is differential-tested — the same
//! submission order must produce byte-identical trace files — so ids
//! are derived instead: the trace id from `(service seed, request id)`
//! through a splitmix64 finalizer, and each span id from
//! `(trace id, stage tag)` through FNV-1a. Both render as 16 lowercase
//! hex digits, so one `grep <trace-id> trace.jsonl` reconstructs a
//! request's full lifecycle.

/// The splitmix64 finalizer: a cheap, well-mixed 64→64 bijection.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic trace id for request `request_id` of a service
/// seeded with `seed`: 16 hex digits, stable across runs and platforms.
pub fn trace_id(seed: u64, request_id: u64) -> String {
    format!("{:016x}", splitmix64(seed ^ request_id.wrapping_mul(0x2545_F491_4F6C_DD1D)))
}

/// The deterministic span id for lifecycle stage `tag` of `trace`:
/// 16 hex digits. Distinct tags (and distinct traces) give distinct
/// spans; the same `(trace, tag)` always gives the same span, which is
/// what lets a retried slice point back at the attempt it replaces.
pub fn span_id(trace: &str, tag: &str) -> String {
    let mut bytes = Vec::with_capacity(trace.len() + tag.len() + 1);
    bytes.extend_from_slice(trace.as_bytes());
    bytes.push(b'/');
    bytes.extend_from_slice(tag.as_bytes());
    format!("{:016x}", splitmix64(fnv1a(&bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id(7, 1), trace_id(7, 1));
        assert_ne!(trace_id(7, 1), trace_id(7, 2));
        assert_ne!(trace_id(7, 1), trace_id(8, 1));
        let t = trace_id(7, 1);
        assert_eq!(span_id(&t, "submit"), span_id(&t, "submit"));
        assert_ne!(span_id(&t, "submit"), span_id(&t, "plan"));
        assert_ne!(span_id(&t, "chain0/slice0"), span_id(&t, "chain0/slice1"));
    }

    #[test]
    fn ids_are_sixteen_hex_digits() {
        for id in [trace_id(0, 0), span_id(&trace_id(0, 0), "x")] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()), "{id}");
        }
    }
}
