//! **augur-obs** — the dependency-free telemetry plane.
//!
//! Everything the serving stack exposes to an operator at runtime
//! lives here, built on `std` alone so the hermetic offline build
//! stays hermetic:
//!
//! * [`MetricsRegistry`]: labeled counters, gauges, and fixed-bucket
//!   histograms with lock-cheap atomic recording, rendered in the
//!   Prometheus text exposition format (see [`registry`]);
//! * [`TelemetryServer`]: a minimal HTTP exporter over
//!   `std::net::TcpListener` serving `/metrics`, `/healthz`, and
//!   `/statusz` (see [`exporter`]);
//! * [`trace`]: deterministic trace/span-id derivation, so the v4
//!   request-lifecycle JSONL records stay byte-identical across
//!   differential runs while still reconstructing a request with one
//!   grep.
//!
//! ```
//! use augur_obs::{GaugeMode, MetricsRegistry};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(MetricsRegistry::new());
//! let served = reg.counter("augur_served_total", "Requests served.", &[("model", "hgmm")]);
//! served.inc();
//! let depth = reg.gauge("augur_queue_depth", "Queued tasks.", &[], GaugeMode::Standard);
//! depth.set(3.0);
//! let text = reg.render();
//! assert!(text.contains("augur_served_total{model=\"hgmm\"} 1"));
//! assert!(text.contains("augur_queue_depth 3"));
//! ```

#![deny(missing_docs)]

pub mod exporter;
pub mod registry;
pub mod trace;

pub use exporter::{Endpoints, Health, TelemetryServer};
pub use registry::{Counter, Gauge, GaugeMode, Histogram, MetricsRegistry};
