//! The HTTP exporter: a minimal `std::net::TcpListener` server giving
//! operators three scrape surfaces over a [`MetricsRegistry`]:
//!
//! * `/metrics` — the registry in Prometheus text exposition format;
//! * `/healthz` — a JSON liveness probe (status 200/503 from the
//!   owner's health callback);
//! * `/statusz` — a human-readable status page from the owner's status
//!   callback.
//!
//! The server is deliberately tiny: HTTP/1.0 semantics, one request
//! per connection, `Connection: close`, no TLS, no keep-alive — it is
//! an observability side-channel, not a web framework, and it must not
//! pull any dependency into the hermetic build.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// What the owner's health callback reports.
#[derive(Debug, Clone)]
pub struct Health {
    /// `true` → `/healthz` answers 200, `false` → 503.
    pub healthy: bool,
    /// The response body (conventionally JSON).
    pub body: String,
}

/// The callbacks an exporter serves besides the registry itself.
pub struct Endpoints {
    /// Invoked per `/healthz` request.
    pub health: Box<dyn Fn() -> Health + Send + Sync>,
    /// Invoked per `/statusz` request.
    pub status: Box<dyn Fn() -> String + Send + Sync>,
}

impl Default for Endpoints {
    fn default() -> Self {
        Endpoints {
            health: Box::new(|| Health { healthy: true, body: "{\"status\":\"ok\"}".into() }),
            status: Box::new(|| "ok\n".into()),
        }
    }
}

/// A running telemetry server. Dropping it (or calling
/// [`shutdown`](TelemetryServer::shutdown)) stops the accept loop and
/// joins the serving thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks an ephemeral
    /// port — read it back with [`local_addr`](TelemetryServer::local_addr))
    /// and starts the serving thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        endpoints: Endpoints,
    ) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = registry.counter(
            "augur_telemetry_scrapes_total",
            "Scrapes served, by endpoint.",
            &[("endpoint", "/metrics")],
        );
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("augur-telemetry".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // A stalled client must not wedge the exporter.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    serve_one(stream, &registry, &endpoints, &scrapes);
                }
            })
            .expect("spawn telemetry server thread");
        Ok(TelemetryServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept call with a throwaway connection; if the
        // listener bound a wildcard address, poke loopback instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(std::net::Ipv4Addr::LOCALHOST.into());
        }
        let _ = TcpStream::connect_timeout(&poke, Duration::from_millis(250));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request off the stream and answers it.
fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    endpoints: &Endpoints,
    scrapes: &crate::registry::Counter,
) {
    let Some((method, path)) = read_request(&mut stream) else {
        return;
    };
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path.as_str() {
            "/metrics" => {
                scrapes.inc();
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", registry.render())
            }
            "/healthz" => {
                let h = (endpoints.health)();
                (
                    if h.healthy { "200 OK" } else { "503 Service Unavailable" },
                    "application/json; charset=utf-8",
                    h.body,
                )
            }
            "/statusz" => ("200 OK", "text/plain; charset=utf-8", (endpoints.status)()),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    let _ = stream.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    let _ = stream.write_all(body.as_bytes());
}

/// Parses `GET /path HTTP/1.x` off the wire; query strings are
/// stripped. `None` on anything malformed (the connection is just
/// dropped — this is a scrape endpoint, not a public server).
fn read_request(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.split('?').next()?.to_string();
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blocking mini-client for the tests (and reusable shape for the
    /// smoke binaries): returns `(status line, body)`.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
        (head.lines().next().expect("status line").to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_statusz_and_404() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("augur_test_total", "a test counter", &[]).add(3);
        let endpoints = Endpoints {
            health: Box::new(|| Health { healthy: true, body: "{\"status\":\"ok\"}".into() }),
            status: Box::new(|| "status page\n".into()),
        };
        let server =
            TelemetryServer::start("127.0.0.1:0", Arc::clone(&registry), endpoints).expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("augur_test_total 3"), "{body}");
        // The scrape itself is counted (incremented before the render,
        // so the first scrape already sees itself).
        assert!(
            body.contains("augur_telemetry_scrapes_total{endpoint=\"/metrics\"} 1"),
            "{body}"
        );
        let (_, body) = get(addr, "/metrics");
        assert!(
            body.contains("augur_telemetry_scrapes_total{endpoint=\"/metrics\"} 2"),
            "{body}"
        );

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"status\":\"ok\"}");

        let (status, body) = get(addr, "/statusz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "status page\n");

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
    }

    #[test]
    fn unhealthy_health_answers_503_and_shutdown_is_idempotent() {
        let registry = Arc::new(MetricsRegistry::new());
        let endpoints = Endpoints {
            health: Box::new(|| Health { healthy: false, body: "{\"status\":\"down\"}".into() }),
            ..Default::default()
        };
        let mut server = TelemetryServer::start("127.0.0.1:0", registry, endpoints).expect("bind");
        let (status, body) = get(server.local_addr(), "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("down"));
        server.shutdown();
        server.shutdown();
    }
}
