//! The metrics registry: labeled counters, gauges, and fixed-bucket
//! histograms with lock-cheap atomic recording, rendered in the
//! Prometheus text exposition format.
//!
//! # Design
//!
//! Recording is the hot path and must not perturb serving latency, so
//! every instrument is a handful of atomics behind an `Arc`: callers
//! hold the `Arc<Counter>`/`Arc<Gauge>`/`Arc<Histogram>` directly and
//! record with relaxed atomic ops — no name lookup, no lock. The
//! registry's own lock is taken only at registration (get-or-create of
//! a series) and at render time, both cold paths.
//!
//! Series identity is `(family name, sorted label pairs)`; registering
//! the same identity twice returns the same instrument, which is what
//! lets independent subsystems (service front-end, plan cache mirror,
//! breaker mirror) share series safely.
//!
//! Pull-model sources — the plan cache, the circuit breakers, queue
//! depths — register a **collect hook** ([`MetricsRegistry::on_collect`])
//! that runs at the top of every [`MetricsRegistry::render`] and copies
//! the current source state into mirrored instruments, the classic
//! Prometheus collector pattern.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the total — for counters that *mirror* an external
    /// cumulative source (plan-cache hit totals, breaker trip totals)
    /// inside a collect hook, where the source already owns
    /// monotonicity.
    pub fn store(&self, total: u64) {
        self.value.store(total, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// How a gauge behaves when the registry renders it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeMode {
    /// Rendering reads the value and leaves it alone (the default).
    Standard,
    /// Rendering *takes* the value, resetting it to zero — a windowed
    /// gauge: each scrape observes the extremum/accumulation since the
    /// previous scrape (used for `queue_high_water`, whose since-start
    /// variant hides per-window behavior).
    ResetOnCollect,
}

/// A gauge: an `f64` that can go up and down. Stored as raw bits in an
/// `AtomicU64`, so recording is a single relaxed store and `set_max` is
/// a short CAS loop.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    mode: GaugeMode,
}

impl Gauge {
    fn new(mode: GaugeMode) -> Gauge {
        Gauge { bits: AtomicU64::new(0f64.to_bits()), mode }
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water tracking).
    /// NaN is ignored.
    pub fn set_max(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds `d` (CAS loop; gauges move rarely enough that contention is
    /// immaterial).
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Takes the current value, resetting the gauge to zero (what a
    /// render does for [`GaugeMode::ResetOnCollect`] gauges).
    pub fn take(&self) -> f64 {
        f64::from_bits(self.bits.swap(0f64.to_bits(), Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Observations land in the first bucket
/// whose upper bound is `>= v` (cumulative `le` semantics at render
/// time, per the Prometheus exposition format), plus an implicit
/// `+Inf` bucket; the sum, count, and exact maximum ride along so
/// snapshot-style summaries don't lose the tail to bucket resolution.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The default latency bounds (seconds): 1ms → 60s, roughly
    /// logarithmic.
    pub fn latency_bounds() -> &'static [f64] {
        &[
            0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
            60.0,
        ]
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // Sum and max via CAS loops (f64 bits in AtomicU64).
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The exact largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// `(upper bound, cumulative count)` per bucket, ending with the
    /// `(+Inf ≡ f64::INFINITY, total)` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }

    /// The `q`-quantile estimated from the buckets: linear
    /// interpolation inside the bucket holding the target rank, the
    /// exact max for the overflow bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            if cum + in_bucket >= rank {
                if i >= self.bounds.len() {
                    return self.max();
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let into = (rank - cum) as f64 / in_bucket as f64;
                return (lo + (hi - lo) * into).min(self.max());
            }
            cum += in_bucket;
        }
        self.max()
    }
}

/// What kind of instrument a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

type CollectHook = Box<dyn Fn() + Send + Sync>;

/// The registry: a named set of metric families, each holding one
/// series per label set, plus the collect hooks run before every
/// render. See the [module docs](self) for the locking story.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    hooks: Mutex<Vec<CollectHook>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry").field("families", &fams.len()).finish_non_exhaustive()
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn series<T, F, G>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: F,
        extract: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> (Arc<T>, Instrument),
        G: Fn(&Instrument) -> Option<Arc<T>>,
    {
        let wanted = sorted_labels(labels);
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        assert!(fam.kind == kind, "metric family `{name}` registered with two kinds");
        if let Some(s) = fam.series.iter().find(|s| s.labels == wanted) {
            return extract(&s.instrument)
                .unwrap_or_else(|| unreachable!("family kind checked above"));
        }
        let (handle, instrument) = make();
        fam.series.push(Series { labels: wanted, instrument });
        handle
    }

    /// Get-or-create the counter series `(name, labels)`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series(
            name,
            help,
            Kind::Counter,
            labels,
            || {
                let c = Arc::new(Counter::default());
                (Arc::clone(&c), Instrument::Counter(c))
            },
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get-or-create the gauge series `(name, labels)`. The mode is
    /// fixed by the first registration.
    pub fn gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        mode: GaugeMode,
    ) -> Arc<Gauge> {
        self.series(
            name,
            help,
            Kind::Gauge,
            labels,
            || {
                let g = Arc::new(Gauge::new(mode));
                (Arc::clone(&g), Instrument::Gauge(g))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get-or-create the histogram series `(name, labels)` with the
    /// given upper bounds (ignored when the series already exists).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.series(
            name,
            help,
            Kind::Histogram,
            labels,
            || {
                let h = Arc::new(Histogram::new(bounds));
                (Arc::clone(&h), Instrument::Histogram(h))
            },
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers a collect hook, run (in registration order) at the top
    /// of every [`render`](MetricsRegistry::render) — the pull path for
    /// sources that own their counters (plan cache, breakers, queues).
    pub fn on_collect(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.hooks.lock().unwrap_or_else(|e| e.into_inner()).push(Box::new(hook));
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4), running collect hooks first. Families
    /// render in name order, series in label order — the output is
    /// deterministic for a given state.
    pub fn render(&self) -> String {
        {
            let hooks = self.hooks.lock().unwrap_or_else(|e| e.into_inner());
            for hook in hooks.iter() {
                hook();
            }
        }
        let fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            let mut series: Vec<&Series> = fam.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match &s.instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&s.labels, None),
                            c.get()
                        ));
                    }
                    Instrument::Gauge(g) => {
                        let v = match g.mode {
                            GaugeMode::Standard => g.get(),
                            GaugeMode::ResetOnCollect => g.take(),
                        };
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&s.labels, None),
                            fmt_f64(v)
                        ));
                    }
                    Instrument::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            let le = if bound.is_infinite() {
                                "+Inf".to_string()
                            } else {
                                fmt_f64(bound)
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                render_labels(&s.labels, Some(("le", &le)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(&s.labels, None),
                            fmt_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(&s.labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Formats a float the exposition format accepts (`NaN`, `+Inf`,
/// `-Inf`, or the shortest round-trip decimal).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// `{k="v",...}` with an optional extra pair appended (the histogram
/// `le` label); empty label sets render as nothing.
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("augur_x_total", "x", &[("model", "m")]);
        let b = reg.counter("augur_x_total", "x", &[("model", "m")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels → different series.
        let c = reg.counter("augur_x_total", "x", &[("model", "other")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn render_is_well_formed_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("augur_b_total", "second", &[]).add(7);
        reg.gauge("augur_a", "first", &[("k", "v")], GaugeMode::Standard).set(1.5);
        let text = reg.render();
        let a = text.find("augur_a").unwrap();
        let b = text.find("augur_b_total").unwrap();
        assert!(a < b, "families must render in name order:\n{text}");
        assert!(text.contains("# TYPE augur_a gauge"));
        assert!(text.contains("augur_a{k=\"v\"} 1.5"));
        assert!(text.contains("augur_b_total 7"));
    }

    #[test]
    fn reset_on_collect_gauges_window_between_renders() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("augur_hw", "high water", &[], GaugeMode::ResetOnCollect);
        g.set_max(3.0);
        g.set_max(2.0);
        assert!(reg.render().contains("augur_hw 3"));
        // The render consumed the window.
        assert!(reg.render().contains("augur_hw 0"));
        g.set_max(1.0);
        assert!(reg.render().contains("augur_hw 1"));
    }

    #[test]
    fn histogram_buckets_cumulate_and_quantiles_interpolate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("augur_lat_seconds", "latency", &[], &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.05, 0.5, 2.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 2.6).abs() < 1e-12);
        assert_eq!(h.max(), 2.0);
        assert_eq!(h.cumulative_buckets(), vec![(0.1, 2), (1.0, 3), (10.0, 4), (f64::INFINITY, 4)]);
        // p50 → rank 2 → first bucket, fully into it.
        assert!((h.quantile(0.5) - 0.1).abs() < 1e-12);
        // The max rides along exactly even though 2.0 sits mid-bucket.
        assert_eq!(h.quantile(1.0), 2.0);
        let text = reg.render();
        assert!(text.contains("augur_lat_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("augur_lat_seconds_count 4"));
    }

    #[test]
    fn collect_hooks_run_before_render() {
        let reg = Arc::new(MetricsRegistry::new());
        let g = reg.gauge("augur_pulled", "pulled", &[], GaugeMode::Standard);
        let hook_g = Arc::clone(&g);
        reg.on_collect(move || hook_g.set(42.0));
        assert!(reg.render().contains("augur_pulled 42"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("augur_esc_total", "esc", &[("m", "a\"b\\c")]).inc();
        assert!(reg.render().contains("augur_esc_total{m=\"a\\\"b\\\\c\"} 1"));
    }
}
