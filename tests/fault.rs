//! Fault-injection drills: deterministically injected NaN densities,
//! worker panics, and trace-sink I/O failures must each surface as a
//! recorded numerical event or a typed error — never a process abort,
//! never a silently poisoned chain.

use augur::{
    Error, ExecBackend, FaultPlan, HostValue, McmcConfig, Model, Session, SessionConfig,
};
use augur_backend::fault::{NanFault, PanicFault};

const GAMMA_POISSON: &str = "(N, a, b) => {
    param r ~ Gamma(a, b) ;
    data c[n] ~ Poisson(r) for n <- 0 until N ;
}";

const NORMAL_NORMAL: &str = "(N, tau2, s2) => {
    param m ~ Normal(0.0, tau2) ;
    data y[n] ~ Normal(m, s2) for n <- 0 until N ;
}";

fn gibbs_sampler(config: SessionConfig) -> Session {
    let model = Model::compile(GAMMA_POISSON).unwrap();
    let mut s = model
        .plan(
            vec![HostValue::Int(6), HostValue::Real(2.0), HostValue::Real(1.0)],
            vec![("c", HostValue::VecF(vec![3.0, 5.0, 4.0, 2.0, 6.0, 4.0]))],
        )
        .unwrap()
        .session(config)
        .unwrap();
    s.init().unwrap();
    s
}

fn hmc_sampler(config: SessionConfig) -> Session {
    let model = Model::with_schedule(NORMAL_NORMAL, "HMC m").unwrap();
    let mut s = model
        .plan(
            vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
            vec![("y", HostValue::VecF(vec![1.2, 0.8, 1.0, 1.4, 0.6]))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 0.15, leapfrog_steps: 10, ..config.mcmc },
            ..config
        })
        .unwrap();
    s.init().unwrap();
    s
}

/// A NaN injected into a Gibbs conditional on one sweep is contained: the
/// target is restored, a numerical event is recorded, and every later
/// sweep proceeds as if the proposal had been rejected.
#[test]
fn injected_gibbs_nan_is_contained_as_a_numerical_event() {
    for exec in [ExecBackend::Tree, ExecBackend::Tape] {
        let plan = FaultPlan {
            nan: vec![NanFault { proc_name: "u0_gibbs".to_owned(), sweep: Some(5) }],
            ..Default::default()
        };
        let mut s = gibbs_sampler(SessionConfig {
            backend: exec,
            fault: Some(plan),
            checkpoint_every: 0,
            ..Default::default()
        });
        for _ in 0..10 {
            s.try_sweep().unwrap_or_else(|e| panic!("{exec:?}: sweep failed: {e}"));
        }
        assert!(s.param("r").unwrap().iter().all(|x| x.is_finite()), "{exec:?}: poisoned");
        let report = s.report();
        let total: u64 = report.kernels.iter().map(|k| k.stats.numerical_events).sum();
        assert_eq!(total, 1, "{exec:?}: exactly the injected event is recorded");
    }
}

/// A NaN injected into an HMC log-likelihood procedure forces a rejection
/// and records numerical events; the chain state stays finite.
#[test]
fn injected_hmc_nan_rejects_and_stays_finite() {
    for exec in [ExecBackend::Tree, ExecBackend::Tape] {
        let plan = FaultPlan {
            nan: vec![NanFault { proc_name: "u0_ll".to_owned(), sweep: Some(3) }],
            ..Default::default()
        };
        let mut s = hmc_sampler(SessionConfig {
            backend: exec,
            fault: Some(plan),
            checkpoint_every: 0,
            ..Default::default()
        });
        for _ in 0..8 {
            s.try_sweep().unwrap_or_else(|e| panic!("{exec:?}: sweep failed: {e}"));
        }
        assert!(s.param("m").unwrap()[0].is_finite(), "{exec:?}: poisoned");
        let report = s.report();
        let total: u64 = report.kernels.iter().map(|k| k.stats.numerical_events).sum();
        assert!(total > 0, "{exec:?}: injected NaN left no recorded event");
    }
}

/// Away from the injected fault, the chain is bit-identical to a clean
/// run up to the fault sweep: injection has no side channel.
#[test]
fn fault_plan_is_inert_before_its_sweep() {
    let run = |fault: Option<FaultPlan>| {
        let mut s = gibbs_sampler(SessionConfig {
            fault,
            checkpoint_every: 0,
            ..Default::default()
        });
        (0..6).map(|_| { s.sweep(); s.param("r").unwrap()[0].to_bits() }).collect::<Vec<_>>()
    };
    let clean = run(None);
    let faulted = run(Some(FaultPlan {
        nan: vec![NanFault { proc_name: "u0_gibbs".to_owned(), sweep: Some(7) }],
        ..Default::default()
    }));
    assert_eq!(clean, faulted, "a pending fault perturbed earlier sweeps");
}

/// An injected worker panic surfaces as `RunError::WorkerPanic` from
/// `try_sweep`, the process does not abort, and the sampler object stays
/// usable for subsequent sweeps.
#[test]
fn injected_worker_panic_is_isolated_to_a_typed_error() {
    let plan = FaultPlan {
        panics: vec![PanicFault { worker: 0, sweep: Some(3) }],
        ..Default::default()
    };
    let mut s = gibbs_sampler(SessionConfig {
        backend: ExecBackend::Tape,
        threads: 2,
        fault: Some(plan),
        checkpoint_every: 0,
        ..Default::default()
    });
    s.try_sweep().unwrap();
    s.try_sweep().unwrap();
    let err = s.try_sweep().expect_err("sweep 3 must fail");
    let shown = format!("{err}");
    assert!(shown.contains("panicked"), "unexpected error: {shown}");
    assert!(shown.contains("fault injection"), "payload lost: {shown}");
    assert_eq!(s.sweeps(), 2, "the failed sweep is not counted as done");
    // A failed sweep does not advance the sweep counter, so retrying hits
    // the same injected fault: the error is deterministic, the pool is
    // rebuilt each time, and the process never aborts. (Recovery from a
    // persistent fault is via checkpoint resume, not retry.)
    let again = format!("{}", s.try_sweep().expect_err("retry hits the same fault"));
    assert_eq!(shown, again, "isolation must be deterministic");
}

/// The same panic drill through the high-level `sample` API returns a
/// typed `Error::WorkerPanic` instead of unwinding through the caller.
#[test]
fn sample_surfaces_worker_panic_as_typed_error() {
    let plan = FaultPlan {
        panics: vec![PanicFault { worker: 0, sweep: Some(2) }],
        ..Default::default()
    };
    let mut s = gibbs_sampler(SessionConfig {
        backend: ExecBackend::Tape,
        threads: 2,
        fault: Some(plan),
        checkpoint_every: 0,
        ..Default::default()
    });
    match s.sample(5, &["r"]).map_err(Error::from) {
        Err(Error::WorkerPanic { detail, .. }) => {
            assert!(detail.contains("fault injection"), "payload lost: {detail}")
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

/// `io@trace` makes every JSONL write fail; the run keeps going and the
/// report counts the dropped records without perturbing the digest.
#[test]
fn trace_io_faults_are_counted_not_fatal() {
    let path = std::env::temp_dir().join(format!(
        "augur_fault_trace_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let sweeps = 12u64;
    let run = |fault: Option<FaultPlan>, trace: bool| {
        let mut s = gibbs_sampler(SessionConfig {
            trace_path: trace.then(|| path.clone()),
            fault,
            checkpoint_every: 0,
            ..Default::default()
        });
        for _ in 0..sweeps {
            s.sweep();
        }
        s.report()
    };
    let clean = run(None, false);
    let faulted = run(Some(FaultPlan { trace_io: true, ..Default::default() }), true);
    std::fs::remove_file(&path).ok();
    assert_eq!(faulted.trace_records_dropped, sweeps, "every record dropped");
    assert_eq!(clean.trace_records_dropped, 0);
    assert_eq!(clean.digest(), faulted.digest(), "drop counter leaked into the digest");
}

/// The `AUGUR_FAULT` grammar parses compound plans and rejects malformed
/// clauses with a typed error.
#[test]
fn fault_grammar_round_trips() {
    let plan = FaultPlan::parse("nan@proc:u0_gibbs:sweep=5; panic@worker:1; io@trace").unwrap();
    assert_eq!(plan.nan.len(), 1);
    assert_eq!(plan.nan[0].proc_name, "u0_gibbs");
    assert_eq!(plan.nan[0].sweep, Some(5));
    assert_eq!(plan.panics.len(), 1);
    assert_eq!(plan.panics[0].worker, 1);
    assert_eq!(plan.panics[0].sweep, None);
    assert!(plan.trace_io);
    assert!(FaultPlan::parse("nan@proc").is_err());
    assert!(FaultPlan::parse("frobnicate@everything").is_err());
}
