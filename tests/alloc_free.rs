//! Steady-state sweeps perform **zero heap allocation** — the plan
//! lifecycle's runtime claim, enforced with a counting global allocator.
//!
//! All buffers are bound up front by size inference (§5.2 of the paper
//! allocates everything before the first sweep); after one warm-up sweep
//! touches every code path, a sweep must not allocate on either executor
//! lane. This file contains a single `#[test]` so the process-wide
//! counter sees only the session under measurement (the cargo test
//! harness would otherwise interleave allocations from sibling tests).
//!
//! Known allocation sources deliberately *outside* steady state and
//! therefore outside the measured window: plan/session construction,
//! `init()` (ancestral sampling builds its scratch), the warm-up sweeps,
//! checkpoint writes, and the JSONL trace sink's `BufWriter` (no trace
//! is configured here).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use augur::{ExecBackend, HostValue, McmcConfig, Model, SessionConfig};
use augur_math::Matrix;
use augurv2::{models, workloads};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// While set, the first allocation panics instead of counting — the
/// resulting unwind is caught by `try_sweep`'s kernel isolation, so a
/// regression fails with the *name of the allocating kernel* (and a
/// backtrace under `RUST_BACKTRACE=1`) rather than a bare count.
static TRAP: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers every operation to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.swap(0, Ordering::Relaxed) == 1 {
            panic!("steady-state alloc of {} bytes", layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.swap(0, Ordering::Relaxed) == 1 {
            panic!("steady-state alloc_zeroed of {} bytes", layout.size());
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.swap(0, Ordering::Relaxed) == 1 {
            panic!("steady-state realloc to {new_size} bytes");
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed across `sweeps` steady-state sweeps, after
/// `warmup` unmeasured sweeps.
fn allocs_during_sweeps(s: &mut augur::Session, warmup: usize, sweeps: usize) -> u64 {
    s.init().unwrap();
    for _ in 0..warmup {
        s.sweep();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    TRAP.store(1, Ordering::Relaxed);
    for _ in 0..sweeps {
        s.sweep();
    }
    TRAP.store(0, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_sweeps_do_not_allocate() {
    let cases: Vec<(&str, augur::Plan, &str)> = {
        let (k, d, n) = (2, 2, 50);
        let mix = workloads::hgmm_data(k, d, n, 5);
        let hgmm = Model::compile(models::HGMM)
            .unwrap()
            .plan(
                vec![
                    HostValue::Int(k as i64),
                    HostValue::Int(n as i64),
                    HostValue::VecF(vec![1.0; k]),
                    HostValue::VecF(vec![0.0; d]),
                    HostValue::Mat(Matrix::identity(d).scale(50.0)),
                    HostValue::Real((d + 2) as f64),
                    HostValue::Mat(Matrix::identity(d)),
                ],
                vec![("y", HostValue::Ragged(mix.points))],
            )
            .unwrap();

        let topics = 4;
        let corpus = workloads::lda_corpus(3, 12, 100, 18, 9);
        let lda = Model::compile(models::LDA)
            .unwrap()
            .plan(
                vec![
                    HostValue::Int(topics as i64),
                    HostValue::Int(corpus.docs.len() as i64),
                    HostValue::VecF(vec![0.5; topics]),
                    HostValue::VecF(vec![0.1; corpus.vocab]),
                    HostValue::VecI(corpus.lens.clone()),
                ],
                vec![("w", HostValue::RaggedI(corpus.docs))],
            )
            .unwrap();

        let (hn, hd) = (40, 4);
        let log = workloads::logistic_data(hn, hd, 13);
        let hlr = Model::compile(models::HLR)
            .unwrap()
            .plan(
                vec![
                    HostValue::Real(1.0),
                    HostValue::Int(hn as i64),
                    HostValue::Int(hd as i64),
                    HostValue::Ragged(log.x),
                ],
                vec![("y", HostValue::VecF(log.y))],
            )
            .unwrap();
        vec![("hgmm", hgmm, "mu"), ("lda", lda, "theta"), ("hlr", hlr, "theta")]
    };

    let mcmc = McmcConfig { step_size: 0.01, leapfrog_steps: 5, ..Default::default() };
    for (name, plan, param) in &cases {
        for exec in [ExecBackend::Tree, ExecBackend::Tape] {
            let mut s = plan
                .session(SessionConfig {
                    backend: exec,
                    threads: 1,
                    mcmc: mcmc.clone(),
                    ..Default::default()
                })
                .unwrap();
            let n = allocs_during_sweeps(&mut s, 3, 10);
            assert_eq!(
                n, 0,
                "{name}/{exec:?}: {n} heap allocations across 10 steady-state sweeps"
            );
            // the chain actually moved — this wasn't a no-op sweep
            assert!(s.param(param).unwrap().iter().all(|x| x.is_finite()));
            assert_eq!(s.sweeps(), 13, "{name}/{exec:?} ran the expected sweeps");
        }
    }
}
