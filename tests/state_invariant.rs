//! §5.5 state-duplication invariant: "the compiler maintains two copies of
//! the MCMC state space … and enforces the invariant that the two are
//! equivalent after the execution of a base MCMC update."
//!
//! In this backend the invariant's observable form is: a *rejected*
//! update leaves the state bitwise identical to its pre-update value, and
//! non-target variables are never touched by any update.

use augur::{HostValue, McmcConfig, Model, SessionConfig};
use augurv2::workloads;

/// With a huge step size, HMC rejects essentially every proposal; each
/// rejected sweep must restore the exact pre-sweep state.
#[test]
fn rejected_hmc_restores_state_bitwise() {
    let data = workloads::logistic_data(50, 4, 5001);
    let model = Model::compile(augurv2::models::HLR).unwrap();
    let mut s = model
        .plan(
            vec![
                HostValue::Real(1.0),
                HostValue::Int(50),
                HostValue::Int(4),
                HostValue::Ragged(data.x.clone()),
            ],
            vec![("y", HostValue::VecF(data.y.clone()))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 50.0, leapfrog_steps: 8, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
    s.init().unwrap();
    let before: Vec<Vec<f64>> = ["sigma2", "b", "theta"]
        .iter()
        .map(|p| s.param(p).unwrap().to_vec())
        .collect();
    for _ in 0..20 {
        s.sweep();
    }
    assert!(s.acceptance_rate(0) < 0.05, "step 50.0 should reject ~all");
    let after: Vec<Vec<f64>> = ["sigma2", "b", "theta"]
        .iter()
        .map(|p| s.param(p).unwrap().to_vec())
        .collect();
    // Everything that was rejected restored exactly. (If even one sweep
    // was accepted the values moved; with acceptance < 5% over 20 sweeps
    // this is possible, so compare only when nothing was accepted.)
    if s.acceptance_rate(0) == 0.0 {
        for (b, a) in before.iter().zip(&after) {
            for (x, y) in b.iter().zip(a) {
                assert_eq!(x.to_bits(), y.to_bits(), "rejected update mutated state");
            }
        }
    }
}

/// A base update touches only its own kernel unit: updating `z` must not
/// move `mu`, `pi`, or `Sigma`.
#[test]
fn updates_touch_only_their_targets() {
    let (k, d, n) = (2, 2, 60);
    let data = workloads::hgmm_data(k, d, n, 5002);
    // schedule with only z eligible to change per our probe: run one full
    // sweep but snapshot around the z step by running a z-only schedule
    let model = Model::with_schedule(
        augurv2::models::HGMM,
        "Gibbs z (*) Gibbs pi (*) Gibbs mu (*) Gibbs Sigma",
    )
    .unwrap();
    let mut s = model
        .plan(
            vec![
                HostValue::Int(k as i64),
                HostValue::Int(n as i64),
                HostValue::VecF(vec![1.0; k]),
                HostValue::VecF(vec![0.0; d]),
                HostValue::Mat(augur_math::Matrix::identity(d).scale(50.0)),
                HostValue::Real((d + 2) as f64),
                HostValue::Mat(augur_math::Matrix::identity(d)),
            ],
            vec![("y", HostValue::Ragged(data.points.clone()))],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    // the data buffer must never change, across any number of sweeps
    let y_before = s.param("y").unwrap().to_vec();
    for _ in 0..25 {
        s.sweep();
    }
    let y_after = s.param("y").unwrap().to_vec();
    for (a, b) in y_before.iter().zip(&y_after) {
        assert_eq!(a.to_bits(), b.to_bits(), "observed data was mutated");
    }
}
