//! The §5.2 memory-explication pass must be semantics-preserving: a
//! sampler built from the memory-explicit Low-- form produces the exact
//! chain of the functional form.

use augur::{HostValue, Model, Session, SessionConfig};
use augurv2::workloads;

#[test]
fn memory_explicit_lowering_is_bit_identical() {
    let (k, d, n) = (2, 2, 80);
    let data = workloads::hgmm_data(k, d, n, 6001);
    let args = || {
        vec![
            HostValue::Int(k as i64),
            HostValue::Int(n as i64),
            HostValue::VecF(vec![1.0; k]),
            HostValue::VecF(vec![0.0; d]),
            HostValue::Mat(augur_math::Matrix::identity(d).scale(50.0)),
            HostValue::Real((d + 2) as f64),
            HostValue::Mat(augur_math::Matrix::identity(d)),
        ]
    };
    let model = Model::compile(augurv2::models::HGMM).unwrap();
    let dm = model.density_model();
    let sched = augur_kernel::heuristic_schedule(dm).unwrap();
    let kp = augur_kernel::plan(dm, &sched).unwrap();
    let lowered = augur_low::lower(dm, &kp).unwrap();
    let mut explicit = lowered.clone();
    let hoisted = augur_low::memory::make_memory_explicit(&mut explicit).unwrap();
    assert!(hoisted > 0);

    let build = |lm: &augur_low::LoweredModel| {
        let mut s = Session::from_lowered(
            dm,
            lm,
            args(),
            vec![("y", HostValue::Ragged(data.points.clone()))],
            SessionConfig::default(),
        )
        .unwrap();
        s.init().unwrap();
        for _ in 0..30 {
            s.sweep();
        }
        (s.param("mu").unwrap().to_vec(), s.param("pi").unwrap().to_vec(), s.param("z").unwrap().to_vec())
    };
    let (mu_a, pi_a, z_a) = build(&lowered);
    let (mu_b, pi_b, z_b) = build(&explicit);
    for (a, b) in mu_a.iter().zip(&mu_b) {
        assert_eq!(a.to_bits(), b.to_bits(), "mu diverged");
    }
    for (a, b) in pi_a.iter().zip(&pi_b) {
        assert_eq!(a.to_bits(), b.to_bits(), "pi diverged");
    }
    assert_eq!(z_a, z_b, "assignments diverged");
}

#[test]
fn emitted_c_uses_explicit_temporaries() {
    let model = Model::compile(augurv2::models::HGMM).unwrap();
    let c = model.emit_native(augur::codegen::CodegenTarget::C).unwrap();
    // the functional form `MvNormal(mat_vec(mat_inv(...)), ...)` is gone:
    // temporaries are assigned first, then consumed
    assert!(c.contains("_tmp"), "{c}");
    assert!(c.contains("static augur_buf_t u1_gibbs_tmp0;"), "{c}");
}
