//! Golden tests for the generated code on the benchmark models: lock the
//! *structure* of every compiled update so rewrite/lowering regressions
//! surface as diffs here.

use augur::Model;
use augurv2::models;

fn code(src: &str, sched: Option<&str>) -> String {
    let model = match sched {
        Some(s) => Model::with_schedule(src, s),
        None => Model::compile(src),
    }
    .unwrap();
    model.compile_info().code
}

#[test]
fn hgmm_gibbs_structure_is_stable() {
    let c = code(models::HGMM, None);
    // π: Dirichlet counts over assignments
    assert!(c.contains("u0_t0_cnt[z[n]] += 1.0;"), "{c}");
    assert!(c.contains("pi = Dirichlet(vec_add(alpha, u0_t0_cnt)).samp;"), "{c}");
    // μ: per-cluster sums under the categorical-indexing rewrite
    assert!(c.contains("u1_t0_sum[z[n]] += y[n];"), "{c}");
    assert!(c.contains("mu[k] = MvNormal("), "{c}");
    // Σ: scatter accumulation and the InvWishart posterior
    assert!(c.contains("u2_t0_scatter[z[n]] += outer_sub(y[n], mu[z[n]]);"), "{c}");
    assert!(c.contains("Sigma[k] = InvWishart((nu + u2_t0_cnt[k]), mat_add(Psi, u2_t0_scatter[k])).samp;"), "{c}");
    // z: parallel finite-sum enumeration over len(pi) candidates
    assert!(c.contains("loop Seq (u3_c <- 0 until len(pi))"), "{c}");
    assert!(c.contains("z[n] = CategoricalLogits(u3_w).samp;"), "{c}");
    // initializer samples in declaration order
    let init_pos = c.find("init_params() {").expect("init proc");
    assert!(c[init_pos..].contains("pi = Dirichlet(alpha).samp;"));
}

#[test]
fn lda_gibbs_structure_is_stable() {
    let c = code(models::LDA, None);
    // θ: per-document topic counts (factoring rule, no indicator)
    assert!(c.contains("u0_t0_cnt[d][z[d][j]] += 1.0;"), "{c}");
    assert!(c.contains("theta[d] = Dirichlet(vec_add(alpha, u0_t0_cnt[d])).samp;"), "{c}");
    // φ: per-topic word counts (categorical-indexing rewrite)
    assert!(c.contains("u1_t0_cnt[z[d][j]][w[d][j]] += 1.0;"), "{c}");
    assert!(c.contains("phi[k] = Dirichlet(vec_add(beta, u1_t0_cnt[k])).samp;"), "{c}");
    // z: both factors scored per candidate
    assert!(c.contains("u2_w[u2_c] += Categorical(theta[d]).ll(u2_c);"), "{c}");
    assert!(c.contains("u2_w[u2_c] += Categorical(phi[u2_c]).ll(w[d][j]);"), "{c}");
}

#[test]
fn hlr_hmc_structure_is_stable() {
    let c = code(models::HLR, None);
    // stabilized logit-form likelihood in ll and grad
    assert!(c.contains("BernoulliLogit((dot(x[n], theta) + b)).ll(y[n])"), "{c}");
    assert!(c.contains("BernoulliLogit((dot(x[n], theta) + b)).grad2(y[n])"), "{c}");
    // adjoint accumulation: vector chain rule through dot, scalar into b
    assert!(c.contains("u0_adj_theta += vec_scale("), "{c}");
    assert!(c.contains("u0_adj_b += BernoulliLogit"), "{c}");
    // the prior's variance gradient — the §5.4 contention example
    assert!(c.contains("u0_adj_sigma2 += Normal(0.0, sigma2).grad3(theta[j]);"), "{c}");
}

#[test]
fn gmm_eslice_structure_is_stable() {
    let c = code(models::GMM, Some("ESlice mu (*) Gibbs z"));
    // likelihood-only procedure for the slice (prior excluded)
    let lik_start = c.find("u0_lik() {").expect("lik proc");
    let lik_end = c[lik_start..].find("}\n").unwrap() + lik_start;
    let lik = &c[lik_start..lik_end];
    assert!(lik.contains("MvNormal(mu[z[n]], Sigma).ll(x[n])"), "{lik}");
    assert!(!lik.contains("MvNormal(mu_0, Sigma_0)"), "{lik}");
    // prior sampler and prior mean writers
    assert!(c.contains("u0_nu[k] = MvNormal(mu_0, Sigma_0).samp;"), "{c}");
    assert!(c.contains("u0_pm[k] = mu_0;"), "{c}");
}

#[test]
fn cuda_emission_structure_is_stable() {
    use augur::codegen::SymbolKind;
    let model = Model::compile(models::HGMM).unwrap();
    let unit = model.emit_unit(augur::codegen::CodegenTarget::Cuda).unwrap();
    // one kernel per top-level parallel loop, read off the symbol
    // manifest rather than grepped out of the text; canonical prologue
    let kernels: Vec<_> = unit
        .symbols
        .iter()
        .filter(|s| matches!(s.kind, SymbolKind::CudaKernel { .. }))
        .collect();
    assert!(kernels.len() >= 6, "{kernels:?}");
    assert!(
        kernels.iter().any(|s| s.kind == SymbolKind::CudaKernel { atomic: true }),
        "counting kernels serialize through atomics: {kernels:?}"
    );
    let cu = unit.source;
    assert_eq!(cu.matches("__global__ void").count(), kernels.len(), "{cu}");
    assert!(cu.contains("int n = blockIdx.x * blockDim.x + threadIdx.x + 0;"), "{cu}");
    // counting kernels use atomicAdd
    assert!(cu.contains("atomicAdd(&u0_t0_cnt[z[n]], 1.0);"), "{cu}");
    // the sweep is the ⊗-composition in schedule order
    let sweep = cu.find("void mcmc_sweep").unwrap();
    let (p0, p1, p2, p3) = (
        cu[sweep..].find("u0_gibbs").unwrap(),
        cu[sweep..].find("u1_gibbs").unwrap(),
        cu[sweep..].find("u2_gibbs").unwrap(),
        cu[sweep..].find("u3_gibbs").unwrap(),
    );
    assert!(p0 < p1 && p1 < p2 && p2 < p3);
}
