//! Differential tests for the native (emit-C-and-`dlopen`) backend.
//!
//! `ExecBackend::Native` must reproduce the reference tree-walking
//! interpreter — and therefore the tape — *bit-for-bit* on the paper's
//! three benchmark models: the same trajectories, the same run-report
//! digest, and the same profile work digest. The compiled C charges the
//! identical work counters and draws from the identical per-thread RNG
//! streams, so any divergence (a fused multiply-add, a reordered draw, a
//! skipped work charge) surfaces as a trace mismatch on sweep one.
//!
//! When the host has no C toolchain (or `AUGUR_CC` points at a
//! nonexistent binary), every test here still passes: sessions record a
//! fallback reason and run on the tape, and the differential assertions
//! are skipped with a note.

use augur::codegen::{CodegenTarget, SymbolKind};
use augur::prelude::*;
use augur_math::Matrix;
use augurv2::{models, workloads};

/// Whether the native backend is selectable on this host: the feature
/// is on and a C toolchain answers the probe (or the probe plan's
/// artifact is already in the disk cache, which needs no compiler).
fn native_available() -> bool {
    let model = Model::compile(
        "(N) => {
            param p ~ Beta(1.0, 1.0) ;
            data y[n] ~ Bernoulli(p) for n <- 0 until N ;
        }",
    )
    .unwrap();
    let plan = model
        .plan(vec![HostValue::Int(2)], vec![("y", HostValue::VecF(vec![1.0, 0.0]))])
        .unwrap();
    plan.backends()
        .iter()
        .any(|b| b.backend == ExecBackend::Native && b.available)
}

fn config(backend: ExecBackend, threads: usize) -> SessionConfig {
    SessionConfig {
        backend,
        threads,
        mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..Default::default() },
        seed: 0xD1FF,
        ..Default::default()
    }
}

/// Runs one sampler and returns the recorded trajectories as raw bits
/// (`out[sweep][cell]`), the run-report digest, and the profile work
/// digest. Panics if a `Native` session silently fell back.
#[allow(clippy::too_many_arguments)]
fn run(
    label: &str,
    model: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    record: &[&str],
    sweeps: usize,
    backend: ExecBackend,
    threads: usize,
) -> (Vec<Vec<u64>>, String, String) {
    let compiled = match sched {
        Some(s) => Model::with_schedule(model, s),
        None => Model::compile(model),
    }
    .expect("model parses");
    let mut s = compiled
        .plan(args, data)
        .expect("model plans")
        .session(config(backend, threads))
        .expect("session binds");
    if backend == ExecBackend::Native {
        assert_eq!(
            s.backend(),
            ExecBackend::Native,
            "{label}: native session fell back: {:?}",
            s.backend_fallback()
        );
    }
    s.init().unwrap();
    let traces: Vec<Vec<u64>> = s
        .sample(sweeps, record)
        .unwrap()
        .iter()
        .map(|snap| {
            record
                .iter()
                .flat_map(|p| snap[*p].iter().map(|x| x.to_bits()))
                .collect()
        })
        .collect();
    (traces, s.report().digest(), s.profile().digest())
}

/// Native vs tree trajectories, and native vs tape report/profile
/// digests, at 1 and 8 requested threads.
#[allow(clippy::too_many_arguments)]
fn assert_native_matches(
    label: &str,
    model: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    record: &[&str],
    sweeps: usize,
) {
    if !native_available() {
        eprintln!("{label}: no C toolchain, skipping native differential");
        return;
    }
    let (tree, _, _) = run(
        label,
        model,
        sched,
        args.clone(),
        data.clone(),
        record,
        sweeps,
        ExecBackend::Tree,
        1,
    );
    let (_, tape_report, tape_profile) = run(
        label,
        model,
        sched,
        args.clone(),
        data.clone(),
        record,
        sweeps,
        ExecBackend::Tape,
        1,
    );
    for threads in [1, 8] {
        let (native, report, profile) = run(
            label,
            model,
            sched,
            args.clone(),
            data.clone(),
            record,
            sweeps,
            ExecBackend::Native,
            threads,
        );
        assert_eq!(tree.len(), native.len(), "{label}: sweep counts differ");
        for (s, (a, b)) in tree.iter().zip(&native).enumerate() {
            assert_eq!(
                a, b,
                "{label}: native ({threads} threads) diverged from tree at sweep {s}"
            );
        }
        assert_eq!(report, tape_report, "{label}: report digest ({threads} threads)");
        assert_eq!(profile, tape_profile, "{label}: profile digest ({threads} threads)");
    }
}

fn hgmm_args(k: usize, d: usize, n: usize) -> Vec<HostValue> {
    vec![
        HostValue::Int(k as i64),
        HostValue::Int(n as i64),
        HostValue::VecF(vec![1.0; k]),
        HostValue::VecF(vec![0.0; d]),
        HostValue::Mat(Matrix::identity(d).scale(50.0)),
        HostValue::Real((d + 2) as f64),
        HostValue::Mat(Matrix::identity(d)),
    ]
}

fn lda_args(topics: usize, corpus: &augurv2::workloads::Corpus) -> Vec<HostValue> {
    vec![
        HostValue::Int(topics as i64),
        HostValue::Int(corpus.docs.len() as i64),
        HostValue::VecF(vec![0.5; topics]),
        HostValue::VecF(vec![0.1; corpus.vocab]),
        HostValue::VecI(corpus.lens.clone()),
    ]
}

#[test]
fn hgmm_native_matches_tree_and_tape() {
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 91);
    assert_native_matches(
        "hgmm/gibbs",
        models::HGMM,
        None,
        hgmm_args(k, d, n),
        vec![("y", HostValue::Ragged(data.points.clone()))],
        &["pi", "mu", "Sigma", "z"],
        25,
    );
}

#[test]
fn lda_native_matches_tree_and_tape() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    assert_native_matches(
        "lda/gibbs",
        models::LDA,
        None,
        lda_args(topics, &corpus),
        vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        &["theta", "phi", "z"],
        15,
    );
}

#[test]
fn hlr_native_matches_tree_and_tape() {
    let d = 4;
    let data = workloads::logistic_data(60, d, 17);
    assert_native_matches(
        "hlr/hmc",
        models::HLR,
        None, // heuristic: blocked HMC over the continuous parameters
        vec![
            HostValue::Real(1.0),
            HostValue::Int(60),
            HostValue::Int(d as i64),
            HostValue::Ragged(data.x.clone()),
        ],
        vec![("y", HostValue::VecF(data.y.clone()))],
        &["sigma2", "b", "theta"],
        25,
    );
}

/// When this plan's `backends()` row says `Native` is available (a
/// toolchain answers the probe, or the plan's artifact is already in
/// the disk cache): a `Native` session really runs natively — no
/// fallback, procedures covered. When it says unavailable: the session
/// records the reason, runs on the tape, and stays bit-identical to a
/// tape session — the graceful-degradation contract of the redesigned
/// API. Either way, what `backends()` promises is what sessions do.
#[test]
fn native_runs_or_records_a_fallback_reason() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    let model = Model::compile(models::LDA).unwrap();
    let plan = model
        .plan(lda_args(topics, &corpus), vec![("w", HostValue::RaggedI(corpus.docs.clone()))])
        .unwrap();
    let promised = plan
        .backends()
        .iter()
        .any(|b| b.backend == ExecBackend::Native && b.available);
    let mut s = plan.session(config(ExecBackend::Native, 1)).unwrap();
    s.init().unwrap();
    let draws = s.sample(5, &["theta"]).unwrap();
    if promised {
        assert_eq!(s.backend(), ExecBackend::Native);
        assert_eq!(s.backend_fallback(), None);
        let module = plan.native_module().expect("toolchain or cached artifact present");
        assert!(module.covered() > 0, "no procedure compiled natively");
    } else {
        assert_eq!(s.backend(), ExecBackend::Tape, "fallback runs on the tape");
        let reason = s.backend_fallback().expect("fallback reason recorded");
        assert!(!reason.is_empty());
    }
    // Either way the draws are the tape's draws, bit for bit.
    let mut t = plan.session(config(ExecBackend::Tape, 1)).unwrap();
    t.init().unwrap();
    let tape_draws = t.sample(5, &["theta"]).unwrap();
    for (a, b) in draws.iter().zip(&tape_draws) {
        let (a, b) = (&a["theta"], &b["theta"]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// The emitted C for the LDA plan is part of the crate's observable
/// behavior: one translation unit, restrict-qualified flat buffers,
/// inlined hot-path distribution code, and the exported `aug_procs`
/// entry table. Pin it (pure emission — no toolchain needed).
#[test]
fn golden_native_c_for_lda() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    let model = Model::compile(models::LDA).unwrap();
    let plan = model
        .plan(lda_args(topics, &corpus), vec![("w", HostValue::RaggedI(corpus.docs.clone()))])
        .unwrap();
    let unit = plan.emit(CodegenTarget::C).unwrap();
    assert!(
        unit.symbols.iter().all(|s| s.kind == SymbolKind::NativeProc),
        "C target emits native procs only: {:?}",
        unit.symbols
    );
    assert!(!unit.symbols.is_empty(), "LDA should have native-covered procedures");
    let got = &unit.source;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lda_native.c");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, got).expect("write golden file");
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file exists; run with UPDATE_GOLDEN=1 to regenerate");
    assert_eq!(
        got.trim(),
        expected.trim(),
        "emitted C changed; if intentional, rerun with UPDATE_GOLDEN=1, review the diff, \
         and bump CODEGEN_VERSION if the ABI or semantics moved"
    );
}
