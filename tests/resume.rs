//! Fault-tolerance tests: kill-and-resume from a checkpoint must be
//! invisible — the resumed chain's trace and final report digest are
//! byte-identical to an uninterrupted run, in both execution lanes and at
//! any worker-thread count.

use std::path::PathBuf;

use augur::{ExecBackend, HostValue, McmcConfig, Model, Session, SessionConfig};
use augur_math::Matrix;
use augurv2::{models, workloads};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "augur_resume_{tag}_{}_{:?}.ckpt",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// The per-sweep trajectory of every parameter, as raw bits.
fn record_sweeps(s: &mut Session, n: u64) -> Vec<Vec<u64>> {
    let names: Vec<String> = s.param_names().to_vec();
    (0..n)
        .map(|_| {
            s.sweep();
            names
                .iter()
                .flat_map(|p| s.param(p).unwrap().iter().map(|x| x.to_bits()))
                .collect()
        })
        .collect()
}

fn hgmm_sampler(config: SessionConfig) -> Session {
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 7);
    Model::compile(models::HGMM)
        .unwrap()
        .plan(
            vec![
                HostValue::Int(k as i64),
                HostValue::Int(n as i64),
                HostValue::VecF(vec![1.0; k]),
                HostValue::VecF(vec![0.0; d]),
                HostValue::Mat(Matrix::identity(d).scale(50.0)),
                HostValue::Real((d + 2) as f64),
                HostValue::Mat(Matrix::identity(d)),
            ],
            vec![("y", HostValue::Ragged(data.points.clone()))],
        )
        .unwrap()
        .session(config)
        .unwrap()
}

fn lda_sampler(config: SessionConfig) -> Session {
    let topics = 2;
    let corpus = workloads::lda_corpus(topics, 8, 12, 8, 11);
    Model::compile(models::LDA)
        .unwrap()
        .plan(
            vec![
                HostValue::Int(topics as i64),
                HostValue::Int(corpus.docs.len() as i64),
                HostValue::VecF(vec![0.5; topics]),
                HostValue::VecF(vec![0.1; corpus.vocab]),
                HostValue::VecI(corpus.lens.clone()),
            ],
            vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        )
        .unwrap()
        .session(config)
        .unwrap()
}

fn hlr_sampler(config: SessionConfig) -> Session {
    let (n, d) = (30, 3);
    let data = workloads::logistic_data(n, d, 13);
    Model::compile(models::HLR)
        .unwrap()
        .plan(
            vec![
                HostValue::Real(1.0),
                HostValue::Int(n as i64),
                HostValue::Int(d as i64),
                HostValue::Ragged(data.x.clone()),
            ],
            vec![("y", HostValue::VecF(data.y.clone()))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..config.mcmc },
            ..config
        })
        .unwrap()
}

fn kill_resume_is_invisible(
    tag: &str,
    build: fn(SessionConfig) -> Session,
    exec: ExecBackend,
    threads: usize,
) {
    let config = || SessionConfig {
        backend: exec,
        threads,
        checkpoint_every: 0, // checkpoints are written explicitly below
        ..Default::default()
    };
    let total = 30u64;
    let kill_at = 13u64;

    // Reference: one uninterrupted run.
    let mut s = build(config());
    s.init().unwrap();
    let reference = record_sweeps(&mut s, total);
    let reference_digest = s.report().digest();

    // Interrupted run: sweep to the kill point, checkpoint, and drop the
    // sampler entirely (the "kill").
    let path = tmp(&format!("{tag}_{threads}"));
    let mut prefix = {
        let mut s = build(config());
        s.init().unwrap();
        let prefix = record_sweeps(&mut s, kill_at);
        s.write_checkpoint(&path).unwrap();
        prefix
    };

    // Resume in a fresh process-equivalent: new sampler, no init.
    let mut s = build(config());
    assert_eq!(s.resume(&path).unwrap(), kill_at);
    assert_eq!(s.sweeps(), kill_at);
    prefix.extend(record_sweeps(&mut s, total - kill_at));
    std::fs::remove_file(&path).ok();

    assert_eq!(prefix, reference, "{tag}: resumed trajectory diverged");
    assert_eq!(
        s.report().digest(),
        reference_digest,
        "{tag}: resumed report digest diverged"
    );
}

#[test]
fn hgmm_kill_resume_tree_and_tape_all_thread_counts() {
    kill_resume_is_invisible("hgmm_tree", hgmm_sampler, ExecBackend::Tree, 1);
    for threads in [1, 2, 8] {
        kill_resume_is_invisible("hgmm_tape", hgmm_sampler, ExecBackend::Tape, threads);
    }
}

#[test]
fn lda_kill_resume_tree_and_tape_all_thread_counts() {
    kill_resume_is_invisible("lda_tree", lda_sampler, ExecBackend::Tree, 1);
    for threads in [1, 2, 8] {
        kill_resume_is_invisible("lda_tape", lda_sampler, ExecBackend::Tape, threads);
    }
}

#[test]
fn hlr_kill_resume_tree_and_tape_all_thread_counts() {
    kill_resume_is_invisible("hlr_tree", hlr_sampler, ExecBackend::Tree, 1);
    for threads in [1, 2, 8] {
        kill_resume_is_invisible("hlr_tape", hlr_sampler, ExecBackend::Tape, threads);
    }
}

/// A checkpoint written under one thread count resumes bit-exactly under
/// another: determinism is thread-count invariant, and the snapshot
/// carries everything the trajectory depends on.
#[test]
fn checkpoint_resumes_across_thread_counts() {
    let config = |threads| SessionConfig {
        backend: ExecBackend::Tape,
        threads,
        checkpoint_every: 0,
        ..Default::default()
    };
    let mut s = hgmm_sampler(config(1));
    s.init().unwrap();
    let reference = record_sweeps(&mut s, 24);

    let path = tmp("cross_threads");
    let mut prefix = {
        let mut s = hgmm_sampler(config(1));
        s.init().unwrap();
        let prefix = record_sweeps(&mut s, 10);
        s.write_checkpoint(&path).unwrap();
        prefix
    };
    let mut s = hgmm_sampler(config(8));
    s.resume(&path).unwrap();
    prefix.extend(record_sweeps(&mut s, 14));
    std::fs::remove_file(&path).ok();
    assert_eq!(prefix, reference, "thread-count change across resume diverged");
}

/// Periodic checkpointing via `checkpoint_every` leaves a resumable file
/// behind without the caller ever asking for a write.
#[test]
fn periodic_checkpoints_are_written_and_resumable() {
    let path = tmp("periodic");
    let mut s = hgmm_sampler(SessionConfig {
        checkpoint_path: Some(path.clone()),
        checkpoint_every: 5,
        ..Default::default()
    });
    s.init().unwrap();
    let reference = record_sweeps(&mut s, 20);

    // The periodic file reflects the most recent multiple of 5: sweep 20.
    let mut r = hgmm_sampler(SessionConfig { checkpoint_every: 0, ..Default::default() });
    assert_eq!(r.resume(&path).unwrap(), 20);
    std::fs::remove_file(&path).ok();
    let names: Vec<String> = r.param_names().to_vec();
    let now: Vec<u64> = names
        .iter()
        .flat_map(|p| r.param(p).unwrap().iter().map(|x| x.to_bits()))
        .collect();
    assert_eq!(&now, reference.last().unwrap(), "periodic checkpoint is stale");
}

/// Resuming from a checkpoint of a *different* schedule is a typed
/// mismatch error, not silent corruption.
#[test]
fn mismatched_checkpoint_is_a_typed_error() {
    let path = tmp("mismatch");
    let mut s = hgmm_sampler(SessionConfig { checkpoint_every: 0, ..Default::default() });
    s.init().unwrap();
    s.sweep();
    s.write_checkpoint(&path).unwrap();

    let mut other = hlr_sampler(SessionConfig { checkpoint_every: 0, ..Default::default() });
    let err = other.resume(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        format!("{err}").contains("schedule"),
        "expected a schedule mismatch, got: {err}"
    );
}

/// A damaged checkpoint file — truncated mid-record or bit-flipped —
/// surfaces as a typed `checkpoint` error naming the offending file,
/// never a panic or a silently-wrong resume (the integrity digest
/// catches flips that leave every line well-formed).
#[test]
fn corrupt_checkpoint_files_are_typed_errors_naming_the_path() {
    let path = tmp("corrupt");
    let mut s = hgmm_sampler(SessionConfig { checkpoint_every: 0, ..Default::default() });
    s.init().unwrap();
    s.sweep();
    s.write_checkpoint(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();

    let expect_corrupt = |tag: &str, damaged: &str| {
        std::fs::write(&path, damaged).unwrap();
        let mut r = hgmm_sampler(SessionConfig { checkpoint_every: 0, ..Default::default() });
        let err = augur::Error::from(r.resume(&path).unwrap_err());
        assert_eq!(err.kind(), augur::ErrorKind::Checkpoint, "{tag}");
        let msg = format!("{err}");
        let file = path.file_name().unwrap().to_str().unwrap();
        assert!(msg.contains(file), "{tag}: error must name the file, got: {msg}");
    };

    // Truncated mid-record, as a crash while copying the file would
    // leave it.
    expect_corrupt("truncated", &text[..text.len() - text.len() / 3]);

    // One flipped hex digit in a buffer cell: every line stays
    // well-formed, so only the integrity digest can catch it.
    let line = text.find("\nbuf ").expect("a buffer record") + 1;
    let flip = line + text[line..].find('\n').expect("line end") - 1;
    let mut bytes = text.clone().into_bytes();
    bytes[flip] = if bytes[flip] == b'0' { b'1' } else { b'0' };
    expect_corrupt("bit-flipped", &String::from_utf8(bytes).unwrap());

    std::fs::remove_file(&path).ok();
}

/// `ChainPlan::resume_dir` continues every chain to the requested total,
/// and the post-resume draws are byte-identical to the same sweeps of an
/// uninterrupted multi-chain run.
#[test]
fn chain_plan_resume_dir_matches_uninterrupted_run() {
    let model = Model::compile(
        "(N, tau2, s2) => {
            param m ~ Normal(0.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }",
    )
    .unwrap();
    let data = vec![1.2, 0.8, 1.0, 1.4, 0.6];
    let plan = model
        .plan(
            vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
            vec![("y", HostValue::VecF(data.clone()))],
        )
        .unwrap();
    let runner = |sweeps: usize| {
        augur::chains::ChainPlan::new(&plan)
            .config(SessionConfig { checkpoint_every: 20, ..Default::default() })
            .chains(3)
            .sweeps(sweeps)
            .record(&["m"])
    };

    // Reference: 40 sweeps straight through.
    let full = runner(40).run().unwrap();

    // Interrupted: 20 sweeps with a checkpoint directory, then resume the
    // directory and continue to 40.
    let dir = std::env::temp_dir().join(format!(
        "augur_resume_dir_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = runner(20).checkpoint_dir(&dir).run().unwrap();
    let resumed = runner(40).resume_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let full_traces = full.traces("m", 0).unwrap();
    let resumed_traces = resumed.traces("m", 0).unwrap();
    assert_eq!(resumed_traces.len(), full_traces.len());
    for (c, (r, f)) in resumed_traces.iter().zip(&full_traces).enumerate() {
        assert_eq!(r.len(), 20, "chain {c}: resumed run covers post-resume sweeps");
        let tail: Vec<u64> = f[20..].iter().map(|x| x.to_bits()).collect();
        let got: Vec<u64> = r.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, tail, "chain {c}: resumed draws diverged");
    }
}
