//! An unrolled Hidden Markov Model — §2.2: "we would need to write a
//! Hidden Markov Model, where each hidden state depends on the previous
//! state, by unfolding the entire model. This is doable…".
//!
//! Three time steps, two hidden states, Gaussian emissions. Each hidden
//! state is its own scalar declaration; transitions index the (ragged)
//! transition matrix by the previous state. The compiled finite-sum Gibbs
//! marginals are validated against exact enumeration over all 2³ paths.

use augur::{HostValue, Model, SessionConfig};
use augur_dist::scalar::normal_log_pdf;
use augur_math::FlatRagged;

/// p(z, y) for a concrete path under the test model.
fn joint_ll(z: &[usize; 3], y: &[f64; 3], pi0: &[f64], a: &[[f64; 2]; 2], mus: &[f64], s2: f64) -> f64 {
    let mut ll = pi0[z[0]].ln();
    ll += a[z[0]][z[1]].ln();
    ll += a[z[1]][z[2]].ln();
    for t in 0..3 {
        ll += normal_log_pdf(y[t], mus[z[t]], s2);
    }
    ll
}

#[test]
fn unrolled_hmm_matches_exact_marginals() {
    let src = r#"(pi0, A, mus, s2) => {
        param z0 ~ Categorical(pi0) ;
        param z1 ~ Categorical(A[z0]) ;
        param z2 ~ Categorical(A[z1]) ;
        data y0 ~ Normal(mus[z0], s2) ;
        data y1 ~ Normal(mus[z1], s2) ;
        data y2 ~ Normal(mus[z2], s2) ;
    }"#;

    let pi0 = vec![0.6, 0.4];
    let a = [[0.8, 0.2], [0.3, 0.7]];
    let mus = vec![-1.0, 2.0];
    let s2 = 1.0;
    let y = [-0.8, 1.5, 1.9];

    // exact posterior marginals by enumerating the 8 paths
    let mut path_probs = Vec::new();
    let mut total = f64::NEG_INFINITY;
    for z0 in 0..2usize {
        for z1 in 0..2usize {
            for z2 in 0..2usize {
                let ll = joint_ll(&[z0, z1, z2], &y, &pi0, &a, &mus, s2);
                path_probs.push(([z0, z1, z2], ll));
                total = augur_math::special::log_sum_exp(&[total, ll]);
            }
        }
    }
    let mut exact = [0.0f64; 3]; // P(z_t = 1 | y)
    for (z, ll) in &path_probs {
        let p = (ll - total).exp();
        for t in 0..3 {
            if z[t] == 1 {
                exact[t] += p;
            }
        }
    }

    // compiled Gibbs chain
    let a_ragged = FlatRagged::from_rows(vec![a[0].to_vec(), a[1].to_vec()]);
    let model = Model::compile(src).unwrap();
    assert_eq!(
        model.kernel(),
        "Gibbs Single(z0) (*) Gibbs Single(z1) (*) Gibbs Single(z2)"
    );
    let mut s = model
        .plan(
            vec![
                HostValue::VecF(pi0.clone()),
                HostValue::Ragged(a_ragged),
                HostValue::VecF(mus.clone()),
                HostValue::Real(s2),
            ],
            vec![
                ("y0", HostValue::Real(y[0])),
                ("y1", HostValue::Real(y[1])),
                ("y2", HostValue::Real(y[2])),
            ],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    let sweeps = 40_000;
    let mut freq = [0.0f64; 3];
    for _ in 0..sweeps {
        s.sweep();
        for (t, name) in ["z0", "z1", "z2"].iter().enumerate() {
            freq[t] += s.param(name).unwrap()[0] / sweeps as f64;
        }
    }
    for t in 0..3 {
        assert!(
            (freq[t] - exact[t]).abs() < 0.02,
            "P(z{t}=1|y): chain {:.3} vs exact {:.3}",
            freq[t],
            exact[t]
        );
    }
}

/// The conditional of the *middle* state must include both the transition
/// into it and the transition out of it (z1 appears in z2's prior's
/// arguments) — a structural check that the dependence filter catches
/// argument-position occurrences across declarations.
#[test]
fn middle_state_conditional_sees_both_transitions() {
    let src = r#"(pi0, A, mus, s2) => {
        param z0 ~ Categorical(pi0) ;
        param z1 ~ Categorical(A[z0]) ;
        param z2 ~ Categorical(A[z1]) ;
        data y1 ~ Normal(mus[z1], s2) ;
    }"#;
    let model = Model::compile(src).unwrap();
    let dm = model.density_model();
    let cond = augur_density::conditional(dm, &["z1"]);
    // factors: z1's prior, z2's prior (transition out), y1's emission
    assert_eq!(cond.factors.len(), 3);
    let sources: Vec<usize> = cond.factors.iter().map(|f| f.source).collect();
    assert_eq!(sources, vec![1, 2, 3]);
}
