//! Plan-lifecycle differential suite: the cache must be invisible.
//!
//! The plan cache's contract is that *how* a plan was obtained — fresh
//! cold compile, cache hit, or incremental respecialization — can never
//! change what the sampler computes. These tests drive the
//! `Model → Plan → Session` lifecycle through randomized data shapes and
//! check trajectories, run-report digests, and profile work-digests are
//! bit-identical against a from-scratch compile of the same shape.

use augur::{HostValue, Model, PlanEvent, SessionConfig};
use augur_math::Matrix;
use augurv2::{models, workloads};

/// Tiny deterministic shape generator (xorshift64*); the test owns its
/// randomness so failures replay exactly.
struct ShapeRng(u64);

impl ShapeRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo)
    }
}

fn hgmm_args(k: usize, d: usize, n: usize) -> Vec<HostValue> {
    vec![
        HostValue::Int(k as i64),
        HostValue::Int(n as i64),
        HostValue::VecF(vec![1.0; k]),
        HostValue::VecF(vec![0.0; d]),
        HostValue::Mat(Matrix::identity(d).scale(50.0)),
        HostValue::Real((d + 2) as f64),
        HostValue::Mat(Matrix::identity(d)),
    ]
}

/// Everything a run exposes that the cache could possibly perturb.
#[derive(PartialEq, Debug)]
struct RunSignature {
    trajectory: Vec<u64>,
    report_digest: String,
    profile_digest: String,
}

/// Runs `sweeps` sweeps recording the bit pattern of `param[0]`, then
/// digests the run report and the profiler's work counters.
fn signature(s: &mut augur::Session, sweeps: usize, param: &str) -> RunSignature {
    s.init().unwrap();
    let mut trajectory = Vec::with_capacity(sweeps);
    for _ in 0..sweeps {
        s.sweep();
        trajectory.push(s.param(param).unwrap()[0].to_bits());
    }
    RunSignature {
        trajectory,
        report_digest: s.report().digest(),
        profile_digest: s.profile().digest(),
    }
}

/// HGMM at a random shape: (args, data, sweeps, recorded param).
fn hgmm_case(rng: &mut ShapeRng) -> (Vec<HostValue>, Vec<(&'static str, HostValue)>, &'static str) {
    let k = rng.range(2, 4);
    let n = rng.range(40, 160);
    let data = workloads::hgmm_data(k, 2, n, 1000 + n as u64);
    (hgmm_args(k, 2, n), vec![("y", HostValue::Ragged(data.points))], "mu")
}

/// LDA at a random shape.
fn lda_case(rng: &mut ShapeRng) -> (Vec<HostValue>, Vec<(&'static str, HostValue)>, &'static str) {
    let topics = rng.range(3, 7);
    let docs = rng.range(8, 24);
    let corpus = workloads::lda_corpus(4, docs, 120, 20, 2000 + docs as u64);
    let args = vec![
        HostValue::Int(topics as i64),
        HostValue::Int(corpus.docs.len() as i64),
        HostValue::VecF(vec![0.5; topics]),
        HostValue::VecF(vec![0.1; corpus.vocab]),
        HostValue::VecI(corpus.lens.clone()),
    ];
    (args, vec![("w", HostValue::RaggedI(corpus.docs))], "theta")
}

/// The tentpole determinism claim: a plan produced by *respecializing*
/// an already-built model (only the size-dependent phases re-run) is
/// bit-identical — trajectory, report digest, profile work-digest — to a
/// plan produced by compiling the model from scratch for that shape.
/// Re-planning an already-seen shape (a cache *hit*) is likewise
/// bit-identical.
#[test]
fn respecialized_and_cached_plans_match_fresh_compile_bitwise() {
    let mut rng = ShapeRng(0xA5EED);
    for (src, cases) in [
        (models::HGMM, (0..3).map(|_| hgmm_case(&mut rng)).collect::<Vec<_>>()),
        (models::LDA, (0..2).map(|_| lda_case(&mut rng)).collect::<Vec<_>>()),
    ] {
        let shared = Model::compile(src).unwrap();
        let mut signatures = Vec::new();
        for (i, (args, data, param)) in cases.iter().enumerate() {
            // Reference: a model compiled from scratch for this shape.
            let fresh = Model::compile(src).unwrap();
            let plan = fresh.plan(args.clone(), data.clone()).unwrap();
            assert_eq!(plan.cache_event(), PlanEvent::Cold);
            let reference =
                signature(&mut plan.session(SessionConfig::default()).unwrap(), 12, param);

            // Candidate: the shared model, which respecializes for every
            // shape after its first.
            let plan = shared.plan(args.clone(), data.clone()).unwrap();
            let expected =
                if i == 0 { PlanEvent::Cold } else { PlanEvent::Respecialize };
            assert_eq!(plan.cache_event(), expected, "shape {i}");
            let candidate =
                signature(&mut plan.session(SessionConfig::default()).unwrap(), 12, param);
            assert_eq!(candidate, reference, "respecialized plan diverged at shape {i}");
            signatures.push(reference);
        }

        // Replay every shape: all are cache hits now, all bit-identical.
        for (i, (args, data, param)) in cases.iter().enumerate() {
            let plan = shared.plan(args.clone(), data.clone()).unwrap();
            assert_eq!(plan.cache_event(), PlanEvent::Hit, "replayed shape {i}");
            let replay =
                signature(&mut plan.session(SessionConfig::default()).unwrap(), 12, param);
            assert_eq!(replay, signatures[i], "cache-hit plan diverged at shape {i}");
        }

        let stats = shared.cache_stats();
        assert_eq!(stats.misses, cases.len() as u64, "one build per shape");
        assert_eq!(stats.respecializes, cases.len() as u64 - 1);
        assert_eq!(stats.hits, cases.len() as u64, "one hit per replay");
        assert_eq!(stats.entries, cases.len() as u64);
    }
}

/// The cache is keyed on data *shape*, not data values: planning a
/// different dataset of the same shape is a hit, and the hit's session
/// samples the new values — never the cached plan's.
#[test]
fn cache_hit_rebinds_new_data_values() {
    let (k, d, n) = (2, 2, 60);
    let data_a = workloads::hgmm_data(k, d, n, 7);
    let data_b = workloads::hgmm_data(k, d, n, 8);
    let model = Model::compile(models::HGMM).unwrap();

    let plan_a = model
        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(data_a.points.clone()))])
        .unwrap();
    assert_eq!(plan_a.cache_event(), PlanEvent::Cold);
    let sig_a = signature(&mut plan_a.session(SessionConfig::default()).unwrap(), 10, "mu");

    let plan_b = model
        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(data_b.points.clone()))])
        .unwrap();
    assert_eq!(plan_b.cache_event(), PlanEvent::Hit, "same shape, different values");
    assert_eq!(plan_b.fingerprint(), plan_a.fingerprint());
    let sig_b = signature(&mut plan_b.session(SessionConfig::default()).unwrap(), 10, "mu");

    // The hit saw dataset B: it must match a fresh compile over B ...
    let fresh = Model::compile(models::HGMM).unwrap();
    let plan = fresh
        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(data_b.points))])
        .unwrap();
    let sig_fresh = signature(&mut plan.session(SessionConfig::default()).unwrap(), 10, "mu");
    assert_eq!(sig_b, sig_fresh, "cache hit must rebind the new data");
    // ... and differ from dataset A's chain.
    assert_ne!(sig_b.trajectory, sig_a.trajectory, "cached values leaked across plans");
}

/// Fingerprints are stable within a shape and sensitive to anything
/// that could change the specialized artifact: sizes, ragged row
/// layouts, and optimizer flags.
#[test]
fn fingerprint_separates_shapes_and_flags() {
    let (k, d, n) = (2, 2, 50);
    let model = Model::compile(models::HGMM).unwrap();
    let data = workloads::hgmm_data(k, d, n, 3);
    let plan = |n2: usize| {
        let data = workloads::hgmm_data(k, d, n2, 3);
        model.plan(hgmm_args(k, d, n2), vec![("y", HostValue::Ragged(data.points))]).unwrap()
    };
    let base = plan(n);
    assert_eq!(base.fingerprint(), plan(n).fingerprint(), "same shape, same key");
    assert_ne!(base.fingerprint(), plan(n + 1).fingerprint(), "size must change the key");
    let flagged = model
        .plan_opt(
            hgmm_args(k, d, n),
            vec![("y", HostValue::Ragged(data.points))],
            augur::OptFlags { commute: false, ..Default::default() },
        )
        .unwrap();
    assert_ne!(base.fingerprint(), flagged.fingerprint(), "opt flags must change the key");
}

/// Concurrency: when N workers race to plan the *same* shape on one
/// shared model, exactly one builds the specialization and the rest
/// wait for it — the service-registry contract. Pinned: `misses == 1`.
#[test]
fn racing_workers_specialize_a_shape_exactly_once() {
    const WORKERS: usize = 8;
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 7);
    let model = Model::compile(models::HGMM).unwrap();
    let fingerprints: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let model = &model;
                let points = data.points.clone();
                scope.spawn(move || {
                    model
                        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(points))])
                        .unwrap()
                        .fingerprint()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(fingerprints.windows(2).all(|w| w[0] == w[1]), "one shape, one key");
    let stats = model.cache_stats();
    assert_eq!(stats.misses, 1, "same-shape racers must build exactly once");
    assert_eq!(stats.hits, (WORKERS - 1) as u64);
    assert_eq!(stats.entries, 1);

    // Different shapes still build independently (and in parallel).
    std::thread::scope(|scope| {
        for extra in 1..=2usize {
            let model = &model;
            scope.spawn(move || {
                let data = workloads::hgmm_data(k, d, n + extra, 7);
                model
                    .plan(hgmm_args(k, d, n + extra), vec![("y", HostValue::Ragged(data.points))])
                    .unwrap();
            });
        }
    });
    assert_eq!(model.cache_stats().entries, 3);
    assert_eq!(model.cache_stats().misses, 3);
}
