//! Chaos drills: the service keeps its determinism contract under
//! injected partial failure and overload.
//!
//! Every test here drives `augur-serve` with a [`FaultPlan`] set
//! explicitly on the `ServiceConfig` (never via the environment, so the
//! suite is stable under the CI chaos matrix) and asserts the
//! survivability contract from `DESIGN.md` §5.14:
//!
//! * no ticket ever hangs — dead workers, shed load, and timeouts all
//!   resolve with typed errors;
//! * a killed shard worker costs at most one slice of recomputation and
//!   never changes the draws: results under `panic@shard` are
//!   byte-identical to a clean run;
//! * overload is bounded and observable (prompt `overloaded` errors that
//!   reconcile with the `shed` counter and v4 trace events);
//! * the native circuit breaker demotes a model Native→Tape without
//!   failing a single request, and reports why.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use augur::chains::chain_seed;
use augur::{
    ExecBackend, FaultPlan, HostValue, McmcConfig, Model, Plan, SessionConfig,
    NATIVE_BREAKER_THRESHOLD,
};
use augur_math::Matrix;
use augur_serve::{
    hermetic_config, ExplainRequest, MetricsSnapshot, ModelRegistry, ModelSpec, Response,
    SampleRequest, ScoreRequest, ServeError, Service, ServiceConfig, Ticket,
};
use augurv2::{models, workloads};

const BETA_BERN: &str = "(N) => {
    param p ~ Beta(1.0, 1.0) ;
    data y[n] ~ Bernoulli(p) for n <- 0 until N ;
}";

fn bb_args() -> Vec<HostValue> {
    vec![HostValue::Int(4)]
}

fn bb_y() -> HostValue {
    HostValue::VecF(vec![1.0, 0.0, 1.0, 1.0])
}

fn bb_data() -> Vec<(String, HostValue)> {
    vec![("y".into(), bb_y())]
}

/// A service config with an explicit fault plan (`""` = no faults),
/// immune to whatever `AUGUR_FAULT` the test process inherited.
fn chaos_config(workers: usize, fault: &str) -> ServiceConfig {
    ServiceConfig {
        workers,
        fault: (!fault.is_empty()).then(|| FaultPlan::parse(fault).unwrap()),
        ..ServiceConfig::default()
    }
}

/// Blocks on a ticket with a generous cap: a supervision bug that
/// strands the ticket fails the test with "hung" instead of wedging the
/// whole suite.
fn wait_bounded(t: Ticket, what: &str) -> Result<Response, ServeError> {
    let t0 = Instant::now();
    loop {
        if let Some(r) = t.try_wait() {
            return r;
        }
        assert!(t0.elapsed() < Duration::from_secs(120), "{what}: ticket hung");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Regression for the pre-supervision bug: a shard worker dying with a
/// task in hand dropped the reply sender without sending, so the ticket
/// hung forever. Under supervision every ticket resolves — successfully,
/// since recovered tasks rerun on a healthy shard.
#[test]
fn worker_kill_never_strands_a_ticket() {
    let registry = ModelRegistry::new();
    registry.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
    let service = Service::start(registry, chaos_config(2, "panic@shard:0"));
    let mut tickets = Vec::new();
    for i in 0..6u64 {
        tickets.push(service.sample(SampleRequest {
            args: bb_args(),
            data: bb_data(),
            chains: 2,
            sweeps: 6,
            record: vec!["p".into()],
            config: Some(hermetic_config(0xC0 + i)),
            migrate_every: Some(2),
            ..SampleRequest::new("bb")
        }));
    }
    tickets.push(service.score(ScoreRequest {
        model: "bb".into(),
        version: None,
        args: bb_args(),
        data: bb_data(),
        config: Some(hermetic_config(1)),
        deadline: None,
    }));
    tickets.push(service.explain(ExplainRequest {
        model: "bb".into(),
        version: None,
        args: bb_args(),
        data: bb_data(),
        deadline: None,
    }));
    for (i, t) in tickets.into_iter().enumerate() {
        wait_bounded(t, &format!("request {i}"))
            .unwrap_or_else(|e| panic!("request {i} failed under supervision: {e}"));
    }
    let m = service.metrics();
    assert!(m.respawns > 0, "the drill must actually kill workers");
    assert!(m.retries > 0, "recovered tasks are requeued as retries");
    assert_eq!(m.completed, m.submitted, "every request completes");
    assert_eq!(m.failed, 0);
    service.shutdown();
}

/// One benchmark workload (mirrors `tests/serve.rs`).
struct Workload {
    name: &'static str,
    source: &'static str,
    args: Vec<HostValue>,
    data: Vec<(String, HostValue)>,
    record: Vec<String>,
    base: SessionConfig,
}

fn hgmm_workload() -> Workload {
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 7);
    Workload {
        name: "hgmm",
        source: models::HGMM,
        args: vec![
            HostValue::Int(k as i64),
            HostValue::Int(n as i64),
            HostValue::VecF(vec![1.0; k]),
            HostValue::VecF(vec![0.0; d]),
            HostValue::Mat(Matrix::identity(d).scale(50.0)),
            HostValue::Real((d + 2) as f64),
            HostValue::Mat(Matrix::identity(d)),
        ],
        data: vec![("y".into(), HostValue::Ragged(data.points))],
        record: vec!["mu".into(), "pi".into()],
        base: hermetic_config(0xBEEF),
    }
}

fn lda_workload() -> Workload {
    let topics = 2;
    let corpus = workloads::lda_corpus(topics, 8, 12, 8, 11);
    Workload {
        name: "lda",
        source: models::LDA,
        args: vec![
            HostValue::Int(topics as i64),
            HostValue::Int(corpus.docs.len() as i64),
            HostValue::VecF(vec![0.5; topics]),
            HostValue::VecF(vec![0.1; corpus.vocab]),
            HostValue::VecI(corpus.lens),
        ],
        data: vec![("w".into(), HostValue::RaggedI(corpus.docs))],
        record: vec!["theta".into()],
        base: hermetic_config(0xBEEF),
    }
}

fn hlr_workload() -> Workload {
    let (n, d) = (30, 3);
    let data = workloads::logistic_data(n, d, 13);
    Workload {
        name: "hlr",
        source: models::HLR,
        args: vec![
            HostValue::Real(1.0),
            HostValue::Int(n as i64),
            HostValue::Int(d as i64),
            HostValue::Ragged(data.x),
        ],
        data: vec![("y".into(), HostValue::VecF(data.y))],
        record: vec!["theta".into(), "b".into()],
        base: SessionConfig {
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..McmcConfig::default() },
            ..hermetic_config(0xBEEF)
        },
    }
}

const CHAINS: usize = 3;
const SWEEPS: usize = 12;

type Draws = Vec<Vec<HashMap<String, Vec<f64>>>>;

/// Reference draws and digests from direct, unfaulted sessions, seeded
/// exactly as the service seeds its chains.
fn direct_runs(plan: &Plan, w: &Workload) -> (Draws, Vec<String>) {
    let record: Vec<&str> = w.record.iter().map(String::as_str).collect();
    let mut draws = Vec::new();
    let mut digests = Vec::new();
    for c in 0..CHAINS {
        let mut cfg = w.base.clone();
        cfg.seed = chain_seed(w.base.seed, c);
        let mut s = plan.session(cfg).unwrap();
        s.init().unwrap();
        draws.push(s.sample(SWEEPS, &record).unwrap());
        digests.push(s.report().digest());
    }
    (draws, digests)
}

/// The chaos differential: with `panic@shard:0` killing a worker on
/// every first task delivery, a migrated multi-chain request still
/// produces draws and report digests byte-identical to an unfaulted
/// direct run — a kill costs recomputing one slice, never correctness.
fn chaos_differential(w: Workload) {
    let data_refs: Vec<(&str, HostValue)> =
        w.data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let model = Model::compile(w.source).unwrap();
    let plan = model.plan(w.args.clone(), data_refs).unwrap();
    let (direct_draws, direct_digests) = direct_runs(&plan, &w);

    let registry = ModelRegistry::new();
    registry.register(w.name, ModelSpec::new(w.source)).unwrap();
    let service = Service::start(registry, chaos_config(3, "panic@shard:0"));
    let out = wait_bounded(
        service.sample(SampleRequest {
            model: w.name.into(),
            version: None,
            args: w.args.clone(),
            data: w.data.clone(),
            chains: CHAINS,
            sweeps: SWEEPS,
            record: w.record.clone(),
            config: Some(w.base.clone()),
            migrate_every: Some(5),
            deadline: None,
        }),
        w.name,
    )
    .unwrap_or_else(|e| panic!("{}: request failed under shard kills: {e}", w.name))
    .into_sample()
    .unwrap();

    assert_eq!(out.draws, direct_draws, "{}: draws diverged under shard kills", w.name);
    assert_eq!(
        out.report_digests, direct_digests,
        "{}: digests diverged under shard kills",
        w.name
    );
    let m = service.metrics();
    assert!(m.respawns > 0, "{}: the drill must kill at least one worker", w.name);
    assert_eq!(m.failed, 0, "{}: recovery must not surface as failure", w.name);
    service.shutdown();
}

#[test]
fn hgmm_draws_survive_shard_kills_byte_identically() {
    chaos_differential(hgmm_workload());
}

#[test]
fn lda_draws_survive_shard_kills_byte_identically() {
    chaos_differential(lda_workload());
}

#[test]
fn hlr_draws_survive_shard_kills_byte_identically() {
    chaos_differential(hlr_workload());
}

/// Overload is bounded and observable: with one slow shard and a queue
/// bound of Q, a burst of 4Q requests sheds the overflow promptly with
/// typed `overloaded` errors, and the per-ticket errors, the `shed`
/// counter, and the v4 `shed` trace events all agree.
#[test]
fn overload_sheds_promptly_and_counters_reconcile() {
    let trace = std::env::temp_dir().join(format!(
        "augur_chaos_shed_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let registry = ModelRegistry::new();
    registry.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
    let bound = 2usize;
    let service = Service::start(
        registry,
        ServiceConfig {
            queue_bound: bound,
            trace_path: Some(trace.clone()),
            ..chaos_config(1, "slow@shard:0:ms=40")
        },
    );
    let burst = 4 * bound;
    let t0 = Instant::now();
    let tickets: Vec<Ticket> = (0..burst)
        .map(|_| {
            service.score(ScoreRequest {
                model: "bb".into(),
                version: None,
                args: bb_args(),
                data: bb_data(),
                config: Some(hermetic_config(7)),
                deadline: None,
            })
        })
        .collect();
    // Shed tickets resolve at submit time; the burst itself never blocks
    // behind the slow worker.
    assert!(t0.elapsed() < Duration::from_secs(2), "submission blocked behind the queue");
    let mut ok = 0u64;
    let mut shed = 0u64;
    for (i, t) in tickets.into_iter().enumerate() {
        match wait_bounded(t, &format!("burst request {i}")) {
            Ok(_) => ok += 1,
            Err(ServeError::Overloaded { bound: b }) => {
                assert_eq!(b, bound);
                shed += 1;
            }
            Err(e) => panic!("burst request {i}: unexpected failure: {e}"),
        }
    }
    let m = service.metrics();
    service.shutdown();
    let text = std::fs::read_to_string(&trace).unwrap();
    std::fs::remove_file(&trace).ok();

    assert!(shed >= 1, "a burst of {burst} over bound {bound} must shed");
    assert_eq!(ok + shed, burst as u64, "every ticket resolves");
    assert_eq!(m.shed, shed, "metrics reconcile with per-ticket errors");
    assert_eq!(m.completed, ok);
    assert_eq!(m.failed, 0, "shed is admission control, not a processing failure");
    let shed_events = text
        .lines()
        .filter(|l| l.contains("\"event\":\"shed\"") && l.contains("\"code\":\"overloaded\""))
        .count() as u64;
    assert_eq!(shed_events, m.shed, "v4 trace events reconcile with the shed counter");
}

/// Deadlines resolve late requests with the typed `timeout` code — at
/// dequeue (the score, whose deadline passed while the slow shard
/// stalled) and between migration slices (the sample, whose per-slice
/// delays are guaranteed to overrun its budget).
#[test]
fn deadlines_time_out_with_a_typed_code() {
    let registry = ModelRegistry::new();
    registry.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
    let service =
        Service::start(registry, chaos_config(2, "slow@shard:0:ms=50;slow@shard:1:ms=50"));

    let e = wait_bounded(
        service.score(ScoreRequest {
            model: "bb".into(),
            version: None,
            args: bb_args(),
            data: bb_data(),
            config: Some(hermetic_config(7)),
            deadline: Some(Duration::from_millis(1)),
        }),
        "deadlined score",
    )
    .unwrap_err();
    assert_eq!(e.code(), "timeout");
    assert!(matches!(e, ServeError::Timeout { .. }), "typed variant: {e:?}");
    assert!(format!("{e}").contains("deadline"), "{e}");

    // 3 slices x 50 ms of injected delay can never fit in 130 ms, but
    // the first dequeue (~50 ms) normally can: the timeout fires on the
    // inter-slice check.
    let e = wait_bounded(
        service.sample(SampleRequest {
            args: bb_args(),
            data: bb_data(),
            chains: 1,
            sweeps: 6,
            record: vec!["p".into()],
            config: Some(hermetic_config(3)),
            migrate_every: Some(2),
            deadline: Some(Duration::from_millis(130)),
            ..SampleRequest::new("bb")
        }),
        "deadlined sample",
    )
    .unwrap_err();
    assert_eq!(e.code(), "timeout");

    let m = service.metrics();
    assert!(m.timeouts >= 2, "both requests time out (got {})", m.timeouts);
    assert_eq!(m.failed, m.timeouts, "the only failures are the timeouts");
    service.shutdown();
}

/// The soak: a mixed request stream under simultaneous shard kills and
/// shard slowdowns. Nothing hangs, nothing strands, and every completed
/// result is digest-identical to the same stream against a clean
/// service.
#[test]
fn chaos_soak_preserves_results_and_strands_nothing() {
    let run = |fault: &str| -> (Vec<Response>, MetricsSnapshot) {
        let registry = ModelRegistry::new();
        registry.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
        let service = Service::start(registry, chaos_config(3, fault));
        let mut tickets = Vec::new();
        for i in 0..9u64 {
            tickets.push(service.sample(SampleRequest {
                args: bb_args(),
                data: bb_data(),
                chains: 2,
                sweeps: 8,
                record: vec!["p".into()],
                config: Some(hermetic_config(0x50AC + i)),
                migrate_every: Some(3),
                ..SampleRequest::new("bb")
            }));
            if i % 3 == 1 {
                tickets.push(service.score(ScoreRequest {
                    model: "bb".into(),
                    version: None,
                    args: bb_args(),
                    data: bb_data(),
                    config: Some(hermetic_config(i)),
                    deadline: None,
                }));
            }
            if i % 3 == 2 {
                tickets.push(service.explain(ExplainRequest {
                    model: "bb".into(),
                    version: None,
                    args: bb_args(),
                    data: bb_data(),
                    deadline: None,
                }));
            }
        }
        let results: Vec<Response> = tickets
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                wait_bounded(t, &format!("soak request {i}"))
                    .unwrap_or_else(|e| panic!("soak request {i} failed: {e}"))
            })
            .collect();
        let m = service.metrics();
        service.shutdown();
        (results, m)
    };

    let (clean, _) = run("");
    let (chaotic, m) = run("panic@shard:0;slow@shard:1:ms=2");

    assert!(m.respawns > 0, "the soak must kill workers");
    assert_eq!(m.completed, m.submitted, "zero hung tickets, zero stranded chains");
    assert_eq!(m.failed + m.shed, 0);
    assert_eq!(m.queue_depth, 0, "no task left behind");
    assert_eq!(clean.len(), chaotic.len());
    for (i, (a, b)) in clean.iter().zip(&chaotic).enumerate() {
        match (a, b) {
            (Response::Sample(x), Response::Sample(y)) => {
                assert_eq!(x.draws, y.draws, "soak request {i}: draws diverged");
                assert_eq!(x.report_digests, y.report_digests, "soak request {i}: digests");
            }
            (Response::Score(x), Response::Score(y)) => {
                assert_eq!(x.log_joint.to_bits(), y.log_joint.to_bits(), "soak request {i}");
            }
            (Response::Explain(x), Response::Explain(y)) => {
                // The explain tree ends with live plan-cache counters,
                // which depend on scheduling order; everything above
                // that span is the stable compiler output.
                let stable = |e: &str| e.split("\n  plan-cache").next().unwrap().to_owned();
                assert_eq!(stable(&x.explain), stable(&y.explain), "soak request {i}");
                assert_eq!(x.kernel, y.kernel, "soak request {i}");
            }
            _ => panic!("soak request {i}: response kinds diverged"),
        }
    }
}

/// Blocking HTTP GET against the service's telemetry exporter.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

/// Reads one unlabeled counter series out of a text exposition.
fn scraped(expo: &str, name: &str) -> u64 {
    let line = expo
        .lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .unwrap_or_else(|| panic!("`{name}` missing from exposition:\n{expo}"));
    line.split_whitespace().nth(1).unwrap().parse::<f64>().unwrap() as u64
}

/// Counts v4 trace records for one event (optionally one code).
fn events(text: &str, event: &str, code: Option<&str>) -> u64 {
    text.lines()
        .filter(|l| l.contains(&format!("\"event\":\"{event}\"")))
        .filter(|l| code.is_none_or(|c| l.contains(&format!("\"code\":\"{c}\""))))
        .count() as u64
}

/// The observability tentpole's reconciliation contract: for a chaos
/// run mixing shard kills, native-compile failures, and deadline
/// timeouts, the three surfaces an operator can read — the `/metrics`
/// scrape, the legacy [`MetricsSnapshot`], and the v4 JSONL trace —
/// all report the same counts. The counters are recorded once,
/// incrementally, at the point of the event; nothing is aggregated
/// after the fact, so there is no second bookkeeping path to drift.
#[test]
fn telemetry_scrape_snapshot_and_trace_reconcile_under_chaos() {
    let trace = std::env::temp_dir().join(format!(
        "augur_chaos_telemetry_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let registry = ModelRegistry::new();
    registry.register("bb", ModelSpec::new(BETA_BERN)).unwrap();
    registry
        .register("bbn", ModelSpec::new(BETA_BERN).backend(ExecBackend::Native))
        .unwrap();
    let service = Service::start(
        registry,
        ServiceConfig {
            telemetry_addr: Some("127.0.0.1:0".into()),
            trace_path: Some(trace.clone()),
            ..chaos_config(2, "panic@shard:0;compile@native")
        },
    );
    let addr = service.telemetry_addr().expect("exporter bound");

    let mut tickets = Vec::new();
    // Migrating sample requests across the killer shard: migrations,
    // retries, and respawns.
    for i in 0..4u64 {
        tickets.push(service.sample(SampleRequest {
            args: bb_args(),
            data: bb_data(),
            chains: 2,
            sweeps: 6,
            record: vec!["p".into()],
            config: Some(hermetic_config(0xD0 + i)),
            migrate_every: Some(2),
            ..SampleRequest::new("bb")
        }));
    }
    // Native-backed scores under compile@native: breaker demotion.
    for _ in 0..(NATIVE_BREAKER_THRESHOLD + 1) {
        tickets.push(service.score(ScoreRequest {
            model: "bbn".into(),
            version: None,
            args: bb_args(),
            data: bb_data(),
            config: None,
            deadline: None,
        }));
    }
    // An unmeetable deadline: a typed timeout failure.
    tickets.push(service.score(ScoreRequest {
        model: "bb".into(),
        version: None,
        args: bb_args(),
        data: bb_data(),
        config: Some(hermetic_config(9)),
        deadline: Some(Duration::from_nanos(1)),
    }));
    let mut ok = 0u64;
    let mut timeouts = 0u64;
    for (i, t) in tickets.into_iter().enumerate() {
        match wait_bounded(t, &format!("telemetry chaos request {i}")) {
            Ok(_) => ok += 1,
            Err(ServeError::Timeout { .. }) => timeouts += 1,
            Err(e) => panic!("telemetry chaos request {i}: unexpected failure: {e}"),
        }
    }
    assert!(ok > 0 && timeouts == 1, "ok={ok} timeouts={timeouts}");

    // Tickets resolve before a dying worker's guard finishes its
    // bookkeeping; settle until the counters stop moving.
    let m = {
        let t0 = Instant::now();
        let mut prev = service.metrics();
        loop {
            std::thread::sleep(Duration::from_millis(10));
            let cur = service.metrics();
            if (cur.retries, cur.respawns, cur.migrations, cur.completed, cur.failed)
                == (prev.retries, prev.respawns, prev.migrations, prev.completed, prev.failed)
            {
                break cur;
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "counters never settled");
            prev = cur;
        }
    };
    assert!(m.respawns > 0, "the drill must kill workers");
    assert!(m.migrations > 0, "the samples must migrate");
    assert_eq!(m.demotions, 1, "the native breaker must trip once");
    assert_eq!(m.timeouts, 1);

    // Surface 1 vs surface 2: the scrape renders the same instruments
    // the snapshot reads.
    let resp = http_get(addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let expo = resp.split("\r\n\r\n").nth(1).unwrap();
    for (name, want) in [
        ("augur_requests_submitted_total", m.submitted),
        ("augur_requests_completed_total", m.completed),
        ("augur_requests_failed_total", m.failed),
        ("augur_requests_shed_total", m.shed),
        ("augur_request_timeouts_total", m.timeouts),
        ("augur_retries_total", m.retries),
        ("augur_respawns_total", m.respawns),
        ("augur_migrations_total", m.migrations),
        ("augur_demotions_total", m.demotions),
        ("augur_request_latency_seconds_count", m.latency.count),
    ] {
        assert_eq!(scraped(expo, name), want, "scrape vs snapshot: {name}");
    }
    assert_eq!(m.latency.count, m.completed + m.failed);
    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "respawned service is healthy: {health}");

    service.shutdown();
    let text = std::fs::read_to_string(&trace).unwrap();
    std::fs::remove_file(&trace).ok();

    // Surface 3: one v4 record was written per counted event.
    assert_eq!(events(&text, "submitted", None) + events(&text, "shed", None), m.submitted);
    assert_eq!(events(&text, "completed", None), m.completed);
    assert_eq!(events(&text, "failed", None), m.failed);
    assert_eq!(events(&text, "failed", Some("timeout")), m.timeouts);
    assert_eq!(events(&text, "shed", None), m.shed);
    assert_eq!(events(&text, "retried", None), m.retries);
    assert_eq!(events(&text, "respawned", None), m.respawns);
    assert_eq!(events(&text, "migrated", None), m.migrations);
    assert_eq!(events(&text, "demoted", None), m.demotions);
}

/// The native circuit breaker: K consecutive injected native-compile
/// failures demote the model Native→Tape without failing a single
/// request, and the demotion is visible everywhere an operator would
/// look — the metrics counter, the per-model cache stats, and the
/// plan's backend report.
#[test]
fn native_breaker_demotes_without_failing_requests() {
    let registry = ModelRegistry::new();
    registry
        .register("bb", ModelSpec::new(BETA_BERN).backend(ExecBackend::Native))
        .unwrap();
    let service = Service::start(registry, chaos_config(1, "compile@native"));
    for i in 0..(NATIVE_BREAKER_THRESHOLD + 1) {
        // No per-request config: the registration's Native backend and
        // the service's fault plan apply.
        let r = wait_bounded(
            service.score(ScoreRequest {
                model: "bb".into(),
                version: None,
                args: bb_args(),
                data: bb_data(),
                config: None,
                deadline: None,
            }),
            &format!("score {i}"),
        );
        assert!(
            r.is_ok(),
            "request {i} must be served from the tape fallback: {}",
            r.err().map(|e| e.to_string()).unwrap_or_default()
        );
    }
    let m = service.metrics();
    assert_eq!(m.demotions, 1, "one model demoted, however many requests saw it");
    assert_eq!(m.failed, 0);
    let demoted: Vec<String> = m.models.iter().filter_map(|ms| ms.demoted.clone()).collect();
    assert_eq!(demoted.len(), 1, "cache stats name the demoted model: {:?}", m.models);
    assert!(
        demoted[0].contains("fault injection: native compile failure"),
        "demotion reason: {demoted:?}"
    );
    let registered = service.registry().resolve("bb", None).unwrap();
    let plan = registered.plan(bb_args(), vec![("y", bb_y())]).unwrap();
    let native = plan
        .backends()
        .into_iter()
        .find(|b| b.backend == ExecBackend::Native)
        .unwrap();
    assert!(!native.available, "the breaker makes Native unavailable");
    assert!(native.detail.contains("circuit breaker open"), "detail: {}", native.detail);
    service.shutdown();
}
