//! The shape-generic Cuda/C emitter, exercised through the public
//! `augur::codegen` API.
//!
//! These pins moved out of the (now re-exporting) `augur::codegen`
//! module when emission was consolidated in `augur_backend::codegen`:
//! the C flavor's OpenMP pragmas and sweep driver, the Cuda flavor's
//! kernels/atomics, the HMC and ESlice library calls, up-front buffer
//! declarations — plus the symbol manifest a [`CodegenUnit`] now carries
//! so consumers read structure from data instead of grepping the text.

use augur::codegen::{emit, CodegenTarget, CodegenUnit, SymbolKind};
use augur::prelude::*;

const GMM: &str = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
    param mu[k] ~ MvNormal(mu_0, Sigma_0) for k <- 0 until K ;
    param z[n] ~ Categorical(pis) for n <- 0 until N ;
    data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
}"#;

const HLR: &str = r#"(lambda, N, D, x) => {
    param sigma2 ~ Exponential(lambda) ;
    param b ~ Normal(0.0, sigma2) ;
    param theta[j] ~ Normal(0.0, sigma2) for j <- 0 until D ;
    data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta) + b)) for n <- 0 until N ;
}"#;

/// Runs the shape-generic phases (parse, typecheck, Density IL,
/// schedule, Low-- lowering) and renders the requested flavor.
fn unit(src: &str, sched: Option<&str>, target: CodegenTarget) -> CodegenUnit {
    let model = match sched {
        Some(s) => Model::with_schedule(src, s),
        None => Model::compile(src),
    }
    .unwrap();
    let dm = model.density_model();
    let sched = match sched {
        Some(s) => augur_kernel::parse_schedule(s).unwrap(),
        None => augur_kernel::heuristic_schedule(dm).unwrap(),
    };
    let kp = augur_kernel::plan(dm, &sched).unwrap();
    let lowered = augur_low::lower(dm, &kp).unwrap();
    emit(&lowered, target)
}

#[test]
fn c_flavor_has_openmp_pragmas_and_sweep() {
    let c = unit(GMM, None, CodegenTarget::C).source;
    assert!(c.contains("#include \"augur_runtime.h\""));
    assert!(c.contains("#pragma omp parallel for"), "{c}");
    assert!(c.contains("void mcmc_sweep(augur_rng *rng)"));
    assert!(c.contains("u0_gibbs(rng); /* Gibbs: resamples mu"), "{c}");
    // finite-sum Gibbs draws from log weights
    assert!(c.contains("augur_categorical_logits_sample"), "{c}");
}

#[test]
fn cuda_flavor_has_kernels_and_atomics() {
    let cu = unit(GMM, None, CodegenTarget::Cuda).source;
    assert!(cu.contains("__global__ void"), "{cu}");
    assert!(cu.contains("blockIdx.x * blockDim.x + threadIdx.x"), "{cu}");
    assert!(cu.contains("atomicAdd(&"), "{cu}");
    assert!(cu.contains("<<<"), "kernel launches: {cu}");
}

#[test]
fn hmc_sweep_calls_library_update() {
    let c = unit(HLR, None, CodegenTarget::C).source;
    assert!(c.contains("augur_hmc_update(rng, u0_ll, u0_grad)"), "{c}");
    assert!(c.contains("/* block: sigma2, b, theta */"), "{c}");
    // the AD-generated gradient calls the paper's grad primitives
    assert!(c.contains("augur_bernoullilogit_grad2("), "{c}");
}

#[test]
fn eslice_schedule_renders_library_call() {
    let c = unit(GMM, Some("ESlice mu (*) Gibbs z"), CodegenTarget::C).source;
    assert!(c.contains("augur_eslice_update(rng, u0_lik, u0_prior_sample)"), "{c}");
}

#[test]
fn buffers_are_declared_up_front() {
    let c = unit(GMM, None, CodegenTarget::C).source;
    // sufficient statistics of the conjugate mu update
    assert!(c.contains("static augur_buf_t u0_t0_cnt;"), "{c}");
    assert!(c.contains("static augur_buf_t u0_t0_sum;"), "{c}");
}

/// Every emitted function shows up in the symbol manifest with the
/// right kind, and the manifest distills into the launch counts the
/// gpu-sim cost model consumes.
#[test]
fn symbol_manifest_matches_the_emitted_text() {
    let c = unit(GMM, None, CodegenTarget::C);
    assert_eq!(c.symbols_of(SymbolKind::SweepDriver).count(), 1);
    for s in c.symbols_of(SymbolKind::Proc) {
        assert!(
            c.source.contains(&format!("double {}(augur_rng *rng)", s.name)),
            "{} missing from C source",
            s.name
        );
    }

    let cu = unit(GMM, None, CodegenTarget::Cuda);
    let kernels: Vec<_> = cu
        .symbols
        .iter()
        .filter(|s| matches!(s.kind, SymbolKind::CudaKernel { .. }))
        .collect();
    assert!(!kernels.is_empty(), "GMM should emit Cuda kernels");
    for s in &kernels {
        assert!(
            cu.source.contains(&format!("__global__ void {}(", s.name)),
            "{} missing from Cuda source",
            s.name
        );
    }
    assert!(
        kernels.iter().any(|s| s.kind == SymbolKind::CudaKernel { atomic: true }),
        "the sufficient-statistics kernel serializes through atomicAdd"
    );

    let m = cu.manifest();
    assert_eq!(m.kernels, kernels.len());
    assert!(m.atomic_kernels >= 1);
    assert!(m.atomic_kernels <= m.kernels);
}
