//! Cross-system gradient check: the compiler's source-to-source AD
//! (Fig. 8) must agree with the Stan baseline's tape AD on the same HLR
//! posterior — two completely independent implementations.

use augur::{HostValue, Model, SessionConfig};
use augur_backend::mcmc::{gradient, log_density_flat, write_position, GradTarget};
use augur_stan::{HlrModel, StanModel, Tape};
use augurv2::{models, workloads};

#[test]
fn source_to_source_ad_matches_tape_ad_on_hlr() {
    let (n, d) = (20, 3);
    let data = workloads::logistic_data(n, d, 99);
    let rows: Vec<Vec<f64>> = (0..n).map(|i| data.x.row(i).to_vec()).collect();
    let lambda = 1.0;

    // --- AugurV2 side: compiled ll and grad procedures ---
    let model = Model::compile(models::HLR).unwrap();
    let mut sampler = model
        .plan(
            vec![
                HostValue::Real(lambda),
                HostValue::Int(n as i64),
                HostValue::Int(d as i64),
                HostValue::Ragged(data.x.clone()),
            ],
            vec![("y", HostValue::VecF(data.y.clone()))],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    sampler.init().unwrap();

    // --- Stan side: the same posterior, hand-marginalized ---
    let stan = HlrModel {
        x: rows,
        y: data.y.iter().map(|&v| v as u8).collect(),
        lambda,
    };

    // Probe several unconstrained positions q = [log σ², b, θ…].
    let probes: Vec<Vec<f64>> = vec![
        vec![0.0, 0.0, 0.0, 0.0, 0.0],
        vec![0.5, -0.3, 0.7, -0.2, 0.1],
        vec![-1.0, 0.4, -0.6, 0.9, -0.5],
    ];

    // Reach into the backend: rebuild the HMC step's target layout.
    // The heuristic schedule makes step 0 an HMC block over
    // (sigma2, b, theta) with a Log transform on sigma2.
    let engine = sampler.engine_mut();
    let ids: Vec<GradTarget> = [
        ("sigma2", "u0_adj_sigma2", augur_low::Transform::Log),
        ("b", "u0_adj_b", augur_low::Transform::Identity),
        ("theta", "u0_adj_theta", augur_low::Transform::Identity),
    ]
    .iter()
    .map(|(v, a, t)| GradTarget {
        var: engine.state.expect_id(v),
        adj: Some(engine.state.expect_id(a)),
        transform: *t,
    })
    .collect();
    let table = sampler_table(&mut sampler);

    for q in probes {
        let (ll_a, g_a) = {
            let engine = sampler.engine_mut();
            let ll = log_density_flat(engine, &table, table_index(&table, "u0_ll"), &ids, &q);
            write_position(engine, &ids, &q);
            let g = gradient(engine, &table, table_index(&table, "u0_grad"), &ids, &q);
            (ll, g)
        };
        let (ll_s, g_s) = {
            let mut tape = Tape::new();
            let vs: Vec<augur_stan::V> = q.iter().map(|&v| tape.leaf(v)).collect();
            let lp = stan.log_prob(&mut tape, &vs);
            let g = tape.grad(lp, &vs);
            (tape.val(lp), g)
        };
        assert!(
            (ll_a - ll_s).abs() < 1e-8,
            "log-density mismatch at {q:?}: {ll_a} vs {ll_s}"
        );
        for i in 0..q.len() {
            assert!(
                (g_a[i] - g_s[i]).abs() < 1e-8,
                "gradient dim {i} mismatch at {q:?}: {} vs {}",
                g_a[i],
                g_s[i]
            );
        }
    }
}

// The driver does not expose its ProcTable; recompile the procedures the
// same way it does. This keeps the test honest: it compiles the lowered
// model independently and compares against the tape.
fn sampler_table(sampler: &mut augur::Session) -> augur_backend::compile::ProcTable {
    use augur_backend::compile::Compiler;
    let model = Model::compile(models::HLR).unwrap();
    let dm = model.density_model();
    let sched = augur_kernel::heuristic_schedule(dm).unwrap();
    let kp = augur_kernel::plan(dm, &sched).unwrap();
    let lowered = augur_low::lower(dm, &kp).unwrap();
    let mut table = augur_backend::compile::ProcTable::default();
    let engine = sampler.engine_mut();
    for p in &lowered.procs {
        let cpu = Compiler::new(&engine.state).proc(p);
        let blk = augur_blk::to_blocks(p);
        let gpu = Compiler::new(&engine.state).blk_proc(&blk);
        table.insert(cpu, gpu, &engine.state);
    }
    table
}

fn table_index(table: &augur_backend::compile::ProcTable, name: &str) -> usize {
    table.index(name)
}
