// Needs the external `proptest` crate, which the hermetic offline build
// does not vendor. Enable with `--features proptest-tests` on a machine
// with network access.
#![cfg(feature = "proptest-tests")]

//! Pipeline fuzzing: randomly composed (well-formed) models must make it
//! through every compiler stage and a few sweeps without panicking, and
//! must leave the state at a finite log-joint.

use augur::{HostValue, McmcConfig, Model, SessionConfig};
use augur_dist::Prng;
use proptest::prelude::*;

/// One randomly chosen scalar prior, with its support class.
#[derive(Debug, Clone, Copy)]
enum ScalarPrior {
    Normal,
    Gamma,
    Beta,
    Exponential,
    InvGamma,
}

impl ScalarPrior {
    fn decl(self, name: &str, mean_ref: Option<&str>) -> String {
        match self {
            ScalarPrior::Normal => {
                let mean = mean_ref.unwrap_or("0.0");
                format!("param {name} ~ Normal({mean}, 1.5) ;")
            }
            ScalarPrior::Gamma => format!("param {name} ~ Gamma(2.0, 2.0) ;"),
            ScalarPrior::Beta => format!("param {name} ~ Beta(2.0, 2.0) ;"),
            ScalarPrior::Exponential => format!("param {name} ~ Exponential(1.0) ;"),
            ScalarPrior::InvGamma => format!("param {name} ~ InvGamma(3.0, 2.0) ;"),
        }
    }

    /// Can this parameter serve as a Normal likelihood's mean (real line)?
    fn real_line(self) -> bool {
        matches!(self, ScalarPrior::Normal)
    }

    /// Can this parameter serve as a Normal likelihood's variance?
    fn positive(self) -> bool {
        matches!(self, ScalarPrior::Gamma | ScalarPrior::Exponential | ScalarPrior::InvGamma)
    }
}

fn arb_prior() -> impl Strategy<Value = ScalarPrior> {
    prop_oneof![
        Just(ScalarPrior::Normal),
        Just(ScalarPrior::Gamma),
        Just(ScalarPrior::Beta),
        Just(ScalarPrior::Exponential),
        Just(ScalarPrior::InvGamma),
    ]
}

/// Composes a model: a chain of scalar priors (later Normals may reference
/// earlier ones as means), an optional vector layer, and a Normal/
/// Bernoulli/Poisson data declaration wired to compatible parameters.
#[derive(Debug, Clone)]
struct FuzzModel {
    src: String,
    n: usize,
    likelihood: u8, // 0 = Normal, 1 = Bernoulli(sigmoid), 2 = Poisson(exp)
}

fn arb_model() -> impl Strategy<Value = FuzzModel> {
    (
        prop::collection::vec(arb_prior(), 1..4),
        any::<bool>(), // vector layer?
        0u8..3,        // likelihood family
        2usize..7,     // data size
        any::<bool>(), // chain means?
    )
        .prop_map(|(priors, vector_layer, likelihood, n, chain)| {
            let mut src = String::from("(N) => {\n");
            let mut names: Vec<(String, ScalarPrior)> = Vec::new();
            for (i, p) in priors.iter().enumerate() {
                let name = format!("s{i}");
                let mean_ref = if chain && p.real_line() {
                    names.iter().rev().find(|(_, q)| q.real_line()).map(|(n, _)| n.clone())
                } else {
                    None
                };
                src.push_str("  ");
                src.push_str(&p.decl(&name, mean_ref.as_deref()));
                src.push('\n');
                names.push((name, *p));
            }
            // pick a mean-capable and a variance-capable parameter
            let mean = names
                .iter()
                .find(|(_, p)| p.real_line())
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| "0.0".to_owned());
            let var = names
                .iter()
                .find(|(_, p)| p.positive())
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| "1.0".to_owned());
            let loc = if vector_layer {
                src.push_str(&format!(
                    "  param w[n] ~ Normal({mean}, {var}) for n <- 0 until N ;\n"
                ));
                "w[n]".to_owned()
            } else {
                mean.clone()
            };
            match likelihood {
                0 => src.push_str(&format!(
                    "  data y[n] ~ Normal({loc}, 1.0) for n <- 0 until N ;\n"
                )),
                1 => src.push_str(&format!(
                    "  data y[n] ~ Bernoulli(sigmoid({loc})) for n <- 0 until N ;\n"
                )),
                _ => src.push_str(&format!(
                    "  data y[n] ~ Poisson(exp({loc})) for n <- 0 until N ;\n"
                )),
            }
            src.push('}');
            FuzzModel { src, n, likelihood }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_models_compile_and_run(model in arb_model(), seed in 0u64..1000) {
        let mut rng = Prng::seed_from_u64(seed);
        let y: Vec<f64> = (0..model.n)
            .map(|_| match model.likelihood {
                0 => rng.normal(0.0, 1.0),
                1 => f64::from(rng.bernoulli(0.5)),
                _ => rng.poisson(2.0) as f64,
            })
            .collect();
        // The heuristic must always produce *some* plan for these models.
        let compiled = Model::compile(&model.src)
            .unwrap_or_else(|e| panic!("compile failed on:\n{}\n{e}", model.src));
        prop_assert!(!compiled.kernel().is_empty());
        let mut s = compiled
            .plan(vec![HostValue::Int(model.n as i64)], vec![("y", HostValue::VecF(y))])
            .unwrap_or_else(|e| panic!("planning failed on:\n{}\n{e}", model.src))
            .session(SessionConfig {
                seed,
                mcmc: McmcConfig { step_size: 0.02, leapfrog_steps: 4, ..Default::default() },
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("build failed on:\n{}\n{e}", model.src));
        s.init().unwrap();
        for _ in 0..5 {
            s.sweep();
        }
        let lj = s.log_joint();
        prop_assert!(lj.is_finite(), "log joint {lj} on:\n{}", model.src);
        // every parameter stays finite
        for p in s.param_names().to_vec() {
            let vals = s.param(&p).unwrap().to_vec();
            prop_assert!(vals.iter().all(|v| v.is_finite()), "{p} went non-finite");
        }
    }

    /// The Cuda/C emitter must render every random model without panicking.
    #[test]
    fn random_models_emit_native_code(model in arb_model()) {
        let compiled = Model::compile(&model.src).unwrap();
        let c = compiled.emit_native(augur::codegen::CodegenTarget::C)
            .unwrap_or_else(|e| panic!("emit failed on:\n{}\n{e}", model.src));
        prop_assert!(c.contains("void mcmc_sweep"));
        let cu = compiled.emit_native(augur::codegen::CodegenTarget::Cuda).unwrap();
        prop_assert!(cu.contains("__global__") || !cu.contains("parBlk"));
    }
}
