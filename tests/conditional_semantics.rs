//! Semantic validation of the §3.3 conditional computation: for any two
//! values `v`, `v'` of a target slice,
//!
//! ```text
//! log p(x[v]) − log p(x[v']) = log cond(v) − log cond(v')
//! ```
//!
//! — the factors dropped by the conditional have no functional dependence
//! on the target, and the categorical-indexing/factoring rewrites must not
//! change the function. We check this numerically by compiling both the
//! full-model log-joint and the conditional's factors to Low-- procedures
//! and evaluating them on random states.

use augur_backend::compile::{Compiler, ProcTable};
use augur_backend::eval::{Engine, ExecMode};
use augur_backend::setup::build_state;
use augur_backend::state::HostValue;
use augur_density::{conditional, DensityModel, Factor};
use augur_dist::Prng;
use augur_kernel::{heuristic_schedule, plan};
use augur_low::from_density::factors_ll_body;
use augur_low::il::{Expr, ProcDecl};
use gpu_sim::{Device, DeviceConfig};

/// Builds an engine with the full-model ll proc at index 0 and the
/// conditional-of-`target` ll proc at index 1.
fn build_engine(
    src: &str,
    target: &str,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
) -> (Engine, ProcTable) {
    let typed = augur_lang::typecheck(&augur_lang::parse(src).unwrap()).unwrap();
    let dm = DensityModel::from_typed(&typed).unwrap();
    let sched = heuristic_schedule(&dm).unwrap();
    let lowered = augur_low::lower(&dm, &plan(&dm, &sched).unwrap()).unwrap();
    let state = build_state(
        &dm,
        &lowered,
        args,
        data.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
    )
    .unwrap();

    let full_factors: Vec<&Factor> = dm.factors.iter().collect();
    let full = ProcDecl {
        name: "full_ll".into(),
        body: factors_ll_body(&full_factors, "model_llacc"),
        ret: Some(Expr::var("model_llacc")),
    };
    let cond = conditional(&dm, &[target]);
    let cond_factors: Vec<&Factor> = cond.factors.iter().map(|cf| &cf.factor).collect();
    let cond_proc = ProcDecl {
        name: "cond_ll".into(),
        body: factors_ll_body(&cond_factors, "model_llacc"),
        ret: Some(Expr::var("model_llacc")),
    };

    let mut table = ProcTable::default();
    for p in [&full, &cond_proc] {
        let cpu = Compiler::new(&state).proc(p);
        let blk = augur_blk::to_blocks(p);
        let gpu = Compiler::new(&state).blk_proc(&blk);
        table.insert(cpu, gpu, &state);
    }
    // initialize params by running the generated initializer
    let init = lowered
        .procs
        .iter()
        .find(|p| p.name == lowered.init_proc)
        .expect("init proc");
    let cpu = Compiler::new(&state).proc(init);
    let blk = augur_blk::to_blocks(init);
    let gpu = Compiler::new(&state).blk_proc(&blk);
    table.insert(cpu, gpu, &state);

    let mut engine = Engine::new(
        state,
        Prng::seed_from_u64(1234),
        Device::new(DeviceConfig::host_cpu_like()),
        ExecMode::Cpu,
    );
    engine.run_proc(&table, 2); // init
    (engine, table)
}

/// Perturbs one cell of the target and checks the log-density difference
/// identity.
fn check_identity(engine: &mut Engine, table: &ProcTable, target: &str, cell: usize, delta: f64) {
    let id = engine.state.expect_id(target);
    let full_0 = engine.run_proc(table, 0).unwrap();
    let cond_0 = engine.run_proc(table, 1).unwrap();
    engine.state.flat_mut(id)[cell] += delta;
    let full_1 = engine.run_proc(table, 0).unwrap();
    let cond_1 = engine.run_proc(table, 1).unwrap();
    engine.state.flat_mut(id)[cell] -= delta;
    let lhs = full_1 - full_0;
    let rhs = cond_1 - cond_0;
    assert!(
        (lhs - rhs).abs() < 1e-9,
        "{target}[{cell}] += {delta}: joint diff {lhs} vs conditional diff {rhs}"
    );
}

#[test]
fn gmm_mu_conditional_preserves_density_differences() {
    let n = 20;
    let mut rng = Prng::seed_from_u64(7);
    let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.std_normal(), rng.std_normal()]).collect();
    let (mut engine, table) = build_engine(
        augurv2::models::GMM,
        "mu",
        vec![
            HostValue::Int(3),
            HostValue::Int(n as i64),
            HostValue::VecF(vec![0.0, 0.0]),
            HostValue::Mat(augur_math::Matrix::identity(2).scale(4.0)),
            HostValue::VecF(vec![1.0 / 3.0; 3]),
            HostValue::Mat(augur_math::Matrix::identity(2)),
        ],
        vec![(
            "x",
            HostValue::Ragged(augur_math::FlatRagged::from_rows(rows)),
        )],
    );
    for cell in 0..6 {
        for delta in [0.3, -0.7, 1.3] {
            check_identity(&mut engine, &table, "mu", cell, delta);
        }
    }
}

#[test]
fn gmm_z_conditional_preserves_density_differences() {
    // discrete target: flip assignments between categories
    let n = 15;
    let mut rng = Prng::seed_from_u64(8);
    let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.std_normal(), rng.std_normal()]).collect();
    let (mut engine, table) = build_engine(
        augurv2::models::GMM,
        "z",
        vec![
            HostValue::Int(3),
            HostValue::Int(n as i64),
            HostValue::VecF(vec![0.0, 0.0]),
            HostValue::Mat(augur_math::Matrix::identity(2).scale(4.0)),
            HostValue::VecF(vec![0.2, 0.3, 0.5]),
            HostValue::Mat(augur_math::Matrix::identity(2)),
        ],
        vec![(
            "x",
            HostValue::Ragged(augur_math::FlatRagged::from_rows(rows)),
        )],
    );
    // set every z to category 0, then flip selected ones to 1 and 2
    let zid = engine.state.expect_id("z");
    for c in engine.state.flat_mut(zid).iter_mut() {
        *c = 0.0;
    }
    for cell in 0..n {
        for delta in [1.0, 2.0] {
            check_identity(&mut engine, &table, "z", cell, delta);
        }
    }
}

#[test]
fn lda_phi_conditional_preserves_density_differences() {
    // the categorical-indexing rewrite with a two-level discrete variable
    let corpus = augurv2::workloads::lda_corpus(3, 8, 20, 10, 9);
    let (mut engine, table) = build_engine(
        augurv2::models::LDA,
        "phi",
        vec![
            HostValue::Int(3),
            HostValue::Int(corpus.docs.len() as i64),
            HostValue::VecF(vec![0.5; 3]),
            HostValue::VecF(vec![0.2; corpus.vocab]),
            HostValue::VecI(corpus.lens.clone()),
        ],
        vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
    );
    // multiplicative perturbations keep phi rows positive (they no longer
    // sum to one, but the identity is about *unnormalized* densities being
    // equal as functions of phi — Dirichlet ll is defined elementwise)
    let pid = engine.state.expect_id("phi");
    let cells = engine.state.flat(pid).len();
    for cell in (0..cells).step_by(7) {
        check_identity(&mut engine, &table, "phi", cell, 0.05);
    }
}

#[test]
fn hlr_sigma2_conditional_preserves_density_differences() {
    let data = augurv2::workloads::logistic_data(25, 4, 10);
    let (mut engine, table) = build_engine(
        augurv2::models::HLR,
        "sigma2",
        vec![
            HostValue::Real(1.0),
            HostValue::Int(25),
            HostValue::Int(4),
            HostValue::Ragged(data.x.clone()),
        ],
        vec![("y", HostValue::VecF(data.y.clone()))],
    );
    for delta in [0.2, 0.9, 2.5] {
        check_identity(&mut engine, &table, "sigma2", 0, delta);
    }
}

#[test]
fn hgmm_sigma_conditional_preserves_density_differences() {
    // matrix-valued target under the categorical-indexing rewrite
    let data = augurv2::workloads::hgmm_data(2, 2, 25, 11);
    let (mut engine, table) = build_engine(
        augurv2::models::HGMM,
        "Sigma",
        vec![
            HostValue::Int(2),
            HostValue::Int(25),
            HostValue::VecF(vec![1.0; 2]),
            HostValue::VecF(vec![0.0; 2]),
            HostValue::Mat(augur_math::Matrix::identity(2).scale(10.0)),
            HostValue::Real(4.0),
            HostValue::Mat(augur_math::Matrix::identity(2)),
        ],
        vec![("y", HostValue::Ragged(data.points.clone()))],
    );
    // perturb diagonal entries (keeps the matrices SPD)
    for cell in [0usize, 3, 4, 7] {
        check_identity(&mut engine, &table, "Sigma", cell, 0.4);
    }
}
