// Needs the external `proptest` crate, which the hermetic offline build
// does not vendor. Enable with `--features proptest-tests` on a machine
// with network access.
#![cfg(feature = "proptest-tests")]

//! Property test: checkpoint serialization round-trips every snapshot —
//! arbitrary buffer contents (including NaN/∞ bit patterns), counters,
//! and tuning state — through render/parse and through the filesystem.

use augur_backend::checkpoint::{Checkpoint, StepTuning};
use augur_backend::KernelStats;
use proptest::prelude::*;

fn arb_stats() -> impl Strategy<Value = KernelStats> {
    (any::<[u64; 7]>(), any::<f64>()).prop_map(|(c, w)| KernelStats {
        proposals: c[0],
        accepts: c[1],
        leapfrogs: c[2],
        divergences: c[3],
        slice_reflections: c[4],
        slice_shrinks: c[5],
        numerical_events: c[6],
        wall_secs: w,
    })
}

fn arb_tuning() -> impl Strategy<Value = StepTuning> {
    (any::<f64>(), any::<u64>(), any::<u64>()).prop_map(|(scale, consec_div, consec_clean)| {
        StepTuning { scale, consec_div, consec_clean }
    })
}

fn arb_buffer() -> impl Strategy<Value = (String, Vec<u64>)> {
    ("[A-Za-z][A-Za-z0-9_]{0,12}", prop::collection::vec(any::<u64>(), 0..40))
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        "[ -~]{0,60}",
        any::<u64>(),
        any::<u64>(),
        prop::option::of(any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec(arb_stats(), 0..5),
        prop::collection::vec(arb_tuning(), 0..5),
        prop::collection::vec(arb_buffer(), 0..6),
    )
        .prop_map(
            |(schedule, sweep, rng_state, rng_spare, (seed, launch, work), stats, tuning, buffers)| {
                Checkpoint {
                    schedule,
                    sweep,
                    rng_state,
                    rng_spare,
                    master_seed: seed,
                    launch_counter: launch,
                    work,
                    stats,
                    tuning,
                    buffers,
                }
            },
        )
}

fn same_modulo_nan(a: &Checkpoint, b: &Checkpoint) -> bool {
    // `Checkpoint: PartialEq` compares f64 fields by value, which NaN
    // breaks; compare the serialized forms instead — the format stores
    // every float as its exact bit pattern.
    a.render() == b.render()
}

proptest! {
    #[test]
    fn render_parse_roundtrip(ck in arb_checkpoint()) {
        let back = Checkpoint::parse(&ck.render()).unwrap();
        prop_assert!(same_modulo_nan(&ck, &back));
    }

    #[test]
    fn file_roundtrip(ck in arb_checkpoint()) {
        let path = std::env::temp_dir().join(format!(
            "augur_ckpt_prop_{}_{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ));
        ck.write_atomic(&path).unwrap();
        let back = Checkpoint::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(same_modulo_nan(&ck, &back));
    }

    #[test]
    fn parse_never_panics_on_arbitrary_text(text in "[ -~\n]{0,400}") {
        let _ = Checkpoint::parse(&text);
    }
}
