//! Integration tests: the full compiler pipeline on the paper's benchmark
//! models, across schedules and targets.
#![allow(clippy::needless_range_loop)]

use augur::{DeviceConfig, HostValue, McmcConfig, Model, SessionConfig, Target};
use augur_math::vecops::mean;
use augur_math::Matrix;
use augurv2::{models, workloads};

fn hgmm_args(k: usize, d: usize, n: usize) -> Vec<HostValue> {
    vec![
        HostValue::Int(k as i64),
        HostValue::Int(n as i64),
        HostValue::VecF(vec![1.0; k]),
        HostValue::VecF(vec![0.0; d]),
        HostValue::Mat(Matrix::identity(d).scale(50.0)),
        HostValue::Real((d + 2) as f64),
        HostValue::Mat(Matrix::identity(d)),
    ]
}

#[test]
fn hgmm_heuristic_recovers_clusters_and_weights() {
    let (k, d, n) = (3, 2, 450);
    let data = workloads::hgmm_data(k, d, n, 32);
    let model = Model::compile(models::HGMM).unwrap();
    assert_eq!(
        model.kernel(),
        "Gibbs Single(pi) (*) Gibbs Single(mu) (*) Gibbs Single(Sigma) (*) Gibbs Single(z)"
    );
    let mut s = model
        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(data.points.clone()))])
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    for _ in 0..120 {
        s.sweep();
    }
    // each true mean is matched by some posterior component
    let mu = s.param("mu").unwrap().to_vec();
    for tm in &data.true_means {
        let best = (0..k)
            .map(|c| {
                let est = &mu[c * d..(c + 1) * d];
                est.iter().zip(tm).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 1.0, "no component near {tm:?} (best distance {best})");
    }
    // mixture weights near uniform (data generated uniformly)
    let pi = s.param("pi").unwrap();
    for &p in pi {
        assert!((p - 1.0 / k as f64).abs() < 0.15, "weight {p}");
    }
    // assignments mostly agree with the truth up to relabeling
    let z = s.param("z").unwrap();
    let mut label_map = vec![0usize; k];
    for c in 0..k {
        // map true component c to the nearest posterior component
        let tm = &data.true_means[c];
        label_map[c] = (0..k)
            .min_by(|&a, &b| {
                let da: f64 = mu[a * d..(a + 1) * d].iter().zip(tm).map(|(x, y)| (x - y).powi(2)).sum();
                let db: f64 = mu[b * d..(b + 1) * d].iter().zip(tm).map(|(x, y)| (x - y).powi(2)).sum();
                da.total_cmp(&db)
            })
            .expect("k > 0");
    }
    let agree = (0..n)
        .filter(|&i| z[i] as usize == label_map[data.true_z[i]])
        .count();
    assert!(agree * 10 > n * 9, "only {agree}/{n} assignments agree");
}

#[test]
fn fig10_three_schedules_converge_to_similar_log_joint() {
    let (k, d, n) = (3, 2, 300);
    let data = workloads::hgmm_data(k, d, n, 33);
    let mut finals = Vec::new();
    for sched in [
        "Gibbs pi (*) Gibbs mu (*) Gibbs Sigma (*) Gibbs z",
        "Gibbs pi (*) ESlice mu (*) Gibbs Sigma (*) Gibbs z",
        "Gibbs pi (*) HMC mu (*) Gibbs Sigma (*) Gibbs z",
    ] {
        let model = Model::with_schedule(models::HGMM, sched).unwrap();
        let mut s = model
            .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(data.points.clone()))])
            .unwrap()
            .session(SessionConfig {
                mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 12, ..Default::default() },
                ..Default::default()
            })
            .unwrap();
        s.init().unwrap();
        for _ in 0..1000 {
            s.sweep();
        }
        finals.push(s.log_joint());
    }
    // all three composable samplers land in the same ballpark (Fig. 10:
    // "every system converges to roughly the same log-predictive
    // probability")
    let best = finals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for (i, &f) in finals.iter().enumerate() {
        assert!(
            f > best - 0.25 * best.abs(),
            "schedule {i} at {f} vs best {best} ({finals:?})"
        );
    }
}

#[test]
fn lda_gibbs_beats_random_assignments_on_log_joint() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 30, 60, 25, 41);
    let model = Model::compile(models::LDA).unwrap();
    let args = vec![
        HostValue::Int(topics as i64),
        HostValue::Int(corpus.docs.len() as i64),
        HostValue::VecF(vec![0.5; topics]),
        HostValue::VecF(vec![0.1; corpus.vocab]),
        HostValue::VecI(corpus.lens.clone()),
    ];
    let mut s = model
        .plan(args, vec![("w", HostValue::RaggedI(corpus.docs.clone()))])
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    let initial = s.log_joint();
    for _ in 0..60 {
        s.sweep();
    }
    let trained = s.log_joint();
    assert!(
        trained > initial + 50.0,
        "no improvement: {initial} -> {trained}"
    );
    // theta rows remain simplex vectors
    let theta = s.param("theta").unwrap();
    for dch in theta.chunks(topics) {
        let sum: f64 = dch.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(dch.iter().all(|&p| p >= 0.0));
    }
}

#[test]
fn gpu_target_matches_cpu_bitwise_on_lda() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 12, 40, 15, 43);
    let args = vec![
        HostValue::Int(topics as i64),
        HostValue::Int(corpus.docs.len() as i64),
        HostValue::VecF(vec![0.5; topics]),
        HostValue::VecF(vec![0.1; corpus.vocab]),
        HostValue::VecI(corpus.lens.clone()),
    ];
    // one shared plan: the target is a session concern, and the second
    // session must not trigger a recompile.
    let model = Model::compile(models::LDA).unwrap();
    let plan = model
        .plan(args, vec![("w", HostValue::RaggedI(corpus.docs.clone()))])
        .unwrap();
    let build = |target: Target| {
        let mut s = plan.session(SessionConfig { target, ..Default::default() }).unwrap();
        s.init().unwrap();
        for _ in 0..10 {
            s.sweep();
        }
        s
    };
    let cpu = build(Target::Cpu);
    let gpu = build(Target::Gpu(DeviceConfig::titan_black_like()));
    assert_eq!(model.cache_stats().misses, 1, "sessions must share one specialization");
    let (ct, gt) = (cpu.param("theta").unwrap(), gpu.param("theta").unwrap());
    assert_eq!(ct.len(), gt.len());
    for (a, b) in ct.iter().zip(gt) {
        assert_eq!(a.to_bits(), b.to_bits(), "CPU/GPU divergence");
    }
    // and the optimizer actually did something on the GPU build
    let report = gpu.opt_report();
    assert!(report.converted_to_sum > 0 || report.commuted > 0 || report.inlined > 0);
}

#[test]
fn augur_and_jags_agree_on_hgmm_posterior_means() {
    // The Fig. 11 comparison runs "the same high-level inference
    // algorithm" on both systems; their posteriors must agree.
    let (k, d, n) = (2, 2, 200);
    let data = workloads::hgmm_data(k, d, n, 51);
    let model = Model::compile(models::HGMM).unwrap();
    let mut s = model
        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(data.points.clone()))])
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    for _ in 0..80 {
        s.sweep();
    }

    let mut j = augur_jags::JagsModel::build(
        models::HGMM,
        hgmm_args(k, d, n),
        vec![("y", HostValue::Ragged(data.points.clone()))],
        52,
    )
    .unwrap();
    j.init();
    for _ in 0..80 {
        j.sweep();
    }

    // compare the *sets* of cluster means (label switching allowed)
    let mu_a = s.param("mu").unwrap().to_vec();
    let mu_j = j.values("mu");
    for c in 0..k {
        let ma = &mu_a[c * d..(c + 1) * d];
        let best = (0..k)
            .map(|cj| {
                mu_j[cj * d..(cj + 1) * d]
                    .iter()
                    .zip(ma)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.5, "augur component {c} has no jags counterpart ({best})");
    }
}

#[test]
fn stan_baseline_agrees_on_mixture_means() {
    let (k, d, n) = (2, 2, 150);
    let data = workloads::hgmm_data(k, d, n, 61);
    let rows: Vec<Vec<f64>> = (0..n).map(|i| data.points.row(i).to_vec()).collect();
    let stan = augur_stan::MarginalGmm {
        data: rows,
        k,
        prior_var: 50.0,
        like_var: 1.0,
        alpha: 1.0,
    };
    let out = augur_stan::sample(
        &stan,
        augur_stan::SampleOpts { warmup: 150, samples: 150, seed: 62, ..Default::default() },
    );
    let last = out.draws.last().unwrap();
    let (_, mus) = stan.unpack(last);
    for tm in &data.true_means {
        let best = mus
            .iter()
            .map(|m| {
                m.iter().zip(tm).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 1.2, "stan found no component near {tm:?} (best {best})");
    }
}

#[test]
fn log_predictive_improves_with_training() {
    let (k, d, n) = (3, 2, 300);
    let train = workloads::hgmm_data(k, d, n, 71);
    let test = workloads::hgmm_data(k, d, 100, 72);
    let model = Model::compile(models::HGMM).unwrap();
    let mut s = model
        .plan(hgmm_args(k, d, n), vec![("y", HostValue::Ragged(train.points.clone()))])
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    let lp_of = |s: &augur::Session| {
        let pi = s.param("pi").unwrap().to_vec();
        let mu = s.param("mu").unwrap().to_vec();
        let sig = s.param("Sigma").unwrap().to_vec();
        let mus: Vec<Vec<f64>> = (0..k).map(|c| mu[c * d..(c + 1) * d].to_vec()).collect();
        let sigs: Vec<Matrix> = (0..k)
            .map(|c| Matrix::from_vec(d, d, sig[c * d * d..(c + 1) * d * d].to_vec()).unwrap())
            .collect();
        workloads::gmm_log_predictive(&test.points, &pi, &mus, &sigs)
    };
    let before = lp_of(&s);
    for _ in 0..100 {
        s.sweep();
    }
    let after = lp_of(&s);
    assert!(after > before + 10.0, "log-predictive {before} -> {after}");
}

#[test]
fn acceptance_rates_are_tracked_per_step() {
    let data = workloads::logistic_data(100, 4, 81);
    let model = Model::compile(models::HLR).unwrap();
    let mut s = model
        .plan(
            vec![
                HostValue::Real(1.0),
                HostValue::Int(100),
                HostValue::Int(4),
                HostValue::Ragged(data.x.clone()),
            ],
            vec![("y", HostValue::VecF(data.y.clone()))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 10, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
    s.init().unwrap();
    for _ in 0..50 {
        s.sweep();
    }
    let rate = s.acceptance_rate(0);
    assert!(rate > 0.3 && rate <= 1.0, "HMC acceptance {rate}");
}

#[test]
fn sample_records_requested_parameters() {
    let data = workloads::hgmm_data(2, 2, 60, 91);
    let model = Model::compile(models::HGMM).unwrap();
    let mut s = model
        .plan(hgmm_args(2, 2, 60), vec![("y", HostValue::Ragged(data.points.clone()))])
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    let samples = s.sample(5, &["pi", "mu"]).unwrap();
    assert_eq!(samples.len(), 5);
    for snap in &samples {
        assert_eq!(snap["pi"].len(), 2);
        assert_eq!(snap["mu"].len(), 4);
        assert!(!snap.contains_key("z"));
        assert!((snap["pi"].iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
    // chains actually move
    let firsts: Vec<f64> = samples.iter().map(|m| m["mu"][0]).collect();
    assert!(mean(&firsts).is_finite());
}
