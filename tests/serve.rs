//! Service-path equivalence: a `sample` request through `augur-serve`
//! must be byte-identical to a direct `ChainPlan` run over the same
//! plan and base config — draws *and* deterministic report digests —
//! including when chains are forcibly migrated between shard workers
//! mid-run via the checkpoint protocol.

use std::collections::HashMap;

use augur::chains::{chain_seed, ChainPlan};
use augur::{HostValue, McmcConfig, Model, Plan, SessionConfig};
use augur_math::Matrix;
use augur_serve::{
    hermetic_config, ExplainRequest, ModelRegistry, ModelSpec, SampleRequest, ScoreRequest,
    Service, ServiceConfig,
};
use augurv2::{models, workloads};

/// One benchmark workload: source, arguments, data, recorded params,
/// and the base session config both paths share.
struct Workload {
    name: &'static str,
    source: &'static str,
    args: Vec<HostValue>,
    data: Vec<(String, HostValue)>,
    record: Vec<String>,
    base: SessionConfig,
}

fn hgmm_workload() -> Workload {
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 7);
    Workload {
        name: "hgmm",
        source: models::HGMM,
        args: vec![
            HostValue::Int(k as i64),
            HostValue::Int(n as i64),
            HostValue::VecF(vec![1.0; k]),
            HostValue::VecF(vec![0.0; d]),
            HostValue::Mat(Matrix::identity(d).scale(50.0)),
            HostValue::Real((d + 2) as f64),
            HostValue::Mat(Matrix::identity(d)),
        ],
        data: vec![("y".into(), HostValue::Ragged(data.points))],
        record: vec!["mu".into(), "pi".into()],
        base: hermetic_config(0xBEEF),
    }
}

fn lda_workload() -> Workload {
    let topics = 2;
    let corpus = workloads::lda_corpus(topics, 8, 12, 8, 11);
    Workload {
        name: "lda",
        source: models::LDA,
        args: vec![
            HostValue::Int(topics as i64),
            HostValue::Int(corpus.docs.len() as i64),
            HostValue::VecF(vec![0.5; topics]),
            HostValue::VecF(vec![0.1; corpus.vocab]),
            HostValue::VecI(corpus.lens),
        ],
        data: vec![("w".into(), HostValue::RaggedI(corpus.docs))],
        record: vec!["theta".into()],
        base: hermetic_config(0xBEEF),
    }
}

fn hlr_workload() -> Workload {
    let (n, d) = (30, 3);
    let data = workloads::logistic_data(n, d, 13);
    Workload {
        name: "hlr",
        source: models::HLR,
        args: vec![
            HostValue::Real(1.0),
            HostValue::Int(n as i64),
            HostValue::Int(d as i64),
            HostValue::Ragged(data.x),
        ],
        data: vec![("y".into(), HostValue::VecF(data.y))],
        record: vec!["theta".into(), "b".into()],
        base: SessionConfig {
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..McmcConfig::default() },
            ..hermetic_config(0xBEEF)
        },
    }
}

const CHAINS: usize = 3;
const SWEEPS: usize = 12;

type Draws = Vec<Vec<HashMap<String, Vec<f64>>>>;

/// The reference: per-chain draws and report digests from direct
/// sessions over the shared plan, seeded exactly as `ChainPlan` seeds.
fn direct_runs(plan: &Plan, w: &Workload) -> (Draws, Vec<String>) {
    let record: Vec<&str> = w.record.iter().map(String::as_str).collect();
    let mut draws = Vec::new();
    let mut digests = Vec::new();
    for c in 0..CHAINS {
        let mut cfg = w.base.clone();
        cfg.seed = chain_seed(w.base.seed, c);
        let mut s = plan.session(cfg).unwrap();
        s.init().unwrap();
        draws.push(s.sample(SWEEPS, &record).unwrap());
        digests.push(s.report().digest());
    }
    (draws, digests)
}

/// Runs one workload through both paths and cross-checks everything.
fn service_path_is_byte_identical(w: Workload) {
    let data_refs: Vec<(&str, HostValue)> =
        w.data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let record: Vec<&str> = w.record.iter().map(String::as_str).collect();

    let model = Model::compile(w.source).unwrap();
    let plan = model.plan(w.args.clone(), data_refs).unwrap();
    let (direct_draws, direct_digests) = direct_runs(&plan, &w);

    // Sanity: the manual fan-out reproduces ChainPlan itself.
    let chains = ChainPlan::new(&plan)
        .config(w.base.clone())
        .chains(CHAINS)
        .sweeps(SWEEPS)
        .record(&record)
        .run()
        .unwrap();
    assert_eq!(chains.draws, direct_draws, "{}: direct fan-out != ChainPlan", w.name);

    let registry = ModelRegistry::new();
    registry.register(w.name, ModelSpec::new(w.source)).unwrap();
    let service = Service::start(registry, ServiceConfig { workers: 3, ..Default::default() });
    let request = |migrate_every: Option<u64>| SampleRequest {
        model: w.name.into(),
        version: None,
        args: w.args.clone(),
        data: w.data.clone(),
        chains: CHAINS,
        sweeps: SWEEPS,
        record: w.record.clone(),
        config: Some(w.base.clone()),
        migrate_every,
        deadline: None,
    };

    // Unmigrated service path: each chain runs start-to-finish on one
    // worker.
    let still = service.sample(request(Some(0))).wait().unwrap().into_sample().unwrap();
    assert_eq!(still.migrations, 0);
    assert_eq!(still.draws, direct_draws, "{}: unmigrated service draws diverged", w.name);
    assert_eq!(still.report_digests, direct_digests, "{}: unmigrated digests diverged", w.name);

    // Forced mid-run migration: every chain checkpoints and hops shards
    // twice (12 sweeps in slices of 5/5/2).
    let moved = service.sample(request(Some(5))).wait().unwrap().into_sample().unwrap();
    assert_eq!(moved.migrations, (CHAINS * 2) as u64, "{}: expected 2 hops per chain", w.name);
    assert_eq!(moved.draws, direct_draws, "{}: migrated service draws diverged", w.name);
    assert_eq!(moved.report_digests, direct_digests, "{}: migrated digests diverged", w.name);
    assert_eq!(still.fingerprint, moved.fingerprint);

    // Both requests hit the same registered-model plan cache: one miss
    // (the shape is planned once), then hits.
    let stats = &service.metrics().models;
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].stats.misses, 1, "{}: shape should specialize once", w.name);
    assert!(stats[0].stats.hits >= 1, "{}: second request should hit", w.name);
    service.shutdown();
}

#[test]
fn hgmm_service_path_matches_direct_with_and_without_migration() {
    service_path_is_byte_identical(hgmm_workload());
}

#[test]
fn lda_service_path_matches_direct_with_and_without_migration() {
    service_path_is_byte_identical(lda_workload());
}

#[test]
fn hlr_service_path_matches_direct_with_and_without_migration() {
    service_path_is_byte_identical(hlr_workload());
}

#[test]
fn score_and_explain_requests_work() {
    let w = hgmm_workload();
    let registry = ModelRegistry::new();
    registry.register("hgmm", ModelSpec::new(w.source)).unwrap();
    let service = Service::start(registry, ServiceConfig::default());
    let score = |seed: u64| {
        let ticket = service.score(ScoreRequest {
            model: "hgmm".into(),
            version: None,
            args: w.args.clone(),
            data: w.data.clone(),
            config: Some(hermetic_config(seed)),
            deadline: None,
        });
        match ticket.wait().unwrap() {
            augur_serve::Response::Score(s) => s.log_joint,
            other => panic!("expected score output, got {other:?}"),
        }
    };
    let a = score(1);
    assert!(a.is_finite());
    assert_eq!(a.to_bits(), score(1).to_bits(), "scoring is deterministic per seed");

    let ticket = service.explain(ExplainRequest {
        model: "hgmm".into(),
        version: None,
        args: w.args.clone(),
        data: w.data.clone(),
        deadline: None,
    });
    match ticket.wait().unwrap() {
        augur_serve::Response::Explain(e) => {
            assert!(e.kernel.contains("Gibbs"), "kernel: {}", e.kernel);
            assert!(e.explain.contains("explain"), "explain tree: {}", e.explain);
        }
        other => panic!("expected explain output, got {other:?}"),
    }
    service.shutdown();
}

#[test]
fn failures_map_to_stable_response_codes() {
    let registry = ModelRegistry::new();
    registry.register("coin", ModelSpec::new(models::HLR)).unwrap();
    let service = Service::start(registry, ServiceConfig::default());

    let missing = service.sample(SampleRequest::new("nope")).wait().unwrap_err();
    assert_eq!(missing.code(), "unknown_model");

    // Wrong arguments for the registered model: a caller-side binding
    // failure, surfaced through the stable error-kind taxonomy.
    let bad = service
        .sample(SampleRequest { sweeps: 1, chains: 1, ..SampleRequest::new("coin") })
        .wait()
        .unwrap_err();
    assert_eq!(bad.code(), "binding");
    service.shutdown();
}

#[test]
fn trace_v4_records_request_lifecycle() {
    let path = std::env::temp_dir().join(format!(
        "augur_serve_trace_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let w = hlr_workload();
    let registry = ModelRegistry::new();
    registry.register("hlr", ModelSpec::new(w.source)).unwrap();
    let service = Service::start(
        registry,
        ServiceConfig { workers: 2, trace_path: Some(path.clone()), ..Default::default() },
    );
    service
        .sample(SampleRequest {
            args: w.args.clone(),
            data: w.data.clone(),
            chains: 2,
            sweeps: 10,
            record: w.record.clone(),
            config: Some(w.base.clone()),
            migrate_every: Some(4),
            ..SampleRequest::new("hlr")
        })
        .wait()
        .unwrap();
    service.shutdown();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    for event in ["submitted", "planned", "slice", "migrated", "completed"] {
        assert!(
            text.lines().any(|l| l.starts_with("{\"v\":4,") && l.contains(&format!("\"event\":\"{event}\""))),
            "missing v4 `{event}` record in:\n{text}"
        );
    }
    // Every record carries the request's trace id and its own span id.
    for line in text.lines() {
        assert!(line.contains("\"trace\":\""), "record without trace id: {line}");
        assert!(line.contains("\"span\":\""), "record without span id: {line}");
    }
}
