//! Observability tests: `Session::report()` against an independent
//! oracle, the JSONL trace sink, and `Chains::report()` diagnostics.

use augur::prelude::*;

const GAMMA_POISSON: &str = "(N, a, b) => {
    param r ~ Gamma(a, b) ;
    data c[n] ~ Poisson(r) for n <- 0 until N ;
}";

fn gamma_poisson_sampler(config: SessionConfig) -> Session {
    let model = Model::with_schedule(GAMMA_POISSON, "MH r").unwrap();
    let mut s = model
        .plan(
            vec![HostValue::Int(6), HostValue::Real(2.0), HostValue::Real(1.0)],
            vec![("c", HostValue::VecF(vec![3.0, 5.0, 4.0, 2.0, 6.0, 4.0]))],
        )
        .unwrap()
        .session(config)
        .unwrap();
    s.init().unwrap();
    s
}

/// For an MH-only schedule, the report's accept count must equal an
/// oracle recount from the recorded trace: a random-walk proposal is
/// accepted iff the parameter's bits changed across the sweep (the §5.5
/// restore-on-reject discipline restores rejected states bitwise).
#[test]
fn mh_accepts_match_oracle_recount_in_both_lanes() {
    for exec in [ExecBackend::Tree, ExecBackend::Tape] {
        let mut s = gamma_poisson_sampler(SessionConfig { backend: exec, ..Default::default() });
        let sweeps = 400u64;
        let mut prev = s.param("r").unwrap()[0].to_bits();
        let mut oracle_accepts = 0u64;
        for _ in 0..sweeps {
            s.sweep();
            let now = s.param("r").unwrap()[0].to_bits();
            if now != prev {
                oracle_accepts += 1;
            }
            prev = now;
        }
        let report = s.report();
        assert_eq!(report.schedule, "MH Single(r)");
        assert_eq!(report.sweeps, sweeps);
        let stats = report.kernel("MH Single(r)").expect("kernel present");
        assert_eq!(stats.proposals, sweeps, "{exec:?}");
        assert_eq!(stats.accepts, oracle_accepts, "{exec:?}: report vs oracle recount");
        // sanity: a tuned random walk accepts some but not all proposals
        assert!(oracle_accepts > 0 && oracle_accepts < sweeps, "{exec:?}");
        assert_eq!(
            report.acceptance_rate("MH Single(r)"),
            Some(oracle_accepts as f64 / sweeps as f64)
        );
        assert_eq!(s.acceptance_rate(0), stats.acceptance_rate());
    }
}

/// Timers populate the per-kernel wall-time breakdown; disabling them
/// zeroes it without touching the deterministic counters.
#[test]
fn timers_are_optional_and_do_not_affect_the_digest() {
    let run = |timers: bool| {
        let mut s = gamma_poisson_sampler(SessionConfig { timers, ..Default::default() });
        for _ in 0..50 {
            s.sweep();
        }
        s.report()
    };
    let timed = run(true);
    let untimed = run(false);
    assert!(timed.exec.total_wall_secs > 0.0);
    assert_eq!(untimed.exec.total_wall_secs, 0.0);
    assert_eq!(timed.digest(), untimed.digest());
    // the rendered report carries the schedule and the counters
    let shown = format!("{timed}");
    assert!(shown.contains("MH Single(r)"));
    assert!(shown.contains("proposals"));
}

/// The JSONL sink streams one record per sweep whose per-kernel deltas
/// sum to the final report's cumulative counters.
#[test]
fn trace_sink_streams_per_sweep_deltas() {
    let path = std::env::temp_dir().join(format!(
        "augur_trace_test_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let sweeps = 60u64;
    let report = {
        let mut s = gamma_poisson_sampler(SessionConfig {
            trace_path: Some(path.clone()),
            ..Default::default()
        });
        assert_eq!(s.trace_path(), Some(path.as_path()));
        for _ in 0..sweeps {
            s.sweep();
        }
        s.report()
    };
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    // The first record describes the plan the session bound (v2 schema);
    // after it, one record per sweep.
    assert_eq!(lines.len() as u64, sweeps + 1, "plan record + one record per sweep");
    assert!(
        lines[0].contains("\"plan\":{\"event\":\"cold\"") && lines[0].contains("\"misses\":1"),
        "first trace record announces the plan: {}",
        lines[0]
    );
    let lines = &lines[1..];
    let field = |line: &str, key: &str| -> u64 {
        let at = line.find(&format!("\"{key}\":")).expect("field present");
        line[at + key.len() + 3..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let mut proposals = 0u64;
    let mut accepts = 0u64;
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(field(line, "sweep"), i as u64 + 1);
        assert!(line.contains("\"kernel\":\"MH Single(r)\""), "label in every record");
        let p = field(line, "proposals");
        assert_eq!(p, 1, "one proposal per sweep per kernel");
        proposals += p;
        accepts += field(line, "accepts");
    }
    let stats = report.kernel("MH Single(r)").unwrap();
    assert_eq!(proposals, stats.proposals);
    assert_eq!(accepts, stats.accepts);
}

/// HMC reports leapfrog counts; a well-conditioned posterior produces no
/// divergences while integrating the configured trajectory length.
#[test]
fn hmc_report_counts_leapfrogs() {
    let model = Model::with_schedule(
        "(N, tau2, s2) => {
            param m ~ Normal(0.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }",
        "HMC m",
    )
    .unwrap();
    let mut s = model
        .plan(
            vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
            vec![("y", HostValue::VecF(vec![1.2, 0.8, 1.0, 1.4, 0.6]))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 0.15, leapfrog_steps: 12, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
    s.init().unwrap();
    for _ in 0..100 {
        s.sweep();
    }
    let report = s.report();
    let stats = report.kernel("HMC Single(m)").unwrap();
    assert_eq!(stats.divergences, 0);
    assert_eq!(stats.leapfrogs, 100 * 12, "full trajectories, no early aborts");
}

/// `Chains::report()` folds per-parameter ESS and split-R̂ over every
/// recorded component.
#[test]
fn chains_report_covers_recorded_components() {
    let model = Model::compile(
        "(N, tau2, s2) => {
            param m ~ Normal(0.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }",
    )
    .unwrap();
    let plan = model
        .plan(
            vec![HostValue::Int(5), HostValue::Real(4.0), HostValue::Real(1.0)],
            vec![("y", HostValue::VecF(vec![1.2, 0.8, 1.0, 1.4, 0.6]))],
        )
        .unwrap();
    let chains = ChainPlan::new(&plan)
        .chains(4)
        .sweeps(500)
        .record(&["m"])
        .run()
        .unwrap();
    let report = chains.report().unwrap();
    assert_eq!(report.params.len(), 1);
    let m = report.param("m", 0).unwrap();
    assert!(m.ess > 100.0, "conjugate Gibbs mixes well: ess {}", m.ess);
    assert!((m.split_rhat - 1.0).abs() < 0.1, "split-R̂ {}", m.split_rhat);
    assert_eq!(report.max_split_rhat(), Some(m.split_rhat));
    assert!(format!("{report}").contains("m[0]"));
}

/// An empty chain set is a typed error, not a panic.
#[test]
fn empty_chains_report_is_typed_error() {
    let chains = augur::chains::Chains { draws: Vec::new(), profiles: Vec::new() };
    match chains.report() {
        Err(Error::NoChains) => {}
        other => panic!("expected NoChains, got {other:?}"),
    }
    assert!(chains.profile().is_none(), "no chains ⇒ no aggregate profile");
}
