//! Sigmoid belief network — one of the model classes the paper's §2 names
//! as expressible ("deep generative models such as sigmoid belief
//! networks").
//!
//! ```text
//! h_j ~ Bernoulli(0.5)                          (binary hidden units)
//! v_i ~ Bernoulli(sigmoid(dot(W_i, h) + c_i))   (visible units)
//! ```
//!
//! The hidden units appear *whole* in every visible unit's likelihood, so
//! their conditionals cannot be aligned to the comprehension structure —
//! the compiler falls back to sequential single-site enumeration
//! (mutate-and-score finite-sum Gibbs).

use augur::{HostValue, Model, SessionConfig};
use augur_math::special::sigmoid;
use augur_math::vecops::dot;
use augur_math::FlatRagged;
use augurv2::augur_dist::Prng;

const SBN: &str = r#"(H, V, W, c) => {
    param h[j] ~ Bernoulli(0.5) for j <- 0 until H ;
    data v[i] ~ Bernoulli(sigmoid(dot(W[i], h) + c[i])) for i <- 0 until V ;
}"#;

#[test]
fn sbn_parses_plans_and_lowers() {
    let model = Model::compile(SBN).unwrap();
    assert_eq!(model.kernel(), "Gibbs Single(h)");
    let info = model.compile_info();
    // sequential single-site enumeration: the slice loop is Seq and the
    // candidate is written into the state before scoring
    assert!(info.code.contains("loop Seq (j <- 0 until H)"), "{}", info.code);
    assert!(info.code.contains("h[j] = u0_c;"), "{}", info.code);
    assert!(info.code.contains("BernoulliLogit((dot(W[i], h) + c[i]))"), "{}", info.code);
}

#[test]
fn sbn_posterior_identifies_active_units() {
    // 3 hidden units, 12 visible; W couples each visible strongly to one
    // hidden unit. Generate data with h* = [1, 0, 1] and check the
    // posterior puts the hidden units where they belong.
    let (h_dim, v_dim) = (3usize, 12usize);
    let h_true = [1.0, 0.0, 1.0];
    let mut rng = Prng::seed_from_u64(99);
    let mut w_rows = Vec::new();
    for i in 0..v_dim {
        let mut row = vec![0.0; h_dim];
        row[i % h_dim] = 6.0; // strong positive coupling
        w_rows.push(row);
    }
    let c = vec![-3.0; v_dim]; // bias: off unless the coupled unit is on
    let v: Vec<f64> = (0..v_dim)
        .map(|i| {
            let eta = dot(&w_rows[i], &h_true) + c[i];
            f64::from(rng.bernoulli(sigmoid(eta)))
        })
        .collect();

    let model = Model::compile(SBN).unwrap();
    let mut s = model
        .plan(
            vec![
                HostValue::Int(h_dim as i64),
                HostValue::Int(v_dim as i64),
                HostValue::Ragged(FlatRagged::from_rows(w_rows)),
                HostValue::VecF(c),
            ],
            vec![("v", HostValue::VecF(v))],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    // posterior frequency of each hidden unit
    let mut freq = vec![0.0; h_dim];
    let sweeps = 400;
    for _ in 0..sweeps {
        s.sweep();
        for (f, &hj) in freq.iter_mut().zip(s.param("h").unwrap()) {
            *f += hj / sweeps as f64;
        }
    }
    assert!(freq[0] > 0.8, "h0 should be on: {freq:?}");
    assert!(freq[1] < 0.2, "h1 should be off: {freq:?}");
    assert!(freq[2] > 0.8, "h2 should be on: {freq:?}");
}

/// Geweke-style sanity check on the SBN kernel: with *no* informative
/// data (all couplings zero), the hidden-unit posterior equals the prior.
#[test]
fn sbn_uninformative_data_recovers_prior() {
    let (h_dim, v_dim) = (3usize, 4usize);
    let w_rows = vec![vec![0.0; h_dim]; v_dim];
    let c = vec![0.0; v_dim];
    let v = vec![1.0, 0.0, 1.0, 0.0];

    let model = Model::compile(SBN).unwrap();
    let mut s = model
        .plan(
            vec![
                HostValue::Int(h_dim as i64),
                HostValue::Int(v_dim as i64),
                HostValue::Ragged(FlatRagged::from_rows(w_rows)),
                HostValue::VecF(c),
            ],
            vec![("v", HostValue::VecF(v))],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    let mut freq = vec![0.0; h_dim];
    let sweeps = 4000;
    for _ in 0..sweeps {
        s.sweep();
        for (f, &hj) in freq.iter_mut().zip(s.param("h").unwrap()) {
            *f += hj / sweeps as f64;
        }
    }
    for (j, &f) in freq.iter().enumerate() {
        assert!((f - 0.5).abs() < 0.05, "h{j} frequency {f} should match the 0.5 prior");
    }
}
