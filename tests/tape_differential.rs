//! Differential tests for the two execution strategies.
//!
//! The flat instruction tape (`ExecBackend::Tape`) must reproduce the
//! reference tree-walking interpreter (`ExecBackend::Tree`)
//! *bit-for-bit*: the per-thread splitmix RNG streams are execution-order
//! independent, so any divergence — a reordered draw, a different
//! rounding, a skipped work charge that shifts a reseed — shows up as a
//! trace mismatch, not just a statistical wobble. Every kernel flavor
//! (Gibbs, ESlice, HMC, NUTS, MH, MALA, Slice) is exercised over the
//! paper's three benchmark models.

use augur::prelude::*;
use augur_math::Matrix;
use augurv2::{models, workloads};

/// Runs one sampler and returns the recorded traces as raw bits:
/// `out[sweep][cell]`, concatenating the recorded parameters in order.
#[allow(clippy::too_many_arguments)]
fn bit_trace(
    model: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    record: &[&str],
    sweeps: usize,
    exec: ExecBackend,
    threads: usize,
) -> Vec<Vec<u64>> {
    let compiled = match sched {
        Some(s) => Model::with_schedule(model, s),
        None => Model::compile(model),
    }
    .expect("model parses");
    let mut s = compiled
        .plan(args, data)
        .expect("model plans")
        .session(SessionConfig {
            backend: exec,
            threads,
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..Default::default() },
            seed: 0xD1FF,
            ..Default::default()
        })
        .expect("session binds");
    s.init().unwrap();
    s.sample(sweeps, record)
        .unwrap()
        .iter()
        .map(|snap| {
            record
                .iter()
                .flat_map(|p| snap[*p].iter().map(|x| x.to_bits()))
                .collect()
        })
        .collect()
}

/// Asserts tape and tree agree exactly (localizing the first divergence),
/// then that the multi-threaded tape reproduces the single-threaded trace
/// bit-for-bit at 2 and 8 worker threads.
fn assert_tape_matches_tree(
    label: &str,
    model: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    record: &[&str],
    sweeps: usize,
) {
    let tree = bit_trace(
        model,
        sched,
        args.clone(),
        data.clone(),
        record,
        sweeps,
        ExecBackend::Tree,
        1,
    );
    let tape = bit_trace(
        model,
        sched,
        args.clone(),
        data.clone(),
        record,
        sweeps,
        ExecBackend::Tape,
        1,
    );
    for (s, (a, b)) in tree.iter().zip(&tape).enumerate() {
        assert_eq!(a, b, "{label}: tape diverged from tree at sweep {s}");
    }
    assert_eq!(tree.len(), tape.len(), "{label}: sweep counts differ");
    for threads in [2, 8] {
        let par = bit_trace(
            model,
            sched,
            args.clone(),
            data.clone(),
            record,
            sweeps,
            ExecBackend::Tape,
            threads,
        );
        for (s, (a, b)) in tape.iter().zip(&par).enumerate() {
            assert_eq!(
                a, b,
                "{label}: {threads}-thread tape diverged from sequential at sweep {s}"
            );
        }
    }
}

fn hgmm_args(k: usize, d: usize, n: usize) -> Vec<HostValue> {
    vec![
        HostValue::Int(k as i64),
        HostValue::Int(n as i64),
        HostValue::VecF(vec![1.0; k]),
        HostValue::VecF(vec![0.0; d]),
        HostValue::Mat(Matrix::identity(d).scale(50.0)),
        HostValue::Real((d + 2) as f64),
        HostValue::Mat(Matrix::identity(d)),
    ]
}

#[test]
fn hgmm_tape_matches_tree_for_every_kernel_flavor() {
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 91);
    let flavors: [(&str, Option<&str>); 7] = [
        ("gibbs", None), // heuristic: conjugate Gibbs everywhere
        ("eslice", Some("Gibbs pi (*) ESlice mu (*) Gibbs Sigma (*) Gibbs z")),
        ("hmc", Some("Gibbs pi (*) HMC mu (*) Gibbs Sigma (*) Gibbs z")),
        ("nuts", Some("Gibbs pi (*) NUTS mu (*) Gibbs Sigma (*) Gibbs z")),
        ("mh", Some("Gibbs pi (*) MH mu (*) Gibbs Sigma (*) Gibbs z")),
        ("mala", Some("Gibbs pi (*) MALA mu (*) Gibbs Sigma (*) Gibbs z")),
        ("slice", Some("Gibbs pi (*) Slice mu (*) Gibbs Sigma (*) Gibbs z")),
    ];
    for (label, sched) in flavors {
        assert_tape_matches_tree(
            &format!("hgmm/{label}"),
            models::HGMM,
            sched,
            hgmm_args(k, d, n),
            vec![("y", HostValue::Ragged(data.points.clone()))],
            &["pi", "mu", "Sigma", "z"],
            25,
        );
    }
}

#[test]
fn lda_tape_matches_tree() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    assert_tape_matches_tree(
        "lda/gibbs",
        models::LDA,
        None, // heuristic: Dirichlet–Categorical Gibbs + enumeration
        vec![
            HostValue::Int(topics as i64),
            HostValue::Int(corpus.docs.len() as i64),
            HostValue::VecF(vec![0.5; topics]),
            HostValue::VecF(vec![0.1; corpus.vocab]),
            HostValue::VecI(corpus.lens.clone()),
        ],
        vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        &["theta", "phi", "z"],
        15,
    );
}

#[test]
fn hlr_tape_matches_tree_for_gradient_kernels() {
    let d = 4;
    let data = workloads::logistic_data(60, d, 17);
    let flavors: [(&str, Option<&str>); 5] = [
        ("heuristic", None), // blocked HMC over the continuous parameters
        ("nuts", Some("NUTS sigma2 b theta")),
        ("mala", Some("MALA sigma2 b theta")),
        ("mh", Some("MH sigma2 b theta")),
        ("slice", Some("Slice sigma2 b theta")),
    ];
    for (label, sched) in flavors {
        assert_tape_matches_tree(
            &format!("hlr/{label}"),
            models::HLR,
            sched,
            vec![
                HostValue::Real(1.0),
                HostValue::Int(60),
                HostValue::Int(d as i64),
                HostValue::Ragged(data.x.clone()),
            ],
            vec![("y", HostValue::VecF(data.y.clone()))],
            &["sigma2", "b", "theta"],
            25,
        );
    }
}

/// Builds a sampler exactly like [`bit_trace`], runs it, and returns the
/// deterministic digest of its run report.
fn report_digest(
    model: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    sweeps: usize,
    exec: ExecBackend,
    threads: usize,
) -> String {
    let compiled = match sched {
        Some(s) => Model::with_schedule(model, s),
        None => Model::compile(model),
    }
    .expect("model parses");
    let mut s = compiled
        .plan(args, data)
        .expect("model plans")
        .session(SessionConfig {
            backend: exec,
            threads,
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..Default::default() },
            seed: 0xD1FF,
            ..Default::default()
        })
        .expect("session binds");
    s.init().unwrap();
    for _ in 0..sweeps {
        s.sweep();
    }
    s.report().digest()
}

/// The deterministic half of a [`RunReport`] — schedule, sweep count,
/// per-kernel counters, work — must be byte-identical across execution
/// strategies and at 1/2/8 worker threads, for all three benchmark
/// models: the same contract the traces obey, extended to observability.
#[test]
fn run_reports_are_identical_across_strategies_and_threads() {
    type Case = (
        &'static str,
        &'static str,
        Option<&'static str>,
        Vec<HostValue>,
        Vec<(&'static str, HostValue)>,
    );
    let (k, d, n) = (2, 2, 40);
    let hgmm_data = workloads::hgmm_data(k, d, n, 91);
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    let hlr_d = 4;
    let hlr_data = workloads::logistic_data(60, hlr_d, 17);
    let cases: Vec<Case> = vec![
        (
            "hgmm",
            models::HGMM,
            Some("Gibbs pi (*) HMC mu (*) Gibbs Sigma (*) Gibbs z"),
            hgmm_args(k, d, n),
            vec![("y", HostValue::Ragged(hgmm_data.points.clone()))],
        ),
        (
            "lda",
            models::LDA,
            None,
            vec![
                HostValue::Int(topics as i64),
                HostValue::Int(corpus.docs.len() as i64),
                HostValue::VecF(vec![0.5; topics]),
                HostValue::VecF(vec![0.1; corpus.vocab]),
                HostValue::VecI(corpus.lens.clone()),
            ],
            vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        ),
        (
            "hlr",
            models::HLR,
            Some("NUTS sigma2 b theta"),
            vec![
                HostValue::Real(1.0),
                HostValue::Int(60),
                HostValue::Int(hlr_d as i64),
                HostValue::Ragged(hlr_data.x.clone()),
            ],
            vec![("y", HostValue::VecF(hlr_data.y.clone()))],
        ),
    ];
    for (label, model, sched, args, data) in cases {
        let sweeps = 10;
        let reference = report_digest(
            model,
            sched,
            args.clone(),
            data.clone(),
            sweeps,
            ExecBackend::Tree,
            1,
        );
        assert!(reference.contains("sweeps=10"), "{label}: digest missing sweeps");
        for threads in [1, 2, 8] {
            let got = report_digest(
                model,
                sched,
                args.clone(),
                data.clone(),
                sweeps,
                ExecBackend::Tape,
                threads,
            );
            assert_eq!(
                reference, got,
                "{label}: report digest diverged (tape, {threads} threads)"
            );
        }
    }
}

/// Builds a sampler exactly like [`bit_trace`], runs it, and returns the
/// deterministic digest of its phase profile (schedule + sweeps + total
/// and per-step work counters; wall times and op-class counts excluded).
fn profile_digest(
    model: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data: Vec<(&str, HostValue)>,
    sweeps: usize,
    exec: ExecBackend,
    threads: usize,
) -> String {
    let compiled = match sched {
        Some(s) => Model::with_schedule(model, s),
        None => Model::compile(model),
    }
    .expect("model parses");
    let mut s = compiled
        .plan(args, data)
        .expect("model plans")
        .session(SessionConfig {
            backend: exec,
            threads,
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..Default::default() },
            seed: 0xD1FF,
            timers: true,
            ..Default::default()
        })
        .expect("session binds");
    s.init().unwrap();
    for _ in 0..sweeps {
        s.sweep();
    }
    s.profile().digest()
}

/// The work-counter portion of a phase [`augur::Profile`] — schedule,
/// sweeps, total work, per-step work — must be byte-identical across
/// execution strategies and at 1/2/8 worker threads with timers on, for
/// all three benchmark models. Wall times and tape op-class counts are
/// deliberately outside the digest (the tree interpreter retires no tape
/// instructions), so this pins exactly the deterministic half.
#[test]
fn profile_digests_are_identical_across_strategies_and_threads() {
    type Case = (
        &'static str,
        &'static str,
        Option<&'static str>,
        Vec<HostValue>,
        Vec<(&'static str, HostValue)>,
    );
    let (k, d, n) = (2, 2, 40);
    let hgmm_data = workloads::hgmm_data(k, d, n, 91);
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    let hlr_d = 4;
    let hlr_data = workloads::logistic_data(60, hlr_d, 17);
    let cases: Vec<Case> = vec![
        (
            "hgmm",
            models::HGMM,
            Some("Gibbs pi (*) HMC mu (*) Gibbs Sigma (*) Gibbs z"),
            hgmm_args(k, d, n),
            vec![("y", HostValue::Ragged(hgmm_data.points.clone()))],
        ),
        (
            "lda",
            models::LDA,
            None,
            vec![
                HostValue::Int(topics as i64),
                HostValue::Int(corpus.docs.len() as i64),
                HostValue::VecF(vec![0.5; topics]),
                HostValue::VecF(vec![0.1; corpus.vocab]),
                HostValue::VecI(corpus.lens.clone()),
            ],
            vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        ),
        (
            "hlr",
            models::HLR,
            Some("NUTS sigma2 b theta"),
            vec![
                HostValue::Real(1.0),
                HostValue::Int(60),
                HostValue::Int(hlr_d as i64),
                HostValue::Ragged(hlr_data.x.clone()),
            ],
            vec![("y", HostValue::VecF(hlr_data.y.clone()))],
        ),
    ];
    for (label, model, sched, args, data) in cases {
        let sweeps = 10;
        let reference = profile_digest(
            model,
            sched,
            args.clone(),
            data.clone(),
            sweeps,
            ExecBackend::Tree,
            1,
        );
        assert!(reference.contains("sweeps=10"), "{label}: digest missing sweeps");
        assert!(reference.contains(":work="), "{label}: digest missing per-step work");
        for threads in [1, 2, 8] {
            let got = profile_digest(
                model,
                sched,
                args.clone(),
                data.clone(),
                sweeps,
                ExecBackend::Tape,
                threads,
            );
            assert_eq!(
                reference, got,
                "{label}: profile digest diverged (tape, {threads} threads)"
            );
        }
    }
}

/// Every kernel unit of the three benchmark models must name the
/// conditional rewrite (or the fallback reason) that produced it — the
/// explain plan may never show a unit without a per-factor rewrite line.
#[test]
fn explain_names_a_rewrite_for_every_kernel_unit() {
    let (k, d, n) = (2, 2, 40);
    let hgmm_data = workloads::hgmm_data(k, d, n, 91);
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    let hlr_d = 4;
    let hlr_data = workloads::logistic_data(60, hlr_d, 17);
    type Case<'a> = (&'a str, &'a str, Vec<HostValue>, Vec<(&'a str, HostValue)>);
    let cases: Vec<Case> = vec![
        (
            "hgmm",
            models::HGMM,
            hgmm_args(k, d, n),
            vec![("y", HostValue::Ragged(hgmm_data.points.clone()))],
        ),
        (
            "lda",
            models::LDA,
            vec![
                HostValue::Int(topics as i64),
                HostValue::Int(corpus.docs.len() as i64),
                HostValue::VecF(vec![0.5; topics]),
                HostValue::VecF(vec![0.1; corpus.vocab]),
                HostValue::VecI(corpus.lens.clone()),
            ],
            vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        ),
        (
            "hlr",
            models::HLR,
            vec![
                HostValue::Real(1.0),
                HostValue::Int(60),
                HostValue::Int(hlr_d as i64),
                HostValue::Ragged(hlr_data.x.clone()),
            ],
            vec![("y", HostValue::VecF(hlr_data.y.clone()))],
        ),
    ];
    for (label, model, args, data) in cases {
        let compiled = Model::compile(model).expect("model parses");
        let s = compiled
            .plan(args, data)
            .expect("model plans")
            .session(SessionConfig::default())
            .expect("session binds");
        let plan = s.explain();
        let density = plan
            .root
            .children
            .iter()
            .find(|c| c.name == "density")
            .unwrap_or_else(|| panic!("{label}: explain plan has no density span"));
        assert!(!density.children.is_empty(), "{label}: density span has no units");
        for unit in &density.children {
            assert!(
                !unit.attrs.is_empty(),
                "{label}: {} has no factor rewrite attributes",
                unit.name
            );
            for (factor, rewrite) in &unit.attrs {
                assert!(
                    !rewrite.is_empty(),
                    "{label}: {} {factor} has an empty rewrite description",
                    unit.name
                );
            }
        }
    }
}

/// The untimed explain-plan render for LDA is part of the crate's
/// observable behavior: it pins which §3.3 rewrite fired for every
/// factor, the planned schedule and per-unit strategies, the
/// size-inference allocation table, and the Blk decisions.
#[test]
fn golden_explain_plan_for_lda() {
    let topics = 3;
    let corpus = workloads::lda_corpus(topics, 10, 60, 20, 5);
    let model = Model::compile(models::LDA).unwrap();
    let s = model
        .plan(
            vec![
                HostValue::Int(topics as i64),
                HostValue::Int(corpus.docs.len() as i64),
                HostValue::VecF(vec![0.5; topics]),
                HostValue::VecF(vec![0.1; corpus.vocab]),
                HostValue::VecI(corpus.lens.clone()),
            ],
            vec![("w", HostValue::RaggedI(corpus.docs.clone()))],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    let got = s.explain().render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lda_explain.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &got).expect("write golden file");
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file exists; run with UPDATE_GOLDEN=1 to regenerate");
    assert_eq!(
        got.trim(),
        expected.trim(),
        "explain plan changed; if intentional, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The tape compiler's output for a fixed small model is part of the
/// crate's observable behavior (it is what `Session::disasm` shows users
/// and what the fusion rules produce); pin it.
#[test]
fn golden_disassembly_of_normal_normal_gibbs() {
    let model = Model::compile(
        "(N, tau2, s2) => {
            param m ~ Normal(0.0, tau2) ;
            data y[n] ~ Normal(m, s2) for n <- 0 until N ;
        }",
    )
    .unwrap();
    let s = model
        .plan(
            vec![HostValue::Int(4), HostValue::Real(4.0), HostValue::Real(1.0)],
            vec![("y", HostValue::VecF(vec![1.2, 0.8, 1.0, 1.4]))],
        )
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    let names = s.proc_names();
    let disasm: Vec<String> = names.iter().map(|n| s.disasm(n)).collect();
    let got = names
        .iter()
        .zip(&disasm)
        .map(|(n, d)| format!("== {n} ==\n{d}"))
        .collect::<Vec<_>>()
        .join("\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/normal_normal_tape.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &got).expect("write golden file");
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file exists; run with UPDATE_GOLDEN=1 to regenerate");
    assert_eq!(
        got.trim(),
        expected.trim(),
        "tape disassembly changed; if intentional, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}
