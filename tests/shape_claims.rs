//! The paper's headline evaluation claims, asserted at test scale. These
//! are the regression guards for the §7 shapes: if a compiler or
//! cost-model change flips who wins, these fail before the benches run.

use augur::{DeviceConfig, McmcConfig, OptFlags, SessionConfig, Target};
use augurv2::workloads;

fn lda_virtual(topics: usize, docs: usize, target: Target) -> f64 {
    let corpus = workloads::lda_corpus(5, docs, 2000, 120, 4001);
    let model = augur::Model::compile(augurv2::models::LDA).unwrap();
    let mut s = model
        .plan(
            vec![
                augur::HostValue::Int(topics as i64),
                augur::HostValue::Int(corpus.docs.len() as i64),
                augur::HostValue::VecF(vec![0.5; topics]),
                augur::HostValue::VecF(vec![0.1; corpus.vocab]),
                augur::HostValue::VecI(corpus.lens.clone()),
            ],
            vec![("w", augur::HostValue::RaggedI(corpus.docs.clone()))],
        )
        .unwrap()
        .session(SessionConfig { target, ..Default::default() })
        .unwrap();
    s.init().unwrap();
    for _ in 0..3 {
        s.sweep();
    }
    s.virtual_secs()
}

/// Fig. 12's first-order claim: the GPU wins on LDA.
#[test]
fn lda_gpu_beats_cpu() {
    let cpu = lda_virtual(30, 120, Target::Cpu);
    let gpu = lda_virtual(30, 120, Target::Gpu(DeviceConfig::titan_black_like()));
    assert!(
        gpu < cpu / 2.0,
        "LDA GPU ({gpu:.4}s) should beat CPU ({cpu:.4}s) clearly"
    );
}

/// Fig. 12's second-order claim: more topics ⇒ larger GPU advantage.
#[test]
fn lda_gpu_advantage_grows_with_topics() {
    let ratio = |t: usize| {
        lda_virtual(t, 60, Target::Cpu)
            / lda_virtual(t, 60, Target::Gpu(DeviceConfig::titan_black_like()))
    };
    let (small, large) = (ratio(5), ratio(30));
    assert!(
        large > small,
        "speedup should grow with topics: {small:.2} (5) vs {large:.2} (25)"
    );
}

fn hlr_virtual(n: usize, target: Target, flags: OptFlags) -> f64 {
    let data = workloads::logistic_data(n, 10, 4002);
    let model = augur::Model::compile(augurv2::models::HLR).unwrap();
    // the optimization flags participate in the plan-cache key, so they
    // are a planning argument, not a session option
    let mut s = model
        .plan_opt(
            vec![
                augur::HostValue::Real(1.0),
                augur::HostValue::Int(n as i64),
                augur::HostValue::Int(10),
                augur::HostValue::Ragged(data.x.clone()),
            ],
            vec![("y", augur::HostValue::VecF(data.y.clone()))],
            flags,
        )
        .unwrap()
        .session(SessionConfig {
            target,
            mcmc: McmcConfig { step_size: 0.02, leapfrog_steps: 4, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
    s.init().unwrap();
    for _ in 0..3 {
        s.sweep();
    }
    s.virtual_secs()
}

/// §7.2's claim: the GPU loses on the small HLR model…
#[test]
fn small_hlr_gpu_loses_to_cpu() {
    let cpu = hlr_virtual(1000, Target::Cpu, OptFlags::default());
    let gpu = hlr_virtual(
        1000,
        Target::Gpu(DeviceConfig::titan_black_like()),
        OptFlags::default(),
    );
    assert!(
        gpu > 3.0 * cpu,
        "small-model GPU ({gpu:.4}s) should lose clearly to CPU ({cpu:.4}s)"
    );
}

/// …and wins by Adult scale.
#[test]
fn large_hlr_gpu_beats_cpu() {
    let cpu = hlr_virtual(60_000, Target::Cpu, OptFlags::default());
    let gpu = hlr_virtual(
        60_000,
        Target::Gpu(DeviceConfig::titan_black_like()),
        OptFlags::default(),
    );
    assert!(
        gpu < cpu,
        "Adult-scale GPU ({gpu:.4}s) should beat CPU ({cpu:.4}s)"
    );
}

/// §5.4's claim: summation-block conversion pays on the GPU.
#[test]
fn sumblk_conversion_pays() {
    let on = hlr_virtual(
        20_000,
        Target::Gpu(DeviceConfig::titan_black_like()),
        OptFlags::default(),
    );
    let off = hlr_virtual(
        20_000,
        Target::Gpu(DeviceConfig::titan_black_like()),
        OptFlags { sum_blk: false, ..Default::default() },
    );
    assert!(
        on < off / 1.5,
        "sumBlk on ({on:.4}s) should clearly beat off ({off:.4}s)"
    );
}

/// Fig. 11's claim: the compiled Gibbs sampler beats the graph baseline
/// in wall-clock on the same algorithm.
#[test]
fn compiled_gibbs_beats_graph_gibbs_wall_clock() {
    let (k, d, n) = (3, 2, 400);
    let data = workloads::hgmm_data(k, d, n, 4003);
    let args = || {
        vec![
            augur::HostValue::Int(k as i64),
            augur::HostValue::Int(n as i64),
            augur::HostValue::VecF(vec![1.0; k]),
            augur::HostValue::VecF(vec![0.0; d]),
            augur::HostValue::Mat(augur_math::Matrix::identity(d).scale(50.0)),
            augur::HostValue::Real((d + 2) as f64),
            augur::HostValue::Mat(augur_math::Matrix::identity(d)),
        ]
    };
    let model = augur::Model::compile(augurv2::models::HGMM).unwrap();
    let mut s = model
        .plan(args(), vec![("y", augur::HostValue::Ragged(data.points.clone()))])
        .unwrap()
        .session(SessionConfig::default())
        .unwrap();
    s.init().unwrap();
    let t0 = std::time::Instant::now();
    for _ in 0..40 {
        s.sweep();
    }
    let t_compiled = t0.elapsed();

    let mut j = augur_jags::JagsModel::build(
        augurv2::models::HGMM,
        args(),
        vec![("y", augur::HostValue::Ragged(data.points.clone()))],
        4004,
    )
    .unwrap();
    j.init();
    let t0 = std::time::Instant::now();
    for _ in 0..40 {
        j.sweep();
    }
    let t_graph = t0.elapsed();
    assert!(
        t_compiled < t_graph,
        "compiled {t_compiled:?} should beat graph {t_graph:?}"
    );
}
