//! The telemetry plane, end to end: streaming convergence estimates
//! against batch `augur::diag`, the HTTP exporter's exposition format,
//! the determinism contract with telemetry on, and v4 trace
//! reconstruction of a faulted request.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use augur::diag::{ess, split_rhat};
use augur::{FaultPlan, HostValue, McmcConfig, SessionConfig};
use augur_math::Matrix;
use augur_serve::{
    hermetic_config, ModelRegistry, ModelSpec, Response, SampleOutput, SampleRequest, ServeError,
    Service, ServiceConfig, Ticket,
};
use augurv2::{models, workloads};

/// One benchmark workload (mirrors `tests/serve.rs`).
struct Workload {
    name: &'static str,
    source: &'static str,
    args: Vec<HostValue>,
    data: Vec<(String, HostValue)>,
    record: Vec<String>,
    base: SessionConfig,
}

fn hgmm_workload() -> Workload {
    let (k, d, n) = (2, 2, 40);
    let data = workloads::hgmm_data(k, d, n, 7);
    Workload {
        name: "hgmm",
        source: models::HGMM,
        args: vec![
            HostValue::Int(k as i64),
            HostValue::Int(n as i64),
            HostValue::VecF(vec![1.0; k]),
            HostValue::VecF(vec![0.0; d]),
            HostValue::Mat(Matrix::identity(d).scale(50.0)),
            HostValue::Real((d + 2) as f64),
            HostValue::Mat(Matrix::identity(d)),
        ],
        data: vec![("y".into(), HostValue::Ragged(data.points))],
        record: vec!["mu".into(), "pi".into()],
        base: hermetic_config(0xBEEF),
    }
}

fn lda_workload() -> Workload {
    let topics = 2;
    let corpus = workloads::lda_corpus(topics, 8, 12, 8, 11);
    Workload {
        name: "lda",
        source: models::LDA,
        args: vec![
            HostValue::Int(topics as i64),
            HostValue::Int(corpus.docs.len() as i64),
            HostValue::VecF(vec![0.5; topics]),
            HostValue::VecF(vec![0.1; corpus.vocab]),
            HostValue::VecI(corpus.lens),
        ],
        data: vec![("w".into(), HostValue::RaggedI(corpus.docs))],
        record: vec!["theta".into()],
        base: hermetic_config(0xBEEF),
    }
}

fn hlr_workload() -> Workload {
    let (n, d) = (30, 3);
    let data = workloads::logistic_data(n, d, 13);
    Workload {
        name: "hlr",
        source: models::HLR,
        args: vec![
            HostValue::Real(1.0),
            HostValue::Int(n as i64),
            HostValue::Int(d as i64),
            HostValue::Ragged(data.x),
        ],
        data: vec![("y".into(), HostValue::VecF(data.y))],
        record: vec!["theta".into(), "b".into()],
        base: SessionConfig {
            mcmc: McmcConfig { step_size: 0.05, leapfrog_steps: 8, ..McmcConfig::default() },
            ..hermetic_config(0xBEEF)
        },
    }
}

fn wait_bounded(t: Ticket, what: &str) -> Result<Response, ServeError> {
    let t0 = Instant::now();
    loop {
        if let Some(r) = t.try_wait() {
            return r;
        }
        assert!(t0.elapsed() < Duration::from_secs(120), "{what}: ticket hung");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

fn body(resp: &str) -> &str {
    resp.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// Per-parameter batch diagnostics computed from a finished request's
/// draws: (min over components of cross-chain summed ESS, max over
/// components of split-R̂) — the aggregation the streaming tracker
/// exports.
fn batch_diag(out: &SampleOutput, param: &str) -> (f64, f64) {
    let components = out.draws[0][0][param].len();
    let mut ess_min = f64::INFINITY;
    let mut rhat_max = f64::NAN;
    for c in 0..components {
        let chains: Vec<Vec<f64>> = out
            .draws
            .iter()
            .map(|chain| chain.iter().map(|sweep| sweep[param][c]).collect())
            .collect();
        let ess_sum: f64 = chains.iter().map(|xs| ess(xs)).sum();
        ess_min = ess_min.min(ess_sum);
        let r = split_rhat(&chains).unwrap();
        rhat_max = if rhat_max.is_nan() { r } else { rhat_max.max(r) };
    }
    (ess_min, rhat_max)
}

/// Satellite (d): the streaming per-(model, param) estimators — fed one
/// migration slice at a time — agree with batch `augur::diag` over the
/// complete returned draws to 1e-9, on all three paper workloads.
#[test]
fn streaming_convergence_matches_batch_diag_on_paper_workloads() {
    for w in [hgmm_workload(), lda_workload(), hlr_workload()] {
        let registry = ModelRegistry::new();
        registry.register(w.name, ModelSpec::new(w.source)).unwrap();
        let service = Service::start(
            registry,
            ServiceConfig { workers: 2, migrate_every: 5, ..ServiceConfig::default() },
        );
        let out = wait_bounded(
            service.sample(SampleRequest {
                model: w.name.into(),
                version: None,
                args: w.args.clone(),
                data: w.data.clone(),
                chains: 3,
                sweeps: 12,
                record: w.record.clone(),
                config: Some(w.base.clone()),
                migrate_every: None,
                deadline: None,
            }),
            w.name,
        )
        .unwrap()
        .into_sample()
        .unwrap();
        let conv = service.metrics().convergence;
        for param in &w.record {
            let stat = conv
                .iter()
                .find(|c| c.model == w.name && &c.param == param)
                .unwrap_or_else(|| panic!("{}: no streaming stat for `{param}`", w.name));
            let (ess_want, rhat_want) = batch_diag(&out, param);
            assert!(
                (stat.ess - ess_want).abs() <= 1e-9,
                "{}/{param}: streaming ess {} vs batch {ess_want}",
                w.name,
                stat.ess
            );
            assert!(
                (stat.split_rhat - rhat_want).abs() <= 1e-9,
                "{}/{param}: streaming split_rhat {} vs batch {rhat_want}",
                w.name,
                stat.split_rhat
            );
        }
        service.shutdown();
    }
}

/// The short-chain guard, through the service path: with fewer than 4
/// draws per chain, split-R̂ is NaN (and its gauge is withheld from the
/// exposition) while ESS is already defined — exactly the batch guards.
#[test]
fn short_chains_report_nan_rhat_and_defined_ess() {
    let registry = ModelRegistry::new();
    registry.register("coin", ModelSpec::new(models::HLR)).unwrap();
    let w = hlr_workload();
    let service = Service::start(
        registry,
        ServiceConfig { telemetry_addr: Some("127.0.0.1:0".into()), ..ServiceConfig::default() },
    );
    wait_bounded(
        service.sample(SampleRequest {
            model: "coin".into(),
            args: w.args.clone(),
            data: w.data.clone(),
            chains: 2,
            sweeps: 2,
            record: vec!["b".into()],
            config: Some(w.base.clone()),
            ..SampleRequest::new("coin")
        }),
        "short sample",
    )
    .unwrap();
    let conv = service.metrics().convergence;
    let stat = conv.iter().find(|c| c.param == "b").expect("streaming stat for `b`");
    assert!(stat.ess > 0.0, "ESS is defined from the first draw: {}", stat.ess);
    assert!(stat.split_rhat.is_nan(), "split-R̂ needs 4 draws: {}", stat.split_rhat);
    let expo = http_get(service.telemetry_addr().unwrap(), "/metrics");
    let expo = body(&expo);
    assert!(
        expo.lines().any(|l| l.starts_with("augur_ess{")),
        "ess gauge exported:\n{expo}"
    );
    assert!(
        !expo.lines().any(|l| l.starts_with("augur_split_rhat{")),
        "NaN split-R̂ gauge withheld:\n{expo}"
    );
    service.shutdown();
}

/// Checks one rendered sample line against the text-exposition grammar:
/// `name{label="value",...} float`.
fn assert_sample_line(line: &str) {
    let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
    assert!(
        value.parse::<f64>().is_ok() || value == "NaN" || value == "+Inf" || value == "-Inf",
        "unparseable value in: {line}"
    );
    let name = series.split('{').next().unwrap();
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "bad metric name in: {line}"
    );
    if let Some(rest) = series.strip_prefix(name) {
        if !rest.is_empty() {
            assert!(rest.starts_with('{') && rest.ends_with('}'), "bad label block: {line}");
        }
    }
}

/// The exporter's surfaces: a well-formed `/metrics` exposition carrying
/// every family the issue names, a healthy `/healthz`, a human-readable
/// `/statusz`, 404 for unknown paths — and the windowed high-water gauge
/// resetting between scrapes.
#[test]
fn exporter_serves_well_formed_exposition_and_status_pages() {
    let w = hlr_workload();
    let registry = ModelRegistry::new();
    registry.register("hlr", ModelSpec::new(w.source)).unwrap();
    let service = Service::start(
        registry,
        ServiceConfig {
            workers: 2,
            telemetry_addr: Some("127.0.0.1:0".into()),
            ..ServiceConfig::default()
        },
    );
    let addr = service.telemetry_addr().unwrap();
    wait_bounded(
        service.sample(SampleRequest {
            model: "hlr".into(),
            args: w.args.clone(),
            data: w.data.clone(),
            chains: 2,
            sweeps: 8,
            record: w.record.clone(),
            config: Some(w.base.clone()),
            migrate_every: Some(3),
            ..SampleRequest::new("hlr")
        }),
        "hlr sample",
    )
    .unwrap();

    let resp = http_get(addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("text/plain"), "exposition content type: {resp}");
    let expo = body(&resp).to_owned();

    // Grammar: every line is a comment or a valid sample; every family
    // has exactly one HELP and one TYPE line.
    let mut families: Vec<&str> = Vec::new();
    for line in expo.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            families.push(rest.split(' ').next().unwrap());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap();
            let kind = it.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            assert_eq!(families.last(), Some(&name), "TYPE without preceding HELP: {line}");
        } else if !line.is_empty() {
            assert_sample_line(line);
        }
    }
    let unique: std::collections::HashSet<&str> = families.iter().copied().collect();
    assert_eq!(unique.len(), families.len(), "duplicate family header");

    // Every family the issue names is present.
    for name in [
        "augur_queue_depth",
        "augur_shard_queue_depth",
        "augur_queue_high_water",
        "augur_workers_alive",
        "augur_requests_submitted_total",
        "augur_requests_completed_total",
        "augur_requests_failed_total",
        "augur_requests_shed_total",
        "augur_request_timeouts_total",
        "augur_retries_total",
        "augur_respawns_total",
        "augur_migrations_total",
        "augur_demotions_total",
        "augur_plan_cache_hits_total",
        "augur_plan_cache_misses_total",
        "augur_plan_cache_entries",
        "augur_native_breaker_open",
        "augur_request_latency_seconds",
        "augur_ess",
        "augur_split_rhat",
        "augur_telemetry_scrapes_total",
    ] {
        assert!(families.contains(&name), "`{name}` missing from exposition:\n{expo}");
    }
    // The histogram renders the full bucket/sum/count triple with a
    // closing +Inf bucket.
    assert!(expo.contains("augur_request_latency_seconds_bucket{le=\""));
    assert!(expo.contains("augur_request_latency_seconds_bucket{le=\"+Inf\"}"));
    assert!(expo.contains("augur_request_latency_seconds_sum"));
    assert!(expo.contains("augur_request_latency_seconds_count"));
    // The convergence gauges carry (model, param) labels.
    assert!(
        expo.contains("augur_ess{model=\"hlr\",param=\"b\"}"),
        "labeled ess gauge:\n{expo}"
    );
    assert!(
        expo.contains("augur_split_rhat{model=\"hlr\",param=\"b\"}"),
        "labeled split_rhat gauge:\n{expo}"
    );

    // Window semantics: the first scrape consumed the high-water mark
    // set while the request was queued; with the service now idle, the
    // next scrape's window is empty.
    let line = |e: &str| {
        e.lines()
            .find(|l| l.starts_with("augur_queue_high_water "))
            .map(|l| l.to_owned())
            .unwrap()
    };
    assert_ne!(line(&expo), "augur_queue_high_water 0", "first scrape saw the queued burst");
    let again = http_get(addr, "/metrics");
    assert_eq!(line(body(&again)), "augur_queue_high_water 0", "window resets per scrape");

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(body(&health).contains("\"status\":\"ok\""), "{health}");

    let status = http_get(addr, "/statusz");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(body(&status).contains("augur-serve status"), "{status}");
    assert!(body(&status).contains("hlr"), "statusz lists the model: {status}");
    assert!(body(&status).contains("convergence"), "statusz lists convergence: {status}");

    assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"), "unknown path is 404");

    service.shutdown();
}

/// The determinism contract survives the telemetry plane: the same
/// request served with the exporter on (and being scraped mid-run) and
/// with telemetry fully off produces byte-identical draws and digests.
#[test]
fn draws_are_identical_with_telemetry_on_and_off() {
    let run = |telemetry: bool| -> SampleOutput {
        let w = hlr_workload();
        let registry = ModelRegistry::new();
        registry.register("hlr", ModelSpec::new(w.source)).unwrap();
        let service = Service::start(
            registry,
            ServiceConfig {
                workers: 2,
                telemetry_addr: telemetry.then(|| "127.0.0.1:0".into()),
                ..ServiceConfig::default()
            },
        );
        let ticket = service.sample(SampleRequest {
            model: "hlr".into(),
            args: w.args.clone(),
            data: w.data.clone(),
            chains: 2,
            sweeps: 10,
            record: w.record.clone(),
            config: Some(w.base.clone()),
            migrate_every: Some(3),
            ..SampleRequest::new("hlr")
        });
        // Scrape while the request runs: collection must not perturb it.
        if let Some(addr) = service.telemetry_addr() {
            for _ in 0..5 {
                let _ = http_get(addr, "/metrics");
            }
        }
        let out = wait_bounded(ticket, "hlr sample").unwrap().into_sample().unwrap();
        service.shutdown();
        out
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.draws, off.draws, "draws diverged with telemetry on");
    assert_eq!(on.report_digests, off.report_digests, "digests diverged with telemetry on");
}

/// Pulls one `"key":"value"` string field out of a JSONL record.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// The acceptance criterion for v4 tracing: one grep for the trace id
/// reconstructs a migrated **and** respawned request end-to-end, and
/// every record's parent link resolves within the trace, chaining back
/// to the root `submit` span.
#[test]
fn v4_trace_reconstructs_a_migrated_and_respawned_request() {
    let path = std::env::temp_dir().join(format!(
        "augur_telemetry_trace_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let w = hlr_workload();
    let registry = ModelRegistry::new();
    registry.register("hlr", ModelSpec::new(w.source)).unwrap();
    let service = Service::start(
        registry,
        ServiceConfig {
            workers: 2,
            trace_path: Some(path.clone()),
            fault: Some(FaultPlan::parse("panic@shard:0").unwrap()),
            ..ServiceConfig::default()
        },
    );
    wait_bounded(
        service.sample(SampleRequest {
            model: "hlr".into(),
            args: w.args.clone(),
            data: w.data.clone(),
            chains: 2,
            sweeps: 8,
            record: w.record.clone(),
            config: Some(w.base.clone()),
            migrate_every: Some(3),
            ..SampleRequest::new("hlr")
        }),
        "faulted sample",
    )
    .unwrap();
    service.shutdown();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // "One grep": everything about request 1 shares its trace id.
    let submitted = text
        .lines()
        .find(|l| l.contains("\"event\":\"submitted\""))
        .expect("submitted record");
    let trace = field(submitted, "trace").expect("trace id").to_owned();
    assert_eq!(trace.len(), 16, "trace ids are 16 hex chars: {trace}");
    let records: Vec<&str> =
        text.lines().filter(|l| field(l, "trace") == Some(trace.as_str())).collect();
    for event in ["submitted", "planned", "slice", "migrated", "retried", "respawned", "completed"]
    {
        assert!(
            records.iter().any(|l| l.contains(&format!("\"event\":\"{event}\""))),
            "no `{event}` record under trace {trace}:\n{text}"
        );
    }

    // Span graph: the root is the parentless submitted span; every
    // other record's parent resolves to a span in the same trace, and
    // walking parents terminates at the root.
    let root = field(submitted, "span").unwrap();
    let spans: HashMap<&str, Option<&str>> =
        records.iter().map(|l| (field(l, "span").unwrap(), field(l, "parent"))).collect();
    for (span, parent) in &spans {
        let mut cur = *parent;
        let mut hops = 0;
        while let Some(p) = cur {
            assert!(
                spans.contains_key(p),
                "span {span}: parent {p} not in trace {trace}:\n{text}"
            );
            cur = spans[p];
            hops += 1;
            assert!(hops <= spans.len(), "parent cycle at span {span}");
        }
        if *span != root {
            assert!(parent.is_some(), "span {span} floats free of the trace tree");
        }
    }
}
