//! Regression-family models beyond the paper's three benchmarks: the
//! modeling language and AD fragment cover GLMs generally. These tests
//! exercise `exp ∘ dot` chains through the source-to-source AD and the
//! Poisson/Normal likelihood gradients.

use augur::{HostValue, McmcConfig, Model, SessionConfig};
use augur_math::vecops::dot;
use augur_math::FlatRagged;
use augurv2::augur_dist::Prng;

#[test]
fn poisson_regression_recovers_rate_structure() {
    // y_n ~ Poisson(exp(x_n · θ)), a log-linear model.
    let src = r#"(N, D, x) => {
        param theta[j] ~ Normal(0.0, 1.0) for j <- 0 until D ;
        data y[n] ~ Poisson(exp(dot(x[n], theta))) for n <- 0 until N ;
    }"#;
    let (n, d) = (300, 3);
    let true_theta = [0.8, -0.5, 0.3];
    let mut rng = Prng::seed_from_u64(7);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        let rate = dot(&row, &true_theta).exp();
        y.push(rng.poisson(rate) as f64);
        rows.push(row);
    }

    let model = Model::compile(src).unwrap();
    assert_eq!(model.kernel(), "HMC Single(theta)");
    let mut s = model
        .plan(
            vec![
                HostValue::Int(n as i64),
                HostValue::Int(d as i64),
                HostValue::Ragged(FlatRagged::from_rows(rows)),
            ],
            vec![("y", HostValue::VecF(y))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 0.02, leapfrog_steps: 20, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
    s.init().unwrap();
    for _ in 0..400 {
        s.sweep();
    }
    let mut post = vec![0.0; d];
    let draws = 400;
    for _ in 0..draws {
        s.sweep();
        for (p, &t) in post.iter_mut().zip(s.param("theta").unwrap()) {
            *p += t / draws as f64;
        }
    }
    assert!(s.acceptance_rate(0) > 0.5, "acceptance {}", s.acceptance_rate(0));
    for j in 0..d {
        assert!(
            (post[j] - true_theta[j]).abs() < 0.25,
            "theta[{j}]: {} vs true {}",
            post[j],
            true_theta[j]
        );
    }
}

#[test]
fn bayesian_linear_regression_with_unknown_noise() {
    // y_n ~ Normal(x_n · θ + b, σ²), σ² ~ InvGamma — the variance is
    // conjugate given the mean structure, so the heuristic mixes a Gibbs
    // update for σ² with an HMC block for (b, θ).
    let src = r#"(N, D, x, a0, b0) => {
        param sigma2 ~ InvGamma(a0, b0) ;
        param b ~ Normal(0.0, 10.0) ;
        param theta[j] ~ Normal(0.0, 10.0) for j <- 0 until D ;
        data y[n] ~ Normal(dot(x[n], theta) + b, sigma2) for n <- 0 until N ;
    }"#;
    let (n, d) = (250, 2);
    let true_theta = [1.5, -2.0];
    let (true_b, true_s2) = (0.7, 0.25);
    let mut rng = Prng::seed_from_u64(8);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        y.push(dot(&row, &true_theta) + true_b + rng.normal(0.0, true_s2));
        rows.push(row);
    }

    let model = Model::compile(src).unwrap();
    // σ² is InvGamma–Normal conjugate: detected despite the structured mean
    // (the mean expression is the likelihood's *other* argument).
    let kernel = model.kernel();
    assert_eq!(kernel, "Gibbs Single(sigma2) (*) HMC Block(b, theta)", "{kernel}");
    let mut s = model
        .plan(
            vec![
                HostValue::Int(n as i64),
                HostValue::Int(d as i64),
                HostValue::Ragged(FlatRagged::from_rows(rows)),
                HostValue::Real(2.0),
                HostValue::Real(0.5),
            ],
            vec![("y", HostValue::VecF(y))],
        )
        .unwrap()
        .session(SessionConfig {
            mcmc: McmcConfig { step_size: 0.02, leapfrog_steps: 20, ..Default::default() },
            ..Default::default()
        })
        .unwrap();
    s.init().unwrap();
    for _ in 0..600 {
        s.sweep();
    }
    let mut post_theta = vec![0.0; d];
    let mut post_b = 0.0;
    let mut post_s2 = 0.0;
    let draws = 400;
    for _ in 0..draws {
        s.sweep();
        for (p, &t) in post_theta.iter_mut().zip(s.param("theta").unwrap()) {
            *p += t / draws as f64;
        }
        post_b += s.param("b").unwrap()[0] / draws as f64;
        post_s2 += s.param("sigma2").unwrap()[0] / draws as f64;
    }
    for j in 0..d {
        assert!(
            (post_theta[j] - true_theta[j]).abs() < 0.15,
            "theta[{j}]: {} vs {}",
            post_theta[j],
            true_theta[j]
        );
    }
    assert!((post_b - true_b).abs() < 0.15, "b: {post_b} vs {true_b}");
    assert!(
        (post_s2 - true_s2).abs() < 0.12,
        "sigma2: {post_s2} vs {true_s2}"
    );
}
