//! Geweke (2004) joint-distribution tests for the compiled samplers.
//!
//! Two simulators for the joint `p(θ, y)`:
//!
//! * **marginal-conditional** — θ ~ p(θ), y ~ p(y | θ): exact i.i.d.
//!   draws from the joint;
//! * **successive-conditional** — alternate the *compiled* transition
//!   θ ← K(θ | y) with fresh data y ~ p(y | θ).
//!
//! If the compiled kernel leaves the posterior invariant, both streams
//! have the same distribution; any bug in the conditional analysis, the
//! Gibbs codegen, or the acceptance logic shows up as a moment mismatch.

use augur::{HostValue, Session, SessionConfig};
use augur_dist::Prng;
use augur_math::vecops::{mean, variance};

/// Builds the sampler and runs the successive-conditional simulator,
/// returning the θ-statistic stream. `regen` draws fresh data given the
/// current parameters, writing into the data buffer.
#[allow(clippy::too_many_arguments)]
fn successive_conditional(
    src: &str,
    sched: Option<&str>,
    args: Vec<HostValue>,
    data_var: &str,
    initial_data: HostValue,
    iters: usize,
    stat: impl Fn(&Session) -> f64,
    regen: impl Fn(&mut Session, &mut Prng),
) -> Vec<f64> {
    let mut s = Session::build(
        src,
        sched,
        args,
        vec![(data_var, initial_data)],
        SessionConfig { seed: 42, ..Default::default() },
    )
    .unwrap();
    let mut rng = Prng::seed_from_u64(43);
    s.init().unwrap();
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        s.sweep(); // θ ← K(θ | y)
        regen(&mut s, &mut rng); // y ~ p(y | θ)
        out.push(stat(&s));
    }
    out
}

/// Two-sample z-test on means; fails loudly when the streams disagree.
fn assert_same_mean(a: &[f64], b: &[f64], label: &str) {
    let (ma, mb) = (mean(a), mean(b));
    // crude ESS discount for autocorrelation of the chain stream
    let ess_a = a.len() as f64 / 10.0;
    let se = (variance(a) / ess_a + variance(b) / b.len() as f64).sqrt();
    let z = (ma - mb) / se;
    assert!(
        z.abs() < 4.0,
        "{label}: marginal-conditional mean {mb:.4} vs successive-conditional {ma:.4} (z = {z:.2})"
    );
}

#[test]
fn geweke_beta_bernoulli_gibbs() {
    let n = 6;
    let src = "(N) => {
        param p ~ Beta(2.0, 3.0) ;
        data y[n] ~ Bernoulli(p) for n <- 0 until N ;
    }";

    // marginal-conditional: p ~ Beta(2,3) directly
    let mut rng = Prng::seed_from_u64(1);
    let mc: Vec<f64> = (0..20_000).map(|_| rng.beta(2.0, 3.0)).collect();

    let sc = successive_conditional(
        src,
        None,
        vec![HostValue::Int(n as i64)],
        "y",
        HostValue::VecF(vec![0.0; n]),
        20_000,
        |s| s.param("p").unwrap()[0],
        |s, rng| {
            let p = s.param("p").unwrap()[0];
            let fresh: Vec<f64> = (0..n).map(|_| f64::from(rng.bernoulli(p))).collect();
            let engine = s.engine_mut();
            let id = engine.state.expect_id("y");
            engine.state.flat_mut(id).copy_from_slice(&fresh);
        },
    );

    assert_same_mean(&sc, &mc, "beta-bernoulli p (mean)");
    // second moment too
    let mc2: Vec<f64> = mc.iter().map(|x| x * x).collect();
    let sc2: Vec<f64> = sc.iter().map(|x| x * x).collect();
    assert_same_mean(&sc2, &mc2, "beta-bernoulli p (second moment)");
}

#[test]
fn geweke_normal_normal_gibbs() {
    let n = 4;
    let (tau2, s2) = (2.0, 1.0);
    let src = "(N, tau2, s2) => {
        param m ~ Normal(0.5, tau2) ;
        data y[n] ~ Normal(m, s2) for n <- 0 until N ;
    }";

    let mut rng = Prng::seed_from_u64(2);
    let mc: Vec<f64> = (0..20_000).map(|_| rng.normal(0.5, tau2)).collect();

    let sc = successive_conditional(
        src,
        None,
        vec![HostValue::Int(n as i64), HostValue::Real(tau2), HostValue::Real(s2)],
        "y",
        HostValue::VecF(vec![0.0; n]),
        20_000,
        |s| s.param("m").unwrap()[0],
        |s, rng| {
            let m = s.param("m").unwrap()[0];
            let fresh: Vec<f64> = (0..n).map(|_| rng.normal(m, s2)).collect();
            let engine = s.engine_mut();
            let id = engine.state.expect_id("y");
            engine.state.flat_mut(id).copy_from_slice(&fresh);
        },
    );

    assert_same_mean(&sc, &mc, "normal-normal m (mean)");
    let mc2: Vec<f64> = mc.iter().map(|x| x * x).collect();
    let sc2: Vec<f64> = sc.iter().map(|x| x * x).collect();
    assert_same_mean(&sc2, &mc2, "normal-normal m (second moment)");
}

#[test]
fn geweke_normal_normal_hmc() {
    // the same joint, but with the gradient-based kernel: catches errors
    // in AD, the leapfrog integrator, or the acceptance ratio
    let n = 4;
    let (tau2, s2) = (2.0, 1.0);
    let src = "(N, tau2, s2) => {
        param m ~ Normal(0.5, tau2) ;
        data y[n] ~ Normal(m, s2) for n <- 0 until N ;
    }";

    let mut rng = Prng::seed_from_u64(3);
    let mc: Vec<f64> = (0..20_000).map(|_| rng.normal(0.5, tau2)).collect();

    let sc = successive_conditional(
        src,
        Some("HMC m"),
        vec![HostValue::Int(n as i64), HostValue::Real(tau2), HostValue::Real(s2)],
        "y",
        HostValue::VecF(vec![0.0; n]),
        20_000,
        |s| s.param("m").unwrap()[0],
        |s, rng| {
            let m = s.param("m").unwrap()[0];
            let fresh: Vec<f64> = (0..n).map(|_| rng.normal(m, s2)).collect();
            let engine = s.engine_mut();
            let id = engine.state.expect_id("y");
            engine.state.flat_mut(id).copy_from_slice(&fresh);
        },
    );

    assert_same_mean(&sc, &mc, "normal-normal m via HMC (mean)");
    let mc2: Vec<f64> = mc.iter().map(|x| x * x).collect();
    let sc2: Vec<f64> = sc.iter().map(|x| x * x).collect();
    assert_same_mean(&sc2, &mc2, "normal-normal m via HMC (second moment)");
}

#[test]
fn geweke_gamma_poisson_finite_data() {
    let n = 5;
    let src = "(N, a, b) => {
        param r ~ Gamma(3.0, 2.0) ;
        data c[n] ~ Poisson(r) for n <- 0 until N ;
    }";

    let mut rng = Prng::seed_from_u64(4);
    let mc: Vec<f64> = (0..20_000).map(|_| rng.gamma(3.0, 2.0)).collect();

    let sc = successive_conditional(
        src,
        None,
        vec![HostValue::Int(n as i64), HostValue::Real(3.0), HostValue::Real(2.0)],
        "c",
        HostValue::VecF(vec![1.0; n]),
        20_000,
        |s| s.param("r").unwrap()[0],
        |s, rng| {
            let r = s.param("r").unwrap()[0];
            let fresh: Vec<f64> = (0..n).map(|_| rng.poisson(r) as f64).collect();
            let engine = s.engine_mut();
            let id = engine.state.expect_id("c");
            engine.state.flat_mut(id).copy_from_slice(&fresh);
        },
    );

    assert_same_mean(&sc, &mc, "gamma-poisson r (mean)");
}
