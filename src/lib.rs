//! Umbrella crate for the AugurV2 reproduction: re-exports the compiler
//! pipeline ([`augur`]), the baselines ([`augur_jags`], [`augur_stan`]),
//! and shared workload generators used by the examples, integration
//! tests, and benchmark harness.

#![deny(missing_docs)]

pub use augur;
pub use augur_backend;
pub use augur_dist;
pub use augur_jags;
pub use augur_math;
pub use augur_serve;
pub use augur_stan;

pub mod diag;
pub mod models;
pub mod workloads;
