//! The model sources used throughout the evaluation — the paper's three
//! benchmark models (§7.2) plus the Fig. 1 GMM.

/// The Fig. 1 Gaussian Mixture Model, verbatim in our surface syntax.
pub const GMM: &str = r#"(K, N, mu_0, Sigma_0, pis, Sigma) => {
  param mu[k] ~ MvNormal(mu_0, Sigma_0)
    for k <- 0 until K ;
  param z[n] ~ Categorical(pis)
    for n <- 0 until N ;
  data x[n] ~ MvNormal(mu[z[n]], Sigma)
    for n <- 0 until N ;
}"#;

/// The Hierarchical Gaussian Mixture Model of §7.2:
///
/// ```text
/// π ~ Dirichlet(α);  μ_k ~ Normal(μ₀, Σ₀);  Σ_k ~ InvWishart(ν, Ψ)
/// z_n ~ Categorical(π);  y_n ~ Normal(μ_{z_n}, Σ_{z_n})
/// ```
pub const HGMM: &str = r#"(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
  param pi ~ Dirichlet(alpha) ;
  param mu[k] ~ MvNormal(mu_0, Sigma_0)
    for k <- 0 until K ;
  param Sigma[k] ~ InvWishart(nu, Psi)
    for k <- 0 until K ;
  param z[n] ~ Categorical(pi)
    for n <- 0 until N ;
  data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]])
    for n <- 0 until N ;
}"#;

/// Latent Dirichlet Allocation of §7.2:
///
/// ```text
/// θ_d ~ Dirichlet(α);  φ_k ~ Dirichlet(β)
/// z_dj ~ Categorical(θ_d);  w_dj ~ Categorical(φ_{z_dj})
/// ```
pub const LDA: &str = r#"(K, D, alpha, beta, len) => {
  param theta[d] ~ Dirichlet(alpha)
    for d <- 0 until D ;
  param phi[k] ~ Dirichlet(beta)
    for k <- 0 until K ;
  param z[d][j] ~ Categorical(theta[d])
    for d <- 0 until D, j <- 0 until len[d] ;
  data w[d][j] ~ Categorical(phi[z[d][j]])
    for d <- 0 until D, j <- 0 until len[d] ;
}"#;

/// Hierarchical Logistic Regression of §7.2:
///
/// ```text
/// σ² ~ Exponential(λ);  b ~ Normal(0, σ²);  θ_j ~ Normal(0, σ²)
/// y_n ~ Bernoulli(sigmoid(x_n · θ + b))
/// ```
pub const HLR: &str = r#"(lambda, N, D, x) => {
  param sigma2 ~ Exponential(lambda) ;
  param b ~ Normal(0.0, sigma2) ;
  param theta[j] ~ Normal(0.0, sigma2)
    for j <- 0 until D ;
  data y[n] ~ Bernoulli(sigmoid(dot(x[n], theta) + b))
    for n <- 0 until N ;
}"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmark_models_parse_and_typecheck() {
        for (name, src) in [("gmm", GMM), ("hgmm", HGMM), ("lda", LDA), ("hlr", HLR)] {
            let ast = augur_lang::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            augur_lang::typecheck(&ast).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
