//! Deprecated shim: the chain diagnostics moved to [`augur::diag`]
//! (re-exported from `augur::prelude`), where they can serve
//! `augur::Chains::report()`. These wrappers keep the old root-crate
//! paths alive for one release.

/// Deprecated alias of [`augur::diag::autocovariance`].
#[deprecated(since = "0.1.0", note = "use `augur::diag::autocovariance`")]
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    augur::diag::autocovariance(xs, k)
}

/// Deprecated alias of [`augur::diag::ess`].
#[deprecated(since = "0.1.0", note = "use `augur::diag::ess`")]
pub fn ess(xs: &[f64]) -> f64 {
    augur::diag::ess(xs)
}

/// Deprecated alias of [`augur::diag::split_rhat`] with the old panicking
/// signature.
///
/// # Panics
///
/// Panics where the new API returns `Err`: an empty chain set or chains
/// shorter than 4 draws.
#[deprecated(since = "0.1.0", note = "use `augur::diag::split_rhat` (returns `Result`)")]
pub fn split_rhat(chains: &[Vec<f64>]) -> f64 {
    augur::diag::split_rhat(chains).expect("split_rhat over empty or too-short chains")
}

/// Deprecated alias of [`augur::diag::ess_per_sec`].
#[deprecated(since = "0.1.0", note = "use `augur::diag::ess_per_sec`")]
pub fn ess_per_sec(xs: &[f64], seconds: f64) -> f64 {
    augur::diag::ess_per_sec(xs, seconds)
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn shims_forward_to_augur_diag() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin()).collect();
        assert_eq!(super::ess(&xs), augur::diag::ess(&xs));
        assert_eq!(super::autocovariance(&xs, 3), augur::diag::autocovariance(&xs, 3));
        let chains = vec![xs.clone(), xs.iter().map(|x| -x).collect()];
        assert_eq!(
            super::split_rhat(&chains),
            augur::diag::split_rhat(&chains).unwrap()
        );
        assert_eq!(super::ess_per_sec(&xs, 2.0), augur::diag::ess_per_sec(&xs, 2.0));
    }

    /// The Fig. 10 story in diagnostic terms: the compiled Gibbs sampler
    /// yields more effective samples per second than the Jags-like graph
    /// interpreter on the same model. (Lives here rather than in
    /// `augur::diag` because it needs the root crate's workloads and the
    /// `augur_jags` baseline.)
    #[test]
    fn compiled_gibbs_beats_graph_gibbs_on_ess_per_sec() {
        use crate::workloads;
        use augur::diag::ess_per_sec;
        use augur::{HostValue, Model, SessionConfig};
        let (k, d, n) = (3, 2, 600);
        let data = workloads::hgmm_data(k, d, n, 5);
        let args = || {
            vec![
                HostValue::Int(k as i64),
                HostValue::Int(n as i64),
                HostValue::VecF(vec![1.0; k]),
                HostValue::VecF(vec![0.0; d]),
                HostValue::Mat(augur_math::Matrix::identity(d).scale(50.0)),
                HostValue::Real((d + 2) as f64),
                HostValue::Mat(augur_math::Matrix::identity(d)),
            ]
        };
        let model = Model::compile(crate::models::HGMM).unwrap();
        let mut s = model
            .plan(args(), vec![("y", HostValue::Ragged(data.points.clone()))])
            .unwrap()
            .session(SessionConfig::default())
            .unwrap();
        s.init().unwrap();
        let t0 = std::time::Instant::now();
        let mut trace_a = Vec::new();
        for _ in 0..200 {
            s.sweep();
            trace_a.push(s.param("mu").unwrap()[0]);
        }
        let rate_a = ess_per_sec(&trace_a, t0.elapsed().as_secs_f64());

        let mut j = augur_jags::JagsModel::build(
            crate::models::HGMM,
            args(),
            vec![("y", HostValue::Ragged(data.points.clone()))],
            6,
        )
        .unwrap();
        j.init();
        let t0 = std::time::Instant::now();
        let mut trace_b = Vec::new();
        for _ in 0..200 {
            j.sweep();
            trace_b.push(j.values("mu")[0]);
        }
        let rate_b = ess_per_sec(&trace_b, t0.elapsed().as_secs_f64());
        assert!(
            rate_a > rate_b,
            "compiled {rate_a:.0} ess/s should beat graph {rate_b:.0} ess/s"
        );
    }
}
