//! Chain diagnostics: effective sample size, autocorrelation, and split-R̂.
//!
//! The paper compares samplers by wall-clock to a log-predictive plateau
//! (Fig. 10); a downstream user additionally wants per-chain health
//! numbers. These are the standard estimators (Geyer initial positive
//! sequence for ESS; Gelman–Rubin split-R̂).

/// Autocovariance at lag `k` (biased, as used by the ESS estimator).
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if k >= n {
        return 0.0;
    }
    let m = augur_math::vecops::mean(xs);
    xs[..n - k]
        .iter()
        .zip(&xs[k..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum::<f64>()
        / n as f64
}

/// Effective sample size via Geyer's initial-positive-sequence estimator:
/// sum paired autocorrelations `ρ(2t) + ρ(2t+1)` while the pair sum stays
/// positive.
pub fn ess(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return n as f64;
    }
    let c0 = autocovariance(xs, 0);
    if c0 <= 0.0 {
        return n as f64;
    }
    let mut sum_rho = 0.0;
    let mut t = 1;
    while t + 1 < n {
        let pair = (autocovariance(xs, t) + autocovariance(xs, t + 1)) / c0;
        if pair <= 0.0 {
            break;
        }
        sum_rho += pair;
        t += 2;
    }
    let ess = n as f64 / (1.0 + 2.0 * sum_rho);
    ess.clamp(1.0, n as f64)
}

/// Split-R̂ (Gelman–Rubin with each chain halved). Values near 1 indicate
/// the chains agree; > 1.05 is conventionally suspicious.
///
/// # Panics
///
/// Panics if fewer than one chain or chains shorter than 4 draws are
/// supplied.
pub fn split_rhat(chains: &[Vec<f64>]) -> f64 {
    assert!(!chains.is_empty(), "need at least one chain");
    let mut halves: Vec<&[f64]> = Vec::new();
    for c in chains {
        assert!(c.len() >= 4, "chains must have at least 4 draws");
        let mid = c.len() / 2;
        halves.push(&c[..mid]);
        halves.push(&c[mid..]);
    }
    let m = halves.len() as f64;
    let n = halves.iter().map(|h| h.len()).min().expect("non-empty") as f64;
    let means: Vec<f64> = halves.iter().map(|h| augur_math::vecops::mean(h)).collect();
    let grand = augur_math::vecops::mean(&means);
    let b = n / (m - 1.0)
        * means.iter().map(|mu| (mu - grand) * (mu - grand)).sum::<f64>();
    let w = halves
        .iter()
        .map(|h| augur_math::vecops::variance(h))
        .sum::<f64>()
        / m;
    if w <= 0.0 {
        return 1.0;
    }
    let var_plus = (n - 1.0) / n * w + b / n;
    (var_plus / w).sqrt()
}

/// Per-second effective sampling rate: `ess / seconds` — the quantity the
/// Fig. 10 comparison is really about.
pub fn ess_per_sec(xs: &[f64], seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    ess(xs) / seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_dist::Prng;

    #[test]
    fn iid_draws_have_full_ess() {
        let mut rng = Prng::seed_from_u64(1);
        let xs: Vec<f64> = (0..4000).map(|_| rng.std_normal()).collect();
        let e = ess(&xs);
        assert!(e > 2500.0, "iid ESS {e} of 4000");
    }

    #[test]
    fn ar1_chain_has_reduced_ess() {
        // x_t = 0.9 x_{t-1} + ε: theoretical ESS factor (1-ρ)/(1+ρ) = 1/19
        let mut rng = Prng::seed_from_u64(2);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..8000)
            .map(|_| {
                x = 0.9 * x + rng.std_normal();
                x
            })
            .collect();
        let e = ess(&xs);
        let expect = 8000.0 / 19.0;
        assert!(e < expect * 2.5 && e > expect / 2.5, "AR(1) ESS {e}, expect ≈ {expect}");
    }

    #[test]
    fn rhat_near_one_for_same_distribution() {
        let mut rng = Prng::seed_from_u64(3);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..1000).map(|_| rng.std_normal()).collect())
            .collect();
        let r = split_rhat(&chains);
        assert!((r - 1.0).abs() < 0.03, "R̂ {r}");
    }

    #[test]
    fn rhat_flags_disagreeing_chains() {
        let mut rng = Prng::seed_from_u64(4);
        let a: Vec<f64> = (0..1000).map(|_| rng.std_normal()).collect();
        let b: Vec<f64> = (0..1000).map(|_| 5.0 + rng.std_normal()).collect();
        let r = split_rhat(&[a, b]);
        assert!(r > 1.5, "R̂ {r} should flag separated chains");
    }

    #[test]
    fn autocovariance_lag_zero_is_variance_scale() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let c0 = autocovariance(&xs, 0);
        assert!((c0 - 1.25).abs() < 1e-12); // biased (/n) variance
        assert_eq!(autocovariance(&xs, 10), 0.0);
    }

    #[test]
    fn ess_per_sec_handles_degenerate_time() {
        assert!(ess_per_sec(&[1.0, 2.0, 3.0, 4.0], 0.0).is_infinite());
    }

    /// The Fig. 10 story in diagnostic terms: the compiled Gibbs sampler
    /// yields more effective samples per second than the Jags-like graph
    /// interpreter on the same model.
    #[test]
    fn compiled_gibbs_beats_graph_gibbs_on_ess_per_sec() {
        use crate::workloads;
        use augur::{HostValue, Infer};
        let (k, d, n) = (3, 2, 600);
        let data = workloads::hgmm_data(k, d, n, 5);
        let args = || {
            vec![
                HostValue::Int(k as i64),
                HostValue::Int(n as i64),
                HostValue::VecF(vec![1.0; k]),
                HostValue::VecF(vec![0.0; d]),
                HostValue::Mat(augur_math::Matrix::identity(d).scale(50.0)),
                HostValue::Real((d + 2) as f64),
                HostValue::Mat(augur_math::Matrix::identity(d)),
            ]
        };
        let aug = Infer::from_source(crate::models::HGMM).unwrap();
        let mut s = aug
            .compile(args())
            .data(vec![("y", HostValue::Ragged(data.points.clone()))])
            .build()
            .unwrap();
        s.init().unwrap();
        let t0 = std::time::Instant::now();
        let mut trace_a = Vec::new();
        for _ in 0..200 {
            s.sweep();
            trace_a.push(s.param("mu").unwrap()[0]);
        }
        let rate_a = ess_per_sec(&trace_a, t0.elapsed().as_secs_f64());

        let mut j = augur_jags::JagsModel::build(
            crate::models::HGMM,
            args(),
            vec![("y", HostValue::Ragged(data.points.clone()))],
            6,
        )
        .unwrap();
        j.init();
        let t0 = std::time::Instant::now();
        let mut trace_b = Vec::new();
        for _ in 0..200 {
            j.sweep();
            trace_b.push(j.values("mu")[0]);
        }
        let rate_b = ess_per_sec(&trace_b, t0.elapsed().as_secs_f64());
        assert!(
            rate_a > rate_b,
            "compiled {rate_a:.0} ess/s should beat graph {rate_b:.0} ess/s"
        );
    }
}
