//! Synthetic workload generators for the evaluation (§7.2).
//!
//! The paper's datasets (German Credit, Adult, Kos, Nips — all UCI) are
//! replaced by synthetic generators with the same dimensions; the timing
//! and scaling experiments depend on sizes and sparsity shape, not the
//! actual values, and the log-predictive experiments use
//! synthetically-generated data exactly as the paper's Fig. 10 does.

use augur_dist::Prng;
use augur_math::special::log_sum_exp;
use augur_math::{FlatRagged, Matrix};

/// A synthetic mixture dataset with ground truth.
#[derive(Debug, Clone)]
pub struct MixtureData {
    /// Observations (N × D).
    pub points: FlatRagged,
    /// True component means.
    pub true_means: Vec<Vec<f64>>,
    /// True assignments.
    pub true_z: Vec<usize>,
}

/// Draws `n` points in `d` dimensions from `k` well-separated spherical
/// Gaussian clusters (the Fig. 10 / Fig. 11 workload).
pub fn hgmm_data(k: usize, d: usize, n: usize, seed: u64) -> MixtureData {
    let mut rng = Prng::seed_from_u64(seed);
    // means on a scaled lattice so clusters are distinguishable in any d
    let mut true_means = Vec::with_capacity(k);
    for c in 0..k {
        let mut m = vec![0.0; d];
        for (j, mj) in m.iter_mut().enumerate() {
            let sign = if (c + j) % 2 == 0 { 1.0 } else { -1.0 };
            *mj = sign * (3.0 + 3.0 * ((c + j) % k) as f64);
        }
        true_means.push(m);
    }
    let mut rows = Vec::with_capacity(n);
    let mut true_z = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.below(k);
        true_z.push(c);
        let row: Vec<f64> =
            true_means[c].iter().map(|&m| m + rng.std_normal()).collect();
        rows.push(row);
    }
    MixtureData { points: FlatRagged::from_rows(rows), true_means, true_z }
}

/// The log-predictive probability of held-out mixture points under
/// `(pi, mus, sigmas)` — the Fig. 10 y-axis.
pub fn gmm_log_predictive(
    test: &FlatRagged,
    pis: &[f64],
    mus: &[Vec<f64>],
    sigmas: &[Matrix],
) -> f64 {
    let caches: Vec<augur_dist::vector::MvNormalCache> = sigmas
        .iter()
        .map(|s| augur_dist::vector::MvNormalCache::new(s).expect("SPD component"))
        .collect();
    let mut total = 0.0;
    for i in 0..test.num_rows() {
        let y = test.row(i);
        let comps: Vec<f64> = (0..pis.len())
            .map(|c| pis[c].max(1e-300).ln() + caches[c].log_pdf(y, &mus[c]))
            .collect();
        total += log_sum_exp(&comps);
    }
    total
}

/// A synthetic corpus shaped like a bag-of-words dataset.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Documents as token lists (word ids).
    pub docs: Vec<Vec<i64>>,
    /// Document lengths.
    pub lens: Vec<i64>,
    /// Vocabulary size.
    pub vocab: usize,
    /// Total token count.
    pub tokens: usize,
}

/// Generates an LDA-distributed corpus: `d_docs` documents over a
/// `vocab`-word vocabulary with ~`avg_len` tokens each, from `k` topics.
///
/// Shapes for the Fig. 12 datasets:
/// * Kos-like — `vocab = 6906`, ~460k tokens (≈ 1330 docs × 346 words);
/// * Nips-like — `vocab = 12419`, ~1.9M tokens (≈ 1500 docs × 1288 words).
pub fn lda_corpus(k: usize, d_docs: usize, vocab: usize, avg_len: usize, seed: u64) -> Corpus {
    let mut rng = Prng::seed_from_u64(seed);
    // sparse-ish topics: each topic concentrates on a slice of the vocab
    let mut topics = Vec::with_capacity(k);
    for t in 0..k {
        let mut beta = vec![0.05; vocab];
        let span = (vocab / k).max(1);
        for b in beta.iter_mut().skip(t * span).take(span) {
            *b = 5.0;
        }
        let mut phi = vec![0.0; vocab];
        rng.dirichlet(&beta, &mut phi);
        topics.push(phi);
    }
    let alpha = vec![0.5; k];
    let mut docs = Vec::with_capacity(d_docs);
    let mut lens = Vec::with_capacity(d_docs);
    let mut tokens = 0usize;
    let mut theta = vec![0.0; k];
    for _ in 0..d_docs {
        rng.dirichlet(&alpha, &mut theta);
        // lengths jittered ±25% around the average
        let len = ((avg_len as f64) * rng.uniform_range(0.75, 1.25)).round().max(1.0) as usize;
        let mut doc = Vec::with_capacity(len);
        for _ in 0..len {
            let t = rng.categorical(&theta);
            doc.push(rng.categorical(&topics[t]) as i64);
        }
        tokens += len;
        lens.push(len as i64);
        docs.push(doc);
    }
    Corpus { docs, lens, vocab, tokens }
}

/// A synthetic binary-classification dataset (logistic model), shaped
/// like the paper's German Credit (N = 1000, D = 24) or Adult
/// (N ≈ 50000, D = 14).
#[derive(Debug, Clone)]
pub struct LogisticData {
    /// Feature rows (N × D).
    pub x: FlatRagged,
    /// Binary labels.
    pub y: Vec<f64>,
    /// The generating coefficients.
    pub true_theta: Vec<f64>,
    /// The generating intercept.
    pub true_b: f64,
}

/// Generates logistic data with standard-normal features.
pub fn logistic_data(n: usize, d: usize, seed: u64) -> LogisticData {
    let mut rng = Prng::seed_from_u64(seed);
    let true_theta: Vec<f64> = (0..d).map(|_| rng.std_normal() * 0.8).collect();
    let true_b = 0.3;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.std_normal()).collect();
        let eta = augur_math::vecops::dot(&row, &true_theta) + true_b;
        let p = augur_math::special::sigmoid(eta);
        y.push(f64::from(rng.bernoulli(p)));
        rows.push(row);
    }
    LogisticData { x: FlatRagged::from_rows(rows), y, true_theta, true_b }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgmm_data_has_separated_clusters() {
        let data = hgmm_data(3, 2, 300, 1);
        assert_eq!(data.points.num_rows(), 300);
        assert_eq!(data.true_means.len(), 3);
        // points are near their own mean
        for i in 0..50 {
            let p = data.points.row(i);
            let m = &data.true_means[data.true_z[i]];
            let d2: f64 = p.iter().zip(m).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d2 < 25.0, "point {i} too far from its mean");
        }
    }

    #[test]
    fn log_predictive_prefers_true_parameters() {
        let data = hgmm_data(2, 2, 200, 2);
        let test = hgmm_data(2, 2, 50, 3); // same generator, fresh draws
        let pis = vec![0.5, 0.5];
        let sigmas = vec![Matrix::identity(2), Matrix::identity(2)];
        let good = gmm_log_predictive(&test.points, &pis, &data.true_means, &sigmas);
        let bad = gmm_log_predictive(
            &test.points,
            &pis,
            &[vec![0.0, 0.0], vec![0.1, 0.1]],
            &sigmas,
        );
        assert!(good > bad, "true params {good} must beat junk {bad}");
    }

    #[test]
    fn lda_corpus_dimensions() {
        let c = lda_corpus(5, 20, 100, 30, 4);
        assert_eq!(c.docs.len(), 20);
        assert_eq!(c.lens.len(), 20);
        assert_eq!(c.tokens, c.docs.iter().map(Vec::len).sum::<usize>());
        assert!(c.docs.iter().flatten().all(|&w| (w as usize) < c.vocab));
    }

    #[test]
    fn logistic_data_labels_correlate_with_features() {
        let d = logistic_data(2000, 5, 5);
        // the empirical accuracy of the true model should beat chance
        let mut correct = 0;
        for i in 0..2000 {
            let eta = augur_math::vecops::dot(d.x.row(i), &d.true_theta) + d.true_b;
            let pred = f64::from(eta > 0.0);
            if pred == d.y[i] {
                correct += 1;
            }
        }
        assert!(correct > 1200, "only {correct}/2000 correct");
    }
}
